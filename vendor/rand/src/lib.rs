//! Vendored stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the API subset this workspace uses: `rngs::StdRng` seeded
//! via `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`,
//! `distributions::{Distribution, Uniform}` and `seq::SliceRandom`.
//! The generator is xoshiro256++ seeded through splitmix64 — high-quality
//! and deterministic, though its streams differ numerically from the real
//! `rand` crate (callers here assert statistical properties, not exact
//! draws).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s plus the derived
/// convenience samplers.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.next_unit() < p
    }
}

/// Seeding entry point (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (rng.next_unit() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (rng.next_unit() as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod distributions {
    use super::Rng;

    pub trait Distribution<T> {
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// Types [`Uniform`] can sample.
    pub trait SampleUniform: Copy + PartialOrd {
        fn lerp(lo: Self, hi: Self, unit: f64) -> Self;
    }

    impl SampleUniform for f32 {
        fn lerp(lo: f32, hi: f32, unit: f64) -> f32 {
            lo + unit as f32 * (hi - lo)
        }
    }

    impl SampleUniform for f64 {
        fn lerp(lo: f64, hi: f64, unit: f64) -> f64 {
            lo + unit * (hi - lo)
        }
    }

    /// Uniform distribution over a float interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Uniform<T> {
            assert!(lo < hi, "Uniform::new empty range");
            Uniform { lo, hi }
        }

        pub fn new_inclusive(lo: T, hi: T) -> Uniform<T> {
            assert!(lo <= hi, "Uniform::new_inclusive empty range");
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng>(&self, rng: &mut R) -> T {
            T::lerp(self.lo, self.hi, rng.next_unit())
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn uniform_inclusive_covers_interval() {
        let d = Uniform::new_inclusive(-2.0f32, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -1.5 && hi > 1.5, "poor spread [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order");
    }
}
