//! Vendored stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates impls of the vendored `serde::Serialize`/`Deserialize`
//! value-tree traits. Because the build environment has no crates.io
//! access, this macro parses the item's `TokenStream` by hand instead of
//! using `syn`/`quote`, and supports exactly the shapes this workspace
//! derives on: non-generic structs with named fields and non-generic
//! enums with unit variants. Anything else is a compile error naming the
//! limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("::std::compile_error!({msg:?});")
                .parse()
                .expect("compile_error tokens")
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        (Item::Struct { name, fields }, Mode::Deserialize) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(v.field({f:?})?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Item::Enum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Item::Enum { name, variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str()? {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl tokens")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected item name".into()),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is not supported"
        ));
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde derive (vendored): `{name}` must have a braced body \
                 (tuple/unit items are not supported)"
            ))
        }
    };

    match keyword.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("serde derive: unexpected keyword `{other}`")),
    }
}

/// Advance past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde derive: expected field name, got `{other}`")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{field}`")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let variant = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected variant name, got `{other}`"
                ))
            }
        };
        pos += 1;
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(_) => {
                return Err(format!(
                    "serde derive (vendored): variant `{variant}` carries data; \
                     only unit variants are supported"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}
