//! Offline stand-in for the [`loom`](https://docs.rs/loom) exhaustive
//! concurrency model checker, following the same vendoring convention as the
//! other stubs in `vendor/` (see `vendor/README.md`): a small, dependency-free
//! subset of the real crate's surface, faithful enough that swapping the real
//! crate back in is a manifest-only change.
//!
//! # What it does
//!
//! [`model`] runs a closure repeatedly, exploring every distinct interleaving
//! of its threads at the granularity of *synchronization operations* (mutex
//! acquire attempts, condvar waits and notifies, atomic accesses, spawns and
//! joins). Threads are real OS threads, but a cooperative "baton" scheduler
//! lets exactly one run at a time; at each synchronization point the scheduler
//! consults a depth-first search over schedules, replaying a recorded decision
//! prefix and then deviating at the last branch point with unexplored
//! alternatives. The search terminates when every branch has been explored.
//!
//! Failures surface as panics from [`model`]:
//! * a panic on any modeled thread aborts the execution and is re-raised;
//! * a state where no thread can run while some thread is still blocked is
//!   reported as a deadlock — this is also how *lost wakeups* manifest,
//!   because a waiter that missed its notification blocks forever.
//!
//! # Fidelity limits (vs. real loom)
//!
//! * Interleavings are explored at lock/atomic granularity, not at the level
//!   of individual memory accesses; `std::sync::Arc` internals are assumed
//!   correct rather than modeled.
//! * Timeouts never fire inside a model: `Condvar::wait_timeout` behaves as a
//!   plain `wait`. A protocol that relies on a timeout for liveness is
//!   therefore reported as a deadlock — which is exactly the property the
//!   transport tests want to check.
//! * `notify_one` deterministically wakes the lowest-numbered waiter instead
//!   of branching over all waiters.
//!
//! Outside of [`model`] every primitive falls back to plain `std` behavior, so
//! code compiled with `--cfg loom` still runs normally when not under test.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as AtomOrd};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Default cap on explored schedules before [`model`] gives up.
pub const DEFAULT_MAX_BRANCHES: usize = 200_000;

// ---------------------------------------------------------------------------
// Scheduler runtime
// ---------------------------------------------------------------------------

pub(crate) mod rt {
    use super::*;
    use std::any::Any;
    use std::cell::RefCell;

    /// Payload used to silently unwind threads of an aborted execution. The
    /// panic hook installed by [`model`] suppresses its report.
    pub(crate) struct AbortToken;

    #[derive(Clone, Debug, PartialEq, Eq)]
    pub(crate) enum Run {
        Runnable,
        /// Blocked trying to acquire mutex object `.0`.
        BlockedMutex(usize),
        /// Parked on condvar object `.0`.
        WaitingCondvar(usize),
        /// Waiting for thread `.0` to finish.
        BlockedJoin(usize),
        Finished,
    }

    struct ThreadState {
        run: Run,
    }

    /// One scheduling decision: which runnable thread got the baton.
    pub(crate) struct Choice {
        chosen: usize,
        candidates: Vec<usize>,
    }

    pub(crate) struct SchedState {
        threads: Vec<ThreadState>,
        active: usize,
        decisions: Vec<Choice>,
        replay: Vec<usize>,
        next_object: usize,
        abort: bool,
        panic_payload: Option<Box<dyn Any + Send>>,
        deadlock: Option<String>,
        /// OS threads registered and not yet past `finish`.
        live: usize,
    }

    pub(crate) struct Execution {
        state: StdMutex<SchedState>,
        cv: StdCondvar,
    }

    thread_local! {
        static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    }

    /// The executing model context of the calling thread, if any.
    pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    pub(crate) fn enter(exec: Arc<Execution>, tid: usize) {
        CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
    }

    impl Execution {
        pub(crate) fn new(replay: Vec<usize>) -> Self {
            Execution {
                state: StdMutex::new(SchedState {
                    threads: Vec::new(),
                    active: 0,
                    decisions: Vec::new(),
                    replay,
                    next_object: 0,
                    abort: false,
                    panic_payload: None,
                    deadlock: None,
                    live: 0,
                }),
                cv: StdCondvar::new(),
            }
        }

        fn lock(&self) -> StdMutexGuard<'_, SchedState> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Register a new modeled thread; returns its id.
        pub(crate) fn register_thread(&self) -> usize {
            let mut st = self.lock();
            st.threads.push(ThreadState { run: Run::Runnable });
            st.live += 1;
            st.threads.len() - 1
        }

        /// A fresh id for a synchronization object (mutex/condvar).
        pub(crate) fn fresh_object(&self) -> usize {
            let mut st = self.lock();
            st.next_object += 1;
            st.next_object
        }

        pub(crate) fn thread_finished(&self, tid: usize) -> bool {
            self.lock().threads[tid].run == Run::Finished
        }
    }

    fn runnable(st: &SchedState) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Consume one decision slot: pick the next thread to hold the baton.
    /// Returns `None` when no thread is runnable (deadlock candidate).
    fn choose_locked(st: &mut SchedState) -> Option<usize> {
        let candidates = runnable(st);
        if candidates.is_empty() {
            return None;
        }
        let idx = st.decisions.len();
        let chosen = if idx < st.replay.len() {
            let c = st.replay[idx];
            assert!(
                candidates.contains(&c),
                "loom: non-deterministic execution — replayed thread {c} is not \
                 runnable at decision {idx} (candidates {candidates:?}); model \
                 closures must be deterministic apart from scheduling"
            );
            c
        } else {
            candidates[0]
        };
        st.decisions.push(Choice { chosen, candidates });
        Some(chosen)
    }

    fn deadlock_report(st: &SchedState) -> String {
        st.threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("  thread {i}: {:?}", t.run))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn mark_deadlock(st: &mut SchedState) {
        if st.deadlock.is_none() {
            st.deadlock = Some(deadlock_report(st));
        }
        st.abort = true;
    }

    /// Park until this thread holds the baton and is runnable.
    fn wait_my_turn(exec: &Execution, mut st: StdMutexGuard<'_, SchedState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.active == me && st.threads[me].run == Run::Runnable {
                return;
            }
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Entry protocol for a freshly spawned modeled thread.
    pub(crate) fn wait_until_active(exec: &Execution, me: usize) {
        let st = exec.lock();
        wait_my_turn(exec, st, me);
    }

    /// A scheduling decision point taken by the (active) calling thread: the
    /// baton may move to any runnable thread, including back to the caller.
    pub(crate) fn schedule_point(exec: &Execution, me: usize) {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        debug_assert_eq!(st.active, me, "schedule_point from a non-active thread");
        let chosen = choose_locked(&mut st).expect("active thread is runnable");
        if chosen != me {
            st.active = chosen;
            exec.cv.notify_all();
            wait_my_turn(exec, st, me);
        }
    }

    /// The active thread blocks (`why`) and hands the baton to another
    /// runnable thread; declares deadlock if there is none. Returns once the
    /// thread is runnable and active again.
    pub(crate) fn block(exec: &Execution, me: usize, why: Run) {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.threads[me].run = why;
        match choose_locked(&mut st) {
            Some(next) => st.active = next,
            None => mark_deadlock(&mut st),
        }
        exec.cv.notify_all();
        wait_my_turn(exec, st, me);
    }

    /// A mutex was released: every thread blocked on it may retry.
    pub(crate) fn mutex_released(exec: &Execution, lock_id: usize) {
        let mut st = exec.lock();
        if st.abort {
            return; // unwinding — do not reschedule
        }
        for t in &mut st.threads {
            if t.run == Run::BlockedMutex(lock_id) {
                t.run = Run::Runnable;
            }
        }
        exec.cv.notify_all();
    }

    /// Wake condvar waiters. Wakes the lowest-numbered waiter when `all` is
    /// false (deterministic `notify_one`).
    pub(crate) fn condvar_notify(exec: &Execution, cv_id: usize, all: bool) {
        let mut st = exec.lock();
        if st.abort {
            return;
        }
        for t in &mut st.threads {
            if t.run == Run::WaitingCondvar(cv_id) {
                t.run = Run::Runnable;
                if !all {
                    break;
                }
            }
        }
        exec.cv.notify_all();
    }

    /// Terminal protocol for a modeled thread; `panicked` carries a caught
    /// panic payload (an [`AbortToken`] payload is not treated as a failure).
    pub(crate) fn finish(exec: &Execution, me: usize, panicked: Option<Box<dyn Any + Send>>) {
        let mut st = exec.lock();
        st.threads[me].run = Run::Finished;
        for t in &mut st.threads {
            if t.run == Run::BlockedJoin(me) {
                t.run = Run::Runnable;
            }
        }
        if let Some(p) = panicked {
            if !p.is::<AbortToken>() && st.panic_payload.is_none() {
                st.panic_payload = Some(p);
                st.abort = true;
            }
        }
        if !st.abort && st.threads.iter().any(|t| t.run != Run::Finished) {
            match choose_locked(&mut st) {
                Some(next) => st.active = next,
                None => mark_deadlock(&mut st),
            }
        }
        st.live -= 1;
        exec.cv.notify_all();
    }

    impl Execution {
        /// Block the controller until every modeled OS thread has finished.
        fn wait_quiescent(&self) {
            let mut st = self.lock();
            while st.live > 0 {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Advance the DFS: produce the replay prefix of the next unexplored
    /// schedule, or `None` when the search space is exhausted.
    fn backtrack(decisions: &[Choice]) -> Option<Vec<usize>> {
        for i in (0..decisions.len()).rev() {
            let d = &decisions[i];
            let pos = d
                .candidates
                .iter()
                .position(|&c| c == d.chosen)
                .expect("chosen thread was a candidate");
            if pos + 1 < d.candidates.len() {
                let mut replay: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                replay.push(d.candidates[pos + 1]);
                return Some(replay);
            }
        }
        None
    }

    fn install_hook() {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<AbortToken>().is_none() {
                    prev(info);
                }
            }));
        });
    }

    /// See crate docs: exhaustively explore the interleavings of `f`.
    pub fn model<F>(f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_hook();
        let max_branches = std::env::var("LOOM_MAX_BRANCHES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MAX_BRANCHES);
        let f = Arc::new(f);
        let mut replay: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= max_branches,
                "loom: exceeded {max_branches} explored schedules \
                 (set LOOM_MAX_BRANCHES to raise the cap)"
            );
            let exec = Arc::new(Execution::new(replay.clone()));
            let root = exec.register_thread();
            debug_assert_eq!(root, 0);
            let (e2, f2) = (exec.clone(), f.clone());
            let os = std::thread::Builder::new()
                .name("loom-root".into())
                .spawn(move || {
                    enter(e2.clone(), root);
                    wait_until_active(&e2, root);
                    let r = panic::catch_unwind(AssertUnwindSafe(|| f2()));
                    finish(&e2, root, r.err());
                })
                .expect("spawn loom root thread");
            let _ = os.join();
            exec.wait_quiescent();
            let mut st = exec.lock();
            if let Some(p) = st.panic_payload.take() {
                eprintln!("loom: panic after exploring {iterations} schedule(s)");
                drop(st);
                panic::resume_unwind(p);
            }
            if let Some(d) = st.deadlock.take() {
                panic!(
                    "loom: deadlock detected after exploring {iterations} \
                     schedule(s); thread states:\n{d}"
                );
            }
            match backtrack(&st.decisions) {
                Some(next) => {
                    drop(st);
                    replay = next;
                }
                None => break,
            }
        }
    }
}

pub use rt::model;

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Mirror of `loom::thread` (subset of `std::thread`).
pub mod thread {
    use super::rt::{self, Run};
    use super::*;

    enum Inner<T> {
        Os(std::thread::JoinHandle<T>),
        Managed {
            exec: Arc<rt::Execution>,
            tid: usize,
            slot: Arc<StdMutex<Option<T>>>,
            os: std::thread::JoinHandle<()>,
        },
    }

    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    /// Spawn a thread. Inside [`model`](super::model) the thread is scheduled
    /// cooperatively; outside it this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::current() {
            None => JoinHandle {
                inner: Inner::Os(std::thread::spawn(f)),
            },
            Some((exec, me)) => {
                let tid = exec.register_thread();
                let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
                let (e2, s2) = (exec.clone(), slot.clone());
                let os = std::thread::Builder::new()
                    .name(format!("loom-{tid}"))
                    .spawn(move || {
                        rt::enter(e2.clone(), tid);
                        rt::wait_until_active(&e2, tid);
                        let r = panic::catch_unwind(AssertUnwindSafe(f));
                        match r {
                            Ok(v) => {
                                *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                                rt::finish(&e2, tid, None);
                            }
                            Err(p) => rt::finish(&e2, tid, Some(p)),
                        }
                    })
                    .expect("spawn loom thread");
                // The spawn itself is a decision point: the child may run
                // immediately or the parent may continue.
                rt::schedule_point(&exec, me);
                JoinHandle {
                    inner: Inner::Managed {
                        exec,
                        tid,
                        slot,
                        os,
                    },
                }
            }
        }
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Os(h) => h.join(),
                Inner::Managed {
                    exec,
                    tid,
                    slot,
                    os,
                } => {
                    let (_, me) = rt::current().expect("join outside of model");
                    loop {
                        if super::sync::thread_finished(&exec, tid) {
                            break;
                        }
                        rt::block(&exec, me, Run::BlockedJoin(tid));
                    }
                    let _ = os.join();
                    match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        Some(v) => Ok(v),
                        // The thread panicked; the execution is aborting and
                        // the payload will be re-raised by `model`.
                        None => panic::panic_any(rt::AbortToken),
                    }
                }
            }
        }
    }

    /// A pure scheduling point.
    pub fn yield_now() {
        if let Some((exec, me)) = rt::current() {
            rt::schedule_point(&exec, me);
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Mirror of `loom::sync` (subset of `std::sync`).
pub mod sync {
    use super::rt::{self, Run};
    use super::*;
    pub use std::sync::{Arc, LockResult, TryLockError, TryLockResult};

    pub(crate) fn thread_finished(exec: &rt::Execution, tid: usize) -> bool {
        exec.thread_finished(tid)
    }

    /// A mutex whose acquire attempts are scheduling decision points inside a
    /// model, and a plain `std::sync::Mutex` outside one.
    pub struct Mutex<T: ?Sized> {
        id: AtomicUsize,
        inner: StdMutex<T>,
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(t: T) -> Self {
            Mutex {
                id: AtomicUsize::new(0),
                inner: StdMutex::new(t),
            }
        }

        pub fn into_inner(self) -> LockResult<T> {
            Ok(self.inner.into_inner().unwrap_or_else(|e| e.into_inner()))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Lazily-assigned per-execution scheduler object id.
        pub(crate) fn object_id(&self, exec: &rt::Execution) -> usize {
            let id = self.id.load(AtomOrd::Relaxed);
            if id != 0 {
                return id;
            }
            let fresh = exec.fresh_object();
            match self
                .id
                .compare_exchange(0, fresh, AtomOrd::Relaxed, AtomOrd::Relaxed)
            {
                Ok(_) => fresh,
                Err(existing) => existing,
            }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match rt::current() {
                None => {
                    let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(g),
                    })
                }
                Some((exec, me)) => {
                    let id = self.object_id(&exec);
                    loop {
                        rt::schedule_point(&exec, me);
                        match self.inner.try_lock() {
                            Ok(g) => {
                                return Ok(MutexGuard {
                                    lock: self,
                                    inner: Some(g),
                                })
                            }
                            Err(TryLockError::WouldBlock) => {
                                rt::block(&exec, me, Run::BlockedMutex(id));
                            }
                            Err(TryLockError::Poisoned(p)) => {
                                return Ok(MutexGuard {
                                    lock: self,
                                    inner: Some(p.into_inner()),
                                })
                            }
                        }
                    }
                }
            }
        }

        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            if let Some((exec, me)) = rt::current() {
                rt::schedule_point(&exec, me);
            }
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                }),
                Err(TryLockError::Poisoned(p)) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            if let Some((exec, _)) = rt::current() {
                let id = self.lock.id.load(AtomOrd::Relaxed);
                if id != 0 {
                    rt::mutex_released(&exec, id);
                }
            }
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard live")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard live")
        }
    }

    /// Result of a timed condvar wait; inside a model the timeout never fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(pub(crate) bool);

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// A condition variable with real lost-wakeup semantics: a notification
    /// with no parked waiter is dropped, exactly like `std`/POSIX condvars —
    /// which is what makes missed-wakeup bugs reachable by the model.
    pub struct Condvar {
        id: AtomicUsize,
        inner: StdCondvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                id: AtomicUsize::new(0),
                inner: StdCondvar::new(),
            }
        }

        fn object_id(&self, exec: &rt::Execution) -> usize {
            let id = self.id.load(AtomOrd::Relaxed);
            if id != 0 {
                return id;
            }
            let fresh = exec.fresh_object();
            match self
                .id
                .compare_exchange(0, fresh, AtomOrd::Relaxed, AtomOrd::Relaxed)
            {
                Ok(_) => fresh,
                Err(existing) => existing,
            }
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match rt::current() {
                None => {
                    let mut guard = guard;
                    let lock = guard.lock;
                    let inner = guard.inner.take().expect("guard live");
                    // Forget the wrapper so its Drop does not double-release.
                    std::mem::forget(guard);
                    let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                    })
                }
                Some((exec, me)) => {
                    let cv_id = self.object_id(&exec);
                    let lock = guard.lock;
                    // Atomic release-and-park: dropping the guard releases the
                    // mutex, and no other thread can run until `block` passes
                    // the baton on.
                    drop(guard);
                    rt::block(&exec, me, Run::WaitingCondvar(cv_id));
                    lock.lock()
                }
            }
        }

        /// Inside a model the timeout never fires (see crate docs); outside
        /// one this is `std`'s `wait_timeout`.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            match rt::current() {
                None => {
                    let mut guard = guard;
                    let lock = guard.lock;
                    let inner = guard.inner.take().expect("guard live");
                    std::mem::forget(guard);
                    let (inner, res) = self
                        .inner
                        .wait_timeout(inner, dur)
                        .unwrap_or_else(|e| e.into_inner());
                    Ok((
                        MutexGuard {
                            lock,
                            inner: Some(inner),
                        },
                        WaitTimeoutResult(res.timed_out()),
                    ))
                }
                Some(_) => {
                    let g = self.wait(guard).unwrap_or_else(|e| e.into_inner());
                    Ok((g, WaitTimeoutResult(false)))
                }
            }
        }

        pub fn notify_one(&self) {
            match rt::current() {
                None => self.inner.notify_one(),
                Some((exec, me)) => {
                    let id = self.object_id(&exec);
                    rt::schedule_point(&exec, me);
                    rt::condvar_notify(&exec, id, false);
                }
            }
        }

        pub fn notify_all(&self) {
            match rt::current() {
                None => self.inner.notify_all(),
                Some((exec, me)) => {
                    let id = self.object_id(&exec);
                    rt::schedule_point(&exec, me);
                    rt::condvar_notify(&exec, id, true);
                }
            }
        }
    }

    /// Atomics whose accesses are scheduling decision points inside a model.
    pub mod atomic {
        use super::super::rt;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic {
            ($name:ident, $std:ty, $val:ty) => {
                pub struct $name(pub(crate) $std);

                impl $name {
                    pub const fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }
                    fn point() {
                        if let Some((exec, me)) = rt::current() {
                            rt::schedule_point(&exec, me);
                        }
                    }
                    pub fn load(&self, o: Ordering) -> $val {
                        Self::point();
                        self.0.load(o)
                    }
                    pub fn store(&self, v: $val, o: Ordering) {
                        Self::point();
                        self.0.store(v, o)
                    }
                    pub fn swap(&self, v: $val, o: Ordering) -> $val {
                        Self::point();
                        self.0.swap(v, o)
                    }
                    pub fn compare_exchange(
                        &self,
                        cur: $val,
                        new: $val,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$val, $val> {
                        Self::point();
                        self.0.compare_exchange(cur, new, ok, err)
                    }
                }
            };
        }

        atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

        impl AtomicUsize {
            pub fn fetch_add(&self, v: usize, o: Ordering) -> usize {
                if let Some((exec, me)) = rt::current() {
                    rt::schedule_point(&exec, me);
                }
                self.0.fetch_add(v, o)
            }
        }
        impl AtomicU64 {
            pub fn fetch_add(&self, v: u64, o: Ordering) -> u64 {
                if let Some((exec, me)) = rt::current() {
                    rt::schedule_point(&exec, me);
                }
                self.0.fetch_add(v, o)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Condvar, Mutex};
    use super::thread;
    use std::sync::Arc;

    #[test]
    fn single_thread_model_runs_once() {
        super::model(|| {
            let m = Mutex::new(1);
            assert_eq!(*m.lock().unwrap(), 1);
        });
    }

    #[test]
    fn two_thread_counter_is_exhaustive() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0));
            let m2 = m.clone();
            let h = thread::spawn(move || {
                *m2.lock().unwrap() += 1;
            });
            *m.lock().unwrap() += 1;
            h.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lost_wakeup_is_detected() {
        // Classic missed-notification bug: the waiter checks the flag, the
        // notifier fires in between, and the waiter then parks forever. The
        // model must find the interleaving where the notify lands before the
        // wait.
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                // BUG (deliberate): set the flag *without* holding the lock
                // around the predicate/notify pair.
                *p2.0.lock().unwrap() = true;
                p2.1.notify_one();
            });
            let (lock, cv) = (&pair.0, &pair.1);
            let ready = *lock.lock().unwrap();
            if !ready {
                // BUG (deliberate): the predicate was checked with the lock
                // released — the notify can land in this window and be lost,
                // and the wait below never re-checks.
                let g = lock.lock().unwrap();
                let _g = cv.wait(g).unwrap();
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn correct_condvar_protocol_passes() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                *p2.0.lock().unwrap() = true;
                p2.1.notify_all();
            });
            let (lock, cv) = (&pair.0, &pair.1);
            let mut g = lock.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        });
    }

    #[test]
    fn primitives_work_outside_model() {
        let m = Mutex::new(5);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }
}
