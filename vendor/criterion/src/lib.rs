//! Vendored stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Runs each benchmark closure a handful of times and prints the best
//! wall-clock time — enough to eyeball regressions locally without the
//! statistical machinery. When invoked by `cargo test` (which passes
//! `--test` to benchmark targets), `criterion_main!` exits immediately,
//! exactly like the real crate, so the test suite stays fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one parameterized benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    best: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.best = Some(match self.best {
                Some(b) => b.min(elapsed),
                None => elapsed,
            });
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    iterations: u32,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: if self.iterations == 0 {
                3
            } else {
                self.iterations
            },
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, 3, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub keys effort off
    /// `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Interpreted loosely: a couple of warm iterations, capped for speed.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u32).clamp(1, 5);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.iterations, f);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.iterations, |b| {
            f(b, input)
        });
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iterations: u32, mut f: F) {
    let mut b = Bencher {
        iterations,
        best: None,
    };
    f(&mut b);
    match b.best {
        Some(best) => println!("bench {label:<50} best {best:>12.3?} of {iterations}"),
        None => println!("bench {label:<50} (no iter call)"),
    }
}

/// Identity function that defeats trivial dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// True when the binary is being driven by `cargo test`.
pub fn running_under_cargo_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the bench target is run with `--test`;
            // real criterion exits immediately there, and so do we.
            if $crate::running_under_cargo_test() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut counted = 0u32;
        let mut b = Bencher {
            iterations: 3,
            best: None,
        };
        b.iter(|| counted += 1);
        assert_eq!(counted, 3);
        assert!(b.best.is_some());
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(1)).sample_size(2);
        let mut ran = 0;
        g.bench_with_input(BenchmarkId::new("f", 10), &10, |b, &n| {
            b.iter(|| black_box(n * 2));
            ran += 1;
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("ag", 64).to_string(), "ag/64");
        assert_eq!(BenchmarkId::new(format!("m{}", 1), "x").to_string(), "m1/x");
    }
}
