//! Vendored stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::channel`'s unbounded MPMC channel is provided — the
//! single piece this workspace uses. Semantics match the real crate where
//! it matters for us: `recv` blocks until a message arrives or every
//! `Sender` clone has been dropped (then returns `Err(RecvError)`), which
//! is what lets per-rank communication worker threads shut down cleanly.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        signal: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            signal: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message. The unbounded channel never blocks; a
        /// missing receiver is not detectable here (messages are simply
        /// dropped with the channel), so this always succeeds.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.queue.push_back(value);
            drop(st);
            self.shared.signal.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.shared.signal.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .signal
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// True when no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(channel::RecvError));
    }
}
