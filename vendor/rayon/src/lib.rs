//! Vendored stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! `par_chunks_mut(..).enumerate().for_each(..)` — the GEMM hot path —
//! runs on real scoped threads, splitting the slice into one contiguous
//! band of chunks per available core. The remaining adapters
//! (`par_iter`, `into_par_iter`) delegate to ordinary sequential
//! iterators: they are only used on coarse, already-fast outer loops
//! where parallelism is a nicety rather than a requirement.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override installed by [`ThreadPoolBuilder`];
/// 0 means "auto" (one worker per available core).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of workers parallel loops will use: the global override when
/// one was installed, otherwise the available core count.
pub fn current_num_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Builder mirroring rayon's global-pool configuration surface. The
/// stand-in spawns scoped threads per parallel region instead of keeping
/// a persistent pool, so "building" the global pool just records the
/// worker count; unlike real rayon, calling it twice is allowed and the
/// last call wins.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 restores auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Error type for [`ThreadPoolBuilder::build_global`]; the stand-in never
/// actually fails, the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Wrapper marking an iterator as "parallel". Iteration itself is
/// sequential; rayon-specific knobs are accepted and ignored.
pub struct Par<I>(I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I> Par<I> {
    /// Work-splitting hint; meaningless for the sequential fallback.
    pub fn with_max_len(self, _max: usize) -> Par<I> {
        self
    }
}

/// `collection.into_par_iter()` for anything iterable.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> Par<C::IntoIter> {
        Par(self.into_iter())
    }
}

/// `collection.par_iter()` for anything whose reference is iterable.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// Mutable chunk-parallelism over slices — the one genuinely parallel
/// primitive here.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, chunk }
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut(self)
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

pub struct EnumeratedParChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<'a, T: Send> EnumeratedParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let ParChunksMut { slice, chunk } = self.0;
        let len = slice.len();
        if len == 0 {
            return;
        }
        let nchunks = len.div_ceil(chunk);
        let workers = current_num_threads().min(nchunks);
        if workers <= 1 {
            for (i, c) in slice.chunks_mut(chunk).enumerate() {
                f((i, c));
            }
            return;
        }
        // One contiguous band of whole chunks per worker.
        let per = nchunks.div_ceil(workers);
        let f = &f;
        std::thread::scope(|s| {
            let mut rest = slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per * chunk).min(rest.len());
                let (band, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                let first = base;
                base += per;
                s.spawn(move || {
                    for (j, c) in band.chunks_mut(chunk).enumerate() {
                        f((first + j, c));
                    }
                });
            }
        });
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, Par, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 1003];
        data.as_mut_slice()
            .par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, c)| {
                for v in c.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, (pos / 10) as u32 + 1, "wrong band at {pos}");
        }
    }

    #[test]
    fn par_iter_adapters_behave_like_iterators() {
        let v = vec![5, 1, 4, 2];
        let doubled: Vec<i32> = v.par_iter().with_max_len(1).map(|x| x * 2).collect();
        assert_eq!(doubled, vec![10, 2, 8, 4]);
        let total: i32 = (0..10).into_par_iter().sum();
        assert_eq!(total, 45);
        assert_eq!(v.par_iter().min_by(|a, b| a.cmp(b)), Some(&1));
    }

    #[test]
    fn global_thread_override_round_trips() {
        assert!(super::current_num_threads() >= 1);
        super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(super::current_num_threads(), 3);
        // Parallel loops still visit every chunk under an override.
        let mut data = vec![0u32; 97];
        data.as_mut_slice()
            .par_chunks_mut(8)
            .enumerate()
            .for_each(|(i, c)| c.iter_mut().for_each(|v| *v = i as u32 + 1));
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, (pos / 8) as u32 + 1);
        }
        // Restore auto so sibling tests see the default.
        super::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn empty_and_single_chunk_edges() {
        let mut empty: Vec<u8> = vec![];
        empty
            .as_mut_slice()
            .par_chunks_mut(4)
            .for_each(|_| panic!());
        let mut one = vec![1u8, 2, 3];
        one.as_mut_slice()
            .par_chunks_mut(16)
            .enumerate()
            .for_each(|(i, c)| {
                assert_eq!(i, 0);
                assert_eq!(c.len(), 3);
            });
    }
}
