//! `--cfg loom` backend: the same parking_lot API surface, delegating to the
//! vendored `loom` model checker's primitives. Inside `loom::model` every
//! lock/wait/notify becomes an explored scheduling decision; outside a model
//! the loom primitives themselves fall back to plain `std` behavior.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex backed by [`loom::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    inner: loom::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the loom guard out.
    inner: Option<loom::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: loom::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condvar wait; mirrors parking_lot's type. Inside a
/// `loom::model` the timeout never fires (see the loom crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`] guards.
pub struct Condvar {
    inner: loom::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: loom::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let loom_guard = guard.inner.take().expect("guard taken");
        let loom_guard = self
            .inner
            .wait(loom_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(loom_guard);
    }

    /// Wait with a timeout; mirrors parking_lot's `wait_for` signature.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let loom_guard = guard.inner.take().expect("guard taken");
        let (loom_guard, res) = self
            .inner
            .wait_timeout(loom_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(loom_guard);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}
