//! Vendored stand-in for the `parking_lot` crate, implementing the API
//! subset this workspace uses on top of `std::sync`.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors minimal, behaviour-compatible implementations of its
//! external dependencies (see `vendor/README.md`). Differences from the
//! real crate: locks are slightly heavier (std mutexes) and poisoning is
//! transparently ignored, matching parking_lot's non-poisoning semantics.

//! When built with `RUSTFLAGS="--cfg loom"`, [`Mutex`] and [`Condvar`] are
//! instead backed by the vendored `loom` model checker's primitives, so code
//! using this crate can be exhaustively interleaving-checked inside
//! `loom::model` while behaving normally outside of one.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

#[cfg(loom)]
mod loom_impl;
#[cfg(loom)]
pub use loom_impl::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Non-poisoning mutex with parking_lot's `lock() -> guard` signature.
#[cfg(not(loom))]
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

#[cfg(not(loom))]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

#[cfg(not(loom))]
impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(not(loom))]
impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(not(loom))]
impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

#[cfg(not(loom))]
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condvar wait; mirrors parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg(not(loom))]
pub struct WaitTimeoutResult(bool);

#[cfg(not(loom))]
impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
#[cfg(not(loom))]
pub struct Condvar {
    inner: std::sync::Condvar,
}

#[cfg(not(loom))]
impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wait with a timeout; mirrors parking_lot's `wait_for` signature.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Non-poisoning reader-writer lock (API subset).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            7
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
