//! Vendored stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range/`Just`/tuple
//! strategies, `prop_map`, `prop_oneof!`, and the `prop_assert*` macros.
//! Generation is deterministic — the RNG is seeded from the test's module
//! path — and failing cases are reported with their inputs but are not
//! shrunk.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic splitmix64 generator used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a stable hash of the test's identifying string.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod strategy {
    use super::*;

    /// A generator of random values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u8, u16, u32, u64);

    macro_rules! signed_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + (rng.next_u64() % (span + 1)) as i64) as $t
                }
            }
        )*};
    }

    signed_strategy!(i8, i16, i32, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.next_unit() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (rng.next_unit() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            #[allow(unnameable_test_items)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed on case {case}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tuple_case() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in -2.0f64..2.0, k in 0u32..=4) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(k <= 4);
        }

        #[test]
        fn mapped_tuples_compose(case in tuple_case()) {
            let (a, b) = case;
            prop_assert!(a % 2 == 0 && (2..20).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn oneof_picks_each_arm(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (1usize..100, 0.0f64..1.0);
        let mut r1 = TestRng::for_test("same-name");
        let mut r2 = TestRng::for_test("same-name");
        for _ in 0..10 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    #[allow(unnameable_test_items)]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[test]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
