//! Vendored stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Converts the vendored `serde::Value` tree to and from JSON text.
//! Floats are printed with Rust's shortest round-trip formatting, so
//! `f32`/`f64` values survive a save/load cycle bit-exactly (the model
//! checkpoint tests depend on this).

pub use serde::{Error, Value};
use std::io::{Read, Write};

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize(&value)
}

/// Deserialize a value from a reader.
pub fn from_reader<R: Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::custom(format!("io error: {e}")))?;
    from_str(&buf)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::F32(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest string that parses back exactly.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's null.
                out.push_str("null");
            }
        }
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        label: String,
        data: Vec<f32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Top {
        id: usize,
        scale: f64,
        on: bool,
        inner: Nested,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        NN,
        NT,
        TN,
    }

    fn top() -> Top {
        Top {
            id: 7,
            scale: 0.1 + 0.2,
            on: true,
            inner: Nested {
                label: "a \"quoted\"\nname".into(),
                data: vec![1.0, -2.5, 3.1, f32::MIN_POSITIVE],
            },
        }
    }

    #[test]
    fn struct_round_trip_is_exact() {
        let t = top();
        let s = to_string(&t).unwrap();
        let back: Top = from_str(&s).unwrap();
        assert_eq!(back, t);
        let pretty = to_string_pretty(&t).unwrap();
        assert!(pretty.contains('\n'));
        let back2: Top = from_str(&pretty).unwrap();
        assert_eq!(back2, t);
    }

    #[test]
    fn float_bits_survive() {
        for bits in [0u32, 1, 0x3f99999a, 0x7f7fffff, 0x80000001] {
            let x = f32::from_bits(bits);
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), bits, "f32 {s} changed bits");
        }
        let x = 0.1f64 + 0.2;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn unit_enum_round_trip() {
        for m in [Mode::NN, Mode::NT, Mode::TN] {
            let s = to_string(&m).unwrap();
            let back: Mode = from_str(&s).unwrap();
            assert_eq!(back, m);
        }
        assert!(from_str::<Mode>("\"XX\"").is_err());
    }

    #[test]
    fn reader_writer_round_trip() {
        let t = top();
        let mut buf = Vec::new();
        to_writer(&mut buf, &t).unwrap();
        let back: Top = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn escapes_and_unicode() {
        let s: String = from_str("\"a\\u0041\\n\\t\\\\\"").unwrap();
        assert_eq!(s, "aA\n\t\\");
        let round: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn large_integers() {
        let big = u64::MAX;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back, big);
        let neg = i64::MIN;
        let back: i64 = from_str(&to_string(&neg).unwrap()).unwrap();
        assert_eq!(back, neg);
    }
}
