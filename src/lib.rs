//! Umbrella crate for the AxoNN-rs reproduction workspace.
//!
//! Re-exports every subsystem crate under one roof so examples and
//! integration tests can `use axonn::...`. See `DESIGN.md` at the
//! repository root for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use axonn_cluster as cluster;
pub use axonn_collectives as collectives;
pub use axonn_core as engine;
pub use axonn_exec as exec;
pub use axonn_ft as ft;
pub use axonn_gpt as gpt;
pub use axonn_lm as lm;
pub use axonn_memorize as memorize;
pub use axonn_perfmodel as perfmodel;
pub use axonn_serve as serve;
pub use axonn_sim as sim;
pub use axonn_tensor as tensor;
pub use axonn_trace as trace;
pub use axonn_verify as verify;
