//! Cross-rank collective matching: the MPI/NCCL contract that every
//! member of a communicator issues the same collectives, in the same
//! per-communicator order, with agreeing shapes.
//!
//! Each rank's stream is projected onto its communicator groups (the
//! `(group, lane)` spaces of `axonn_collectives::sched`); within one
//! group the member subsequences must be identical in
//! `(kind, member list, element count, root, reduction)`. Sequence
//! numbers and the blocking/async flag are *not* compared: seqs agree by
//! construction when the projections agree, and a blocking issue on one
//! rank legally matches an async issue on another (messages ride the
//! same lanes either way). Buffer and slab ids (`SchedOp::buf`/`slab`)
//! are likewise excluded — they are rank-local identities, consumed by
//! the happens-before and slab-lifetime analyses, never part of the
//! wire contract.

use crate::diag::Diagnostic;
use axonn_collectives::{SchedEvent, SchedOp};
use std::collections::BTreeMap;

/// The compared projection: everything but seq, blocking, pooled, and
/// the rank-local buf/slab identities.
fn same(a: &SchedOp, b: &SchedOp) -> bool {
    a.kind == b.kind
        && a.ranks == b.ranks
        && a.elems == b.elems
        && a.root == b.root
        && a.reduce == b.reduce
}

/// Run the matching checker over all ranks' streams.
pub fn check(streams: &[Vec<SchedEvent>]) -> Vec<Diagnostic> {
    // Deterministic group order so diagnostics are stable run to run.
    let mut per_group: BTreeMap<u64, Vec<Vec<&SchedOp>>> = BTreeMap::new();
    for (rank, stream) in streams.iter().enumerate() {
        for ev in stream {
            if let SchedEvent::Issue(op) = ev {
                let slots = per_group
                    .entry(op.group_key)
                    .or_insert_with(|| vec![Vec::new(); streams.len()]);
                slots[rank].push(op);
            }
        }
    }

    let mut diags = Vec::new();
    for (gk, by_rank) in &per_group {
        // Participants: every rank named by the first observed op, plus
        // any rank that issued on this key (a foreign issuer is itself a
        // divergence and will be caught by the elementwise compare).
        let mut participants: Vec<usize> = Vec::new();
        if let Some(op) = by_rank.iter().find_map(|v| v.first()) {
            participants.extend(op.ranks.iter().copied().filter(|&r| r < streams.len()));
        }
        for (rank, ops) in by_rank.iter().enumerate() {
            if !ops.is_empty() && !participants.contains(&rank) {
                participants.push(rank);
            }
        }
        participants.sort_unstable();
        let Some(&reference) = participants.first() else {
            continue;
        };
        for &other in participants.iter().skip(1) {
            let a = &by_rank[reference];
            let b = &by_rank[other];
            let n = a.len().max(b.len());
            for i in 0..n {
                let (la, lb) = (a.get(i), b.get(i));
                let diverged = match (la, lb) {
                    (Some(x), Some(y)) => !same(x, y),
                    _ => true,
                };
                if diverged {
                    diags.push(Diagnostic::Mismatch {
                        group_key: *gk,
                        index: i,
                        rank_a: reference,
                        rank_b: other,
                        left: la.map(|o| o.to_string()),
                        right: lb.map(|o| o.to_string()),
                    });
                    break; // first divergence per rank pair
                }
            }
        }
    }
    diags
}
