//! Slab-lifetime analysis over the happens-before facts of
//! [`crate::hb`]: proves every pooled `Payload` slab is recycled only
//! after all readers' clocks pass its last use.
//!
//! Slab identity (`SchedOp::slab`, the id space of
//! `Payload::buffer_id`) is minted per checkout and never reused, so
//! the clean shape is simple: each slab id appears on exactly one async
//! op, and its implicit recycle (the payload drop inside the comm
//! worker) is ordered after that op's end by construction. Three
//! deviations are defects:
//!
//! * **use-after-recycle / cross-lane aliasing** ([`Diagnostic::SlabReuse`]):
//!   one slab id on two async ops. If their windows are ordered, the
//!   second op is reading storage whose identity was already retired
//!   (use-after-recycle); if the windows are concurrent, two in-flight
//!   collectives on different lanes alias the same slab.
//! * **early recycle** ([`Diagnostic::EarlyRecycle`]): an explicit
//!   [`SchedEvent::SlabRecycle`] not ordered after the end of every
//!   window reading the slab — the pool could re-issue storage a
//!   pending collective still reads.
//! * **double recycle** ([`Diagnostic::DoubleRecycle`]): two recycles
//!   of one slab id — the free-list would hold the buffer twice and
//!   serve it to two owners.

use crate::diag::Diagnostic;
use crate::hb::HbAnalysis;
use std::collections::BTreeMap;

/// Run the slab-lifetime checks over a completed happens-before
/// analysis.
pub fn check(analysis: &HbAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Slab id → windows using it, in (rank, issue) order. BTreeMap for
    // deterministic diagnostic order.
    let mut by_slab: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, win) in analysis.windows.iter().enumerate() {
        if let Some(slab) = win.slab {
            by_slab.entry(slab).or_default().push(i);
        }
    }
    for (slab, wins) in &by_slab {
        if wins.len() < 2 {
            continue;
        }
        let mut ordered_wins = wins.clone();
        ordered_wins.sort_by_key(|&i| {
            let w = &analysis.windows[i];
            (w.rank, w.issue_index)
        });
        // Report the first aliasing pair; further pairs on the same slab
        // are the same root cause.
        let a = &analysis.windows[ordered_wins[0]];
        let b = &analysis.windows[ordered_wins[1]];
        let concurrent = match (&a.end, &b.end) {
            (Some(a_end), Some(b_end)) => !a_end.leq(&b.issue) && !b_end.leq(&a.issue),
            _ => true,
        };
        diags.push(Diagnostic::SlabReuse {
            rank: b.rank,
            slab: *slab,
            first_op: a.op_index,
            first_lane: a.lane,
            first_issue: a.issue_index,
            second_op: b.op_index,
            second_lane: b.lane,
            second_issue: b.issue_index,
            concurrent,
        });
    }

    // Explicit recycles: the first must be ordered after every reader's
    // end; any further recycle of the same slab is a double recycle.
    let mut first_recycle: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, rec) in analysis.recycles.iter().enumerate() {
        match first_recycle.get(&rec.slab) {
            Some(&prev) => {
                diags.push(Diagnostic::DoubleRecycle {
                    rank: rec.rank,
                    slab: rec.slab,
                    first_index: analysis.recycles[prev].event_index,
                    second_index: rec.event_index,
                });
            }
            None => {
                first_recycle.insert(rec.slab, i);
                for win in &analysis.windows {
                    if win.slab != Some(rec.slab) {
                        continue;
                    }
                    let released = win.end.as_ref().is_some_and(|end| end.leq(&rec.clock));
                    if !released {
                        diags.push(Diagnostic::EarlyRecycle {
                            rank: rec.rank,
                            recycle_index: rec.event_index,
                            slab: rec.slab,
                            op: win.op.clone(),
                            op_index: win.op_index,
                            lane: win.lane,
                            issue_index: win.issue_index,
                        });
                    }
                }
            }
        }
    }
    diags
}
