//! Deadlock check: a conservative fixpoint simulation of the schedule
//! under the *portable* blocking contract — every blocking collective
//! may synchronise all group members (MPI allows any collective to act
//! as a barrier; NCCL serialises a rank's ops on its stream). A
//! schedule certified here completes on any conforming transport; one
//! rejected here relies on buffering or eager completion that the
//! contract does not promise.
//!
//! The model per rank:
//! * a **main context** walking the event stream: a blocking `Issue`
//!   arrives at its collective instance and blocks until the instance
//!   completes; an async `Issue` is appended to the rank's worker queue
//!   and the main context moves on; a `Wait` blocks until its instance
//!   completes; `Marker`s are skipped;
//! * a **worker context** executing async ops strictly in issue order
//!   (the comm-stream semantics of `axonn_collectives::nonblocking`):
//!   the front job arrives at its instance, blocks until completion,
//!   then the next job starts.
//!
//! A collective **instance** is keyed `(group_key, seq)` and completes
//! once every member rank has arrived (from either context). The
//! simulation advances all ranks until quiescence; anything unfinished
//! at a no-progress fixpoint is reported as a deadlock with the stuck
//! frontier — this is what catches circular blocking waits across
//! lanes, e.g. two ranks issuing the same two collectives in opposite
//! orders on different communicators.

use crate::diag::Diagnostic;
use axonn_collectives::{SchedEvent, SchedOp};
use std::collections::{HashMap, HashSet, VecDeque};

type Key = (u64, u64); // (group_key, seq)

struct Instance {
    members: Vec<usize>,
    arrived: HashSet<usize>,
    complete: bool,
}

struct RankState<'a> {
    events: &'a [SchedEvent],
    pc: usize,
    /// Main context blocked on this instance (with a description).
    blocked: Option<(Key, String)>,
    /// Async jobs handed to the comm worker, in issue order: instance
    /// key, group members, and a description for the stuck report.
    worker: VecDeque<(Key, Vec<usize>, String)>,
}

impl RankState<'_> {
    fn finished(&self) -> bool {
        self.pc == self.events.len() && self.blocked.is_none() && self.worker.is_empty()
    }
}

fn key_of(op: &SchedOp) -> Key {
    (op.group_key, op.seq)
}

fn arrive(
    instances: &mut HashMap<Key, Instance>,
    key: Key,
    members: &[usize],
    rank: usize,
) -> bool {
    let inst = instances.entry(key).or_insert_with(|| Instance {
        members: members.to_vec(),
        arrived: HashSet::new(),
        complete: false,
    });
    inst.arrived.insert(rank)
}

/// Run the deadlock simulation over all ranks' streams.
pub fn check(streams: &[Vec<SchedEvent>]) -> Vec<Diagnostic> {
    let mut ranks: Vec<RankState> = streams
        .iter()
        .map(|events| RankState {
            events,
            pc: 0,
            blocked: None,
            worker: VecDeque::new(),
        })
        .collect();
    let mut instances: HashMap<Key, Instance> = HashMap::new();

    loop {
        let mut progress = false;

        for (rank, state) in ranks.iter_mut().enumerate() {
            // Worker context: pop the front job once its instance
            // completes (the next job's arrival counts on the sweep
            // below).
            if let Some((key, _, _)) = state.worker.front() {
                if instances.get(key).is_some_and(|i| i.complete) {
                    state.worker.pop_front();
                    progress = true;
                }
            }

            // Main context: unblock, then run to the next blocking point.
            if let Some((key, _)) = &state.blocked {
                if instances.get(key).is_some_and(|i| i.complete) {
                    state.blocked = None;
                    progress = true;
                }
            }
            if state.blocked.is_some() {
                continue;
            }
            while state.pc < state.events.len() {
                match &state.events[state.pc] {
                    SchedEvent::Marker { .. }
                    | SchedEvent::BufWrite { .. }
                    | SchedEvent::SlabRecycle { .. } => {
                        // Annotations never block; only the hb/slab
                        // analyses give them meaning.
                        state.pc += 1;
                        progress = true;
                    }
                    SchedEvent::Issue(op) if op.blocking => {
                        let key = key_of(op);
                        arrive(&mut instances, key, &op.ranks, rank);
                        state.blocked = Some((key, format!("blocked in {op}")));
                        state.pc += 1;
                        progress = true;
                        break;
                    }
                    SchedEvent::Issue(op) => {
                        // Arrival happens when the worker *reaches* the
                        // job (front of queue), not at issue time — the
                        // sweep below registers it.
                        let key = key_of(op);
                        let desc = format!("comm worker executing {op}");
                        state.worker.push_back((key, op.ranks.clone(), desc));
                        state.pc += 1;
                        progress = true;
                    }
                    SchedEvent::Wait { group_key, seq } => {
                        let key = (*group_key, *seq);
                        if instances.get(&key).is_some_and(|i| i.complete) {
                            state.pc += 1;
                            progress = true;
                        } else {
                            state.blocked = Some((
                                key,
                                format!("waiting on (group {group_key:#x}, seq {seq})"),
                            ));
                            state.pc += 1;
                            progress = true;
                            break;
                        }
                    }
                }
            }
        }

        // Front-of-queue worker arrivals: the comm worker is executing
        // exactly its front job, so that job (and only it) counts as
        // arrived at its instance.
        for (rank, state) in ranks.iter().enumerate() {
            if let Some((key, members, _)) = state.worker.front() {
                if arrive(&mut instances, *key, members, rank) {
                    progress = true;
                }
            }
        }

        // Complete instances whose arrivals cover all members.
        for inst in instances.values_mut() {
            if !inst.complete && inst.members.iter().all(|m| inst.arrived.contains(m)) {
                inst.complete = true;
                progress = true;
            }
        }

        if ranks.iter().all(|r| r.finished()) {
            return Vec::new();
        }
        if !progress {
            let stuck: Vec<(usize, String)> = ranks
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.finished())
                .map(|(rank, r)| {
                    let what = r
                        .blocked
                        .as_ref()
                        .map(|(_, d)| d.clone())
                        .or_else(|| r.worker.front().map(|(_, _, d)| d.clone()))
                        .unwrap_or_else(|| "stream incomplete".to_string());
                    (rank, what)
                })
                .collect();
            return vec![Diagnostic::Deadlock { stuck }];
        }
    }
}
