//! `axonn-verify`: static verification of collective schedules.
//!
//! The 4D-parallel training step is SPMD code over ring collectives; its
//! correctness (and its freedom from distributed deadlock) rests on a
//! contract no type system enforces: *every member of a communicator
//! issues the same collectives, in the same per-communicator order, with
//! agreeing shapes, and completes every handle it opens*. This crate
//! proves that contract for a concrete configuration **before** any rank
//! is spawned, by checking the symbolic schedules extracted from a dry
//! world (`axonn_collectives::CommWorld::dry` — see
//! `axonn_collectives::sched` for the event vocabulary and the canonical
//! lane-key reference).
//!
//! Three checkers run over the per-rank event streams:
//!
//! 1. **Cross-rank matching** ([`matching`]): per-communicator
//!    subsequences must be identical in kind, member list, element
//!    count, root, and reduction. Diagnostics name the first divergent
//!    op per rank pair.
//! 2. **Deadlock simulation** ([`deadlock`]): a conservative fixpoint
//!    execution under the portable blocking contract (any collective
//!    may synchronise its whole group), catching circular blocking
//!    waits across communicator lanes.
//! 3. **Local lints** ([`lints`]): wait-before-issue and double-wait,
//!    handles issued but never waited (and the pooled slabs they keep
//!    reachable), buckets sealed but never reduced, and the static
//!    mirror of the transport's indivisible reduce-scatter rejection —
//!    rendered byte-identically to the runtime `CommError`.
//!
//! Entry points: [`check_schedules`] for the full pre-launch
//! certification (`axonnctl verify`), [`check_runtime`] for the cheaper
//! matching-only cross-check that `axonn_exec::run_spmd` applies to
//! shadow-recorded schedules at teardown. [`inject`] seeds defects for
//! negative-path tests.

pub mod deadlock;
pub mod diag;
pub mod inject;
pub mod lints;
pub mod matching;

pub use diag::{Diagnostic, Report};
pub use inject::{inject, DefectKind};
pub use lints::{indivisible_message, BUCKET_SEAL};

use axonn_collectives::SchedEvent;

fn count_issues(streams: &[Vec<SchedEvent>]) -> usize {
    streams
        .iter()
        .flatten()
        .filter(|e| matches!(e, SchedEvent::Issue(_)))
        .count()
}

/// Full pre-launch certification: local lints, cross-rank matching, and
/// the deadlock simulation, in that order.
pub fn check_schedules(streams: &[Vec<SchedEvent>]) -> Report {
    let mut diagnostics = lints::check(streams);
    diagnostics.extend(matching::check(streams));
    diagnostics.extend(deadlock::check(streams));
    Report {
        ranks: streams.len(),
        issues: count_issues(streams),
        diagnostics,
    }
}

/// Runtime cross-check: matching only. Live runs may legally
/// fire-and-forget handles (the worker still completes them), and the
/// run's own completion already witnesses deadlock freedom, so only the
/// cross-rank matching property is re-checked on shadow recordings.
pub fn check_runtime(streams: &[Vec<SchedEvent>]) -> Report {
    Report {
        ranks: streams.len(),
        issues: count_issues(streams),
        diagnostics: matching::check(streams),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::{ReduceOp, SchedKind, SchedOp};

    fn op(kind: SchedKind, ranks: &[usize], elems: usize) -> SchedOp {
        SchedOp {
            kind,
            ranks: ranks.to_vec(),
            group_key: ranks.iter().fold(0xcbf2_9ce4u64, |h, r| {
                (h ^ *r as u64).wrapping_mul(0x0100_0000_01b3)
            }),
            elems,
            root: None,
            reduce: match kind {
                SchedKind::AllGather | SchedKind::Broadcast => None,
                _ => Some(ReduceOp::Sum),
            },
            blocking: true,
            pooled: false,
            seq: 0,
        }
    }

    fn issue(kind: SchedKind, ranks: &[usize], elems: usize, seq: u64) -> SchedEvent {
        let mut o = op(kind, ranks, elems);
        o.seq = seq;
        SchedEvent::Issue(o)
    }

    fn async_issue(
        kind: SchedKind,
        ranks: &[usize],
        elems: usize,
        seq: u64,
        pooled: bool,
    ) -> (SchedEvent, SchedEvent) {
        let mut o = op(kind, ranks, elems);
        o.blocking = false;
        o.pooled = pooled;
        o.seq = seq;
        let wait = SchedEvent::Wait {
            group_key: o.group_key,
            seq,
        };
        (SchedEvent::Issue(o), wait)
    }

    #[test]
    fn identical_streams_certify() {
        let mk = || {
            vec![
                issue(SchedKind::AllGather, &[0, 1], 8, 0),
                issue(SchedKind::AllReduce, &[0, 1], 16, 1),
            ]
        };
        let report = check_schedules(&[mk(), mk()]);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.ranks, 2);
        assert_eq!(report.issues, 4);
    }

    #[test]
    fn count_mismatch_names_first_divergent_op() {
        let a = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::AllReduce, &[0, 1], 16, 1),
        ];
        let b = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::AllReduce, &[0, 1], 17, 1),
        ];
        let report = check_schedules(&[a, b]);
        let m = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::Mismatch {
                    index,
                    rank_a,
                    rank_b,
                    ..
                } => Some((*index, *rank_a, *rank_b)),
                _ => None,
            })
            .expect("mismatch diagnostic");
        assert_eq!(m, (1, 0, 1), "{report}");
    }

    #[test]
    fn same_group_reorder_is_a_mismatch_at_op_zero() {
        let a = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::ReduceScatter, &[0, 1], 8, 1),
        ];
        let mut b = a.clone();
        b.swap(0, 1);
        let report = check_schedules(&[a, b]);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::Mismatch { index: 0, .. })));
    }

    #[test]
    fn truncated_stream_is_a_mismatch() {
        let a = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::AllReduce, &[0, 1], 16, 1),
        ];
        let b = vec![issue(SchedKind::AllGather, &[0, 1], 8, 0)];
        let report = check_schedules(&[a, b]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::Mismatch {
                index: 1,
                right: None,
                ..
            }
        )));
    }

    #[test]
    fn opposite_order_groups_deadlock() {
        // Group identity includes member order: [0,1] and [1,0] are
        // distinct communicators over the same ranks. Issuing them in
        // opposite orders is the classic cross-communicator deadlock.
        let fwd = op(SchedKind::AllReduce, &[0, 1], 4);
        let rev = op(SchedKind::AllReduce, &[1, 0], 4);
        let a = vec![
            SchedEvent::Issue(fwd.clone()),
            SchedEvent::Issue(rev.clone()),
        ];
        let b = vec![SchedEvent::Issue(rev), SchedEvent::Issue(fwd)];
        let report = check_schedules(&[a, b]);
        let deadlock = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::Deadlock { stuck } => Some(stuck.clone()),
                _ => None,
            })
            .expect("deadlock diagnostic");
        assert_eq!(deadlock.len(), 2, "both ranks stuck: {report}");
    }

    #[test]
    fn async_issue_wait_pairs_certify_and_overlap() {
        // Async issue on one group overlapping a blocking op on another,
        // waited after: legal, completes, no lints.
        let mk = || {
            let (i, w) = async_issue(SchedKind::ReduceScatterLinear, &[0, 1], 8, 0, true);
            vec![i, issue(SchedKind::AllReduce, &[0, 1], 4, 1), w]
        };
        let report = check_schedules(&[mk(), mk()]);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn missing_wait_flags_handle_and_pooled_leak() {
        let (i, _w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, true);
        let stream = vec![i];
        let report = check_schedules(&[stream.clone(), stream]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::UnwaitedHandle {
                rank: 0,
                issue_index: 0,
                ..
            }
        )));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::PooledLeak { .. })));
    }

    #[test]
    fn wait_before_issue_flagged() {
        let (i, w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, false);
        let early = vec![w.clone(), i.clone()];
        let report = check_schedules(&[early, vec![i, w]]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::WaitBeforeIssue {
                rank: 0,
                event_index: 0,
                ..
            }
        )));
    }

    #[test]
    fn double_wait_flagged() {
        let (i, w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, false);
        let doubled = vec![i.clone(), w.clone(), w.clone()];
        let report = check_schedules(&[doubled, vec![i, w]]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::DoubleWait {
                rank: 0,
                event_index: 2,
                ..
            }
        )));
    }

    #[test]
    fn sealed_bucket_without_reduce_flagged() {
        let seal = SchedEvent::Marker { label: BUCKET_SEAL };
        let mk_good = || {
            let (i, w) = async_issue(SchedKind::ReduceScatterLinear, &[0, 1], 8, 0, true);
            vec![SchedEvent::Marker { label: BUCKET_SEAL }, i, w]
        };
        assert!(check_schedules(&[mk_good(), mk_good()]).is_ok());

        let bad = vec![seal, issue(SchedKind::AllReduce, &[0, 1], 4, 0)];
        let report = check_schedules(&[bad.clone(), bad]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::BucketNotReduced {
                rank: 0,
                marker_index: 0
            }
        )));
    }

    #[test]
    fn static_indivisible_matches_runtime_error_text() {
        use axonn_collectives::{CommWorld, ProcessGroup};
        let stream = vec![issue(SchedKind::ReduceScatter, &[0, 1, 2, 3], 10, 0)];
        let report = check_schedules(&[stream.clone(), stream.clone(), stream.clone(), stream]);
        let static_msg = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::IndivisibleReduceScatter { message, .. } => Some(message.clone()),
                _ => None,
            })
            .expect("static indivisible diagnostic");

        // The dry world raises the same rejection dynamically.
        let comms = CommWorld::dry(4);
        let g = ProcessGroup::new(vec![0, 1, 2, 3]);
        let err = comms[0]
            .try_reduce_scatter(&g, &[0.0; 10])
            .expect_err("indivisible buffer must be rejected");
        assert_eq!(static_msg, err.to_string());
        assert!(!comms[0].schedule_clean());
    }

    #[test]
    fn runtime_check_skips_lints() {
        // Fire-and-forget is legal at runtime: no diagnostics from the
        // matching-only pass even though a handle is never waited.
        let (i, _w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, false);
        let stream = vec![i];
        assert!(check_runtime(&[stream.clone(), stream]).is_ok());
    }

    #[test]
    fn injected_defects_are_detected() {
        let mk = || {
            let (i, w) = async_issue(SchedKind::ReduceScatterLinear, &[0, 1], 8, 2, true);
            vec![
                issue(SchedKind::AllGather, &[0, 1], 8, 0),
                issue(SchedKind::AllReduce, &[0, 1], 16, 1),
                i,
                w,
            ]
        };
        for defect in [
            DefectKind::Reorder,
            DefectKind::MissingWait,
            DefectKind::CountMismatch,
        ] {
            let mut streams = vec![mk(), mk()];
            assert!(check_schedules(&streams).is_ok());
            assert!(inject(&mut streams, 1, defect), "{defect:?} applicable");
            let report = check_schedules(&streams);
            assert!(!report.is_ok(), "{defect:?} must be rejected");
        }
    }
}
