//! `axonn-verify`: static verification of collective schedules.
//!
//! The 4D-parallel training step is SPMD code over ring collectives; its
//! correctness (and its freedom from distributed deadlock) rests on a
//! contract no type system enforces: *every member of a communicator
//! issues the same collectives, in the same per-communicator order, with
//! agreeing shapes, and completes every handle it opens*. This crate
//! proves that contract for a concrete configuration **before** any rank
//! is spawned, by checking the symbolic schedules extracted from a dry
//! world (`axonn_collectives::CommWorld::dry` — see
//! `axonn_collectives::sched` for the event vocabulary and the canonical
//! lane-key reference).
//!
//! Five checkers run over the per-rank event streams:
//!
//! 1. **Cross-rank matching** ([`matching`]): per-communicator
//!    subsequences must be identical in kind, member list, element
//!    count, root, and reduction. Diagnostics name the first divergent
//!    op per rank pair.
//! 2. **Deadlock simulation** ([`deadlock`]): a conservative fixpoint
//!    execution under the portable blocking contract (any collective
//!    may synchronise its whole group), catching circular blocking
//!    waits across communicator lanes.
//! 3. **Local lints** ([`lints`]): wait-before-issue and double-wait,
//!    handles issued but never waited (and the pooled slabs they keep
//!    reachable), buckets sealed but never reduced, and the static
//!    mirror of the transport's indivisible reduce-scatter rejection —
//!    rendered byte-identically to the runtime `CommError`.
//! 4. **Happens-before races** ([`hb`]): per-rank vector clocks over
//!    main and comm-worker contexts, issue/wait handoff edges, and
//!    collective-completion joins; flags any buffer mutated by the main
//!    context inside a pending nonblocking collective's overlap window
//!    (gradsync buckets, pooled prefetch).
//! 5. **Slab lifetimes** ([`slab`]): proves every pooled `Payload` slab
//!    is recycled only after all readers' clocks pass its last use —
//!    use-after-recycle, double-recycle, and cross-lane aliasing.
//!
//! Entry points: [`check_schedules`] for the full pre-launch
//! certification (`axonnctl verify`, training grids and `--serve` TP
//! decode shapes alike), [`check_runtime`] for the cross-check that
//! `axonn_exec::run_spmd` applies to shadow-recorded schedules at
//! teardown (matching plus the hb/slab analyses — completion already
//! witnesses deadlock freedom, and fire-and-forget handles are legal at
//! runtime, so the lints stay off). [`inject`] seeds defects for
//! negative-path tests.

pub mod deadlock;
pub mod diag;
pub mod hb;
pub mod inject;
pub mod lints;
pub mod matching;
pub mod slab;

pub use diag::{Diagnostic, Report};
pub use hb::HbAnalysis;
pub use inject::{inject, DefectKind, InjectKind};
pub use lints::{indivisible_message, BUCKET_SEAL};

use axonn_collectives::SchedEvent;
use std::time::Instant;

fn elapsed_us(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn count_issues(streams: &[Vec<SchedEvent>]) -> usize {
    streams
        .iter()
        .flatten()
        .filter(|e| matches!(e, SchedEvent::Issue(_)))
        .count()
}

/// Full pre-launch certification: local lints, cross-rank matching, the
/// deadlock simulation, then — on deadlock-free schedules, where the
/// vector-clock simulation is guaranteed to complete — the
/// happens-before race detector and the slab-lifetime analysis.
pub fn check_schedules(streams: &[Vec<SchedEvent>]) -> Report {
    let mut timings_us = Vec::new();
    let t = Instant::now();
    let mut diagnostics = lints::check(streams);
    timings_us.push(("lints", elapsed_us(t)));
    let t = Instant::now();
    diagnostics.extend(matching::check(streams));
    timings_us.push(("matching", elapsed_us(t)));
    let t = Instant::now();
    let deadlocks = deadlock::check(streams);
    let deadlock_free = deadlocks.is_empty();
    diagnostics.extend(deadlocks);
    timings_us.push(("deadlock", elapsed_us(t)));
    if deadlock_free {
        let t = Instant::now();
        let analysis = hb::analyze(streams);
        if let Some(analysis) = &analysis {
            diagnostics.extend(hb::races(analysis));
        }
        timings_us.push(("hb", elapsed_us(t)));
        let t = Instant::now();
        if let Some(analysis) = &analysis {
            diagnostics.extend(slab::check(analysis));
        }
        timings_us.push(("slab", elapsed_us(t)));
    }
    Report {
        ranks: streams.len(),
        issues: count_issues(streams),
        diagnostics,
        timings_us,
    }
}

/// Runtime cross-check: matching plus the happens-before race and
/// slab-lifetime analyses. Live runs may legally fire-and-forget
/// handles (the worker still completes them) and the run's own
/// completion already witnesses deadlock freedom, so the lints and the
/// deadlock simulation stay off — but overlap-window hygiene is not
/// witnessed by completion, so the hb/slab certification runs here too
/// (covering training *and* serve worlds through `axonn_exec`'s
/// teardown). On non-SPMD recordings the vector-clock simulation can
/// wedge; it then reports nothing and the matching diagnostics own the
/// failure.
pub fn check_runtime(streams: &[Vec<SchedEvent>]) -> Report {
    let mut timings_us = Vec::new();
    let t = Instant::now();
    let mut diagnostics = matching::check(streams);
    timings_us.push(("matching", elapsed_us(t)));
    let t = Instant::now();
    let analysis = hb::analyze(streams);
    if let Some(analysis) = &analysis {
        diagnostics.extend(hb::races(analysis));
    }
    timings_us.push(("hb", elapsed_us(t)));
    let t = Instant::now();
    if let Some(analysis) = &analysis {
        diagnostics.extend(slab::check(analysis));
    }
    timings_us.push(("slab", elapsed_us(t)));
    Report {
        ranks: streams.len(),
        issues: count_issues(streams),
        diagnostics,
        timings_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_collectives::{ReduceOp, SchedKind, SchedOp};

    fn op(kind: SchedKind, ranks: &[usize], elems: usize) -> SchedOp {
        SchedOp {
            kind,
            ranks: ranks.to_vec(),
            group_key: ranks.iter().fold(0xcbf2_9ce4u64, |h, r| {
                (h ^ *r as u64).wrapping_mul(0x0100_0000_01b3)
            }),
            elems,
            root: None,
            reduce: match kind {
                SchedKind::AllGather
                | SchedKind::AllGatherRd
                | SchedKind::Broadcast
                | SchedKind::BroadcastTree => None,
                _ => Some(ReduceOp::Sum),
            },
            blocking: true,
            pooled: false,
            seq: 0,
            buf: None,
            slab: None,
        }
    }

    fn issue(kind: SchedKind, ranks: &[usize], elems: usize, seq: u64) -> SchedEvent {
        let mut o = op(kind, ranks, elems);
        o.seq = seq;
        SchedEvent::Issue(o)
    }

    fn async_issue(
        kind: SchedKind,
        ranks: &[usize],
        elems: usize,
        seq: u64,
        pooled: bool,
    ) -> (SchedEvent, SchedEvent) {
        let mut o = op(kind, ranks, elems);
        o.blocking = false;
        o.pooled = pooled;
        o.seq = seq;
        let wait = SchedEvent::Wait {
            group_key: o.group_key,
            seq,
        };
        (SchedEvent::Issue(o), wait)
    }

    /// Async issue carrying buffer-identity annotations, as the live
    /// issue path records them (`buf` always set, `slab` iff pooled).
    fn tagged_async_issue(
        kind: SchedKind,
        ranks: &[usize],
        elems: usize,
        seq: u64,
        buf: u64,
        pooled: bool,
    ) -> (SchedEvent, SchedEvent) {
        let (mut i, w) = async_issue(kind, ranks, elems, seq, pooled);
        if let SchedEvent::Issue(o) = &mut i {
            o.buf = Some(buf);
            o.slab = pooled.then_some(buf);
        }
        (i, w)
    }

    #[test]
    fn identical_streams_certify() {
        let mk = || {
            vec![
                issue(SchedKind::AllGather, &[0, 1], 8, 0),
                issue(SchedKind::AllReduce, &[0, 1], 16, 1),
            ]
        };
        let report = check_schedules(&[mk(), mk()]);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.ranks, 2);
        assert_eq!(report.issues, 4);
    }

    #[test]
    fn count_mismatch_names_first_divergent_op() {
        let a = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::AllReduce, &[0, 1], 16, 1),
        ];
        let b = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::AllReduce, &[0, 1], 17, 1),
        ];
        let report = check_schedules(&[a, b]);
        let m = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::Mismatch {
                    index,
                    rank_a,
                    rank_b,
                    ..
                } => Some((*index, *rank_a, *rank_b)),
                _ => None,
            })
            .expect("mismatch diagnostic");
        assert_eq!(m, (1, 0, 1), "{report}");
    }

    #[test]
    fn same_group_reorder_is_a_mismatch_at_op_zero() {
        let a = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::ReduceScatter, &[0, 1], 8, 1),
        ];
        let mut b = a.clone();
        b.swap(0, 1);
        let report = check_schedules(&[a, b]);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::Mismatch { index: 0, .. })));
    }

    #[test]
    fn truncated_stream_is_a_mismatch() {
        let a = vec![
            issue(SchedKind::AllGather, &[0, 1], 8, 0),
            issue(SchedKind::AllReduce, &[0, 1], 16, 1),
        ];
        let b = vec![issue(SchedKind::AllGather, &[0, 1], 8, 0)];
        let report = check_schedules(&[a, b]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::Mismatch {
                index: 1,
                right: None,
                ..
            }
        )));
    }

    #[test]
    fn opposite_order_groups_deadlock() {
        // Group identity includes member order: [0,1] and [1,0] are
        // distinct communicators over the same ranks. Issuing them in
        // opposite orders is the classic cross-communicator deadlock.
        let fwd = op(SchedKind::AllReduce, &[0, 1], 4);
        let rev = op(SchedKind::AllReduce, &[1, 0], 4);
        let a = vec![
            SchedEvent::Issue(fwd.clone()),
            SchedEvent::Issue(rev.clone()),
        ];
        let b = vec![SchedEvent::Issue(rev), SchedEvent::Issue(fwd)];
        let report = check_schedules(&[a, b]);
        let deadlock = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::Deadlock { stuck } => Some(stuck.clone()),
                _ => None,
            })
            .expect("deadlock diagnostic");
        assert_eq!(deadlock.len(), 2, "both ranks stuck: {report}");
    }

    #[test]
    fn async_issue_wait_pairs_certify_and_overlap() {
        // Async issue on one group overlapping a blocking op on another,
        // waited after: legal, completes, no lints.
        let mk = || {
            let (i, w) = async_issue(SchedKind::ReduceScatterLinear, &[0, 1], 8, 0, true);
            vec![i, issue(SchedKind::AllReduce, &[0, 1], 4, 1), w]
        };
        let report = check_schedules(&[mk(), mk()]);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn missing_wait_flags_handle_and_pooled_leak() {
        let (i, _w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, true);
        let stream = vec![i];
        let report = check_schedules(&[stream.clone(), stream]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::UnwaitedHandle {
                rank: 0,
                issue_index: 0,
                ..
            }
        )));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::PooledLeak { .. })));
    }

    #[test]
    fn wait_before_issue_flagged() {
        let (i, w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, false);
        let early = vec![w.clone(), i.clone()];
        let report = check_schedules(&[early, vec![i, w]]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::WaitBeforeIssue {
                rank: 0,
                event_index: 0,
                ..
            }
        )));
    }

    #[test]
    fn double_wait_flagged() {
        let (i, w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, false);
        let doubled = vec![i.clone(), w.clone(), w.clone()];
        let report = check_schedules(&[doubled, vec![i, w]]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::DoubleWait {
                rank: 0,
                event_index: 2,
                ..
            }
        )));
    }

    #[test]
    fn sealed_bucket_without_reduce_flagged() {
        let seal = SchedEvent::Marker { label: BUCKET_SEAL };
        let mk_good = || {
            let (i, w) = async_issue(SchedKind::ReduceScatterLinear, &[0, 1], 8, 0, true);
            vec![SchedEvent::Marker { label: BUCKET_SEAL }, i, w]
        };
        assert!(check_schedules(&[mk_good(), mk_good()]).is_ok());

        let bad = vec![seal, issue(SchedKind::AllReduce, &[0, 1], 4, 0)];
        let report = check_schedules(&[bad.clone(), bad]);
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::BucketNotReduced {
                rank: 0,
                marker_index: 0
            }
        )));
    }

    #[test]
    fn static_indivisible_matches_runtime_error_text() {
        use axonn_collectives::{CommWorld, ProcessGroup};
        let stream = vec![issue(SchedKind::ReduceScatter, &[0, 1, 2, 3], 10, 0)];
        let report = check_schedules(&[stream.clone(), stream.clone(), stream.clone(), stream]);
        let static_msg = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::IndivisibleReduceScatter { message, .. } => Some(message.clone()),
                _ => None,
            })
            .expect("static indivisible diagnostic");

        // The dry world raises the same rejection dynamically.
        let comms = CommWorld::dry(4);
        let g = ProcessGroup::new(vec![0, 1, 2, 3]);
        let err = comms[0]
            .try_reduce_scatter(&g, &[0.0; 10])
            .expect_err("indivisible buffer must be rejected");
        assert_eq!(static_msg, err.to_string());
        assert!(!comms[0].schedule_clean());
    }

    #[test]
    fn runtime_check_skips_lints() {
        // Fire-and-forget is legal at runtime: no diagnostics from the
        // matching-only pass even though a handle is never waited.
        let (i, _w) = async_issue(SchedKind::AllGather, &[0, 1], 8, 0, false);
        let stream = vec![i];
        assert!(check_runtime(&[stream.clone(), stream]).is_ok());
    }

    #[test]
    fn injected_defects_are_detected() {
        // Buffer/slab ids are rank-local in real streams; mirror that
        // with per-rank id bases so only the injected defect fires.
        let mk = |rank: u64| {
            let (i1, w1) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                2,
                10 + rank,
                true,
            );
            let (i2, w2) = tagged_async_issue(SchedKind::AllGather, &[0, 1], 4, 3, 20 + rank, true);
            vec![
                issue(SchedKind::AllGather, &[0, 1], 8, 0),
                issue(SchedKind::AllReduce, &[0, 1], 16, 1),
                i1,
                w1,
                i2,
                w2,
            ]
        };
        for defect in DefectKind::ALL {
            let mut streams = vec![mk(0), mk(1)];
            assert!(check_schedules(&streams).is_ok());
            assert!(inject(&mut streams, 1, defect), "{defect:?} applicable");
            let report = check_schedules(&streams);
            assert!(!report.is_ok(), "{defect:?} must be rejected");
        }
    }

    #[test]
    fn clean_overlap_pipeline_certifies() {
        // The gradsync shape: write the bucket, seal, issue its pooled
        // linear reduce-scatter; later wait, write the update, gather.
        // Every write is ordered before its op's issue → no race.
        let mk = |rank: u64| {
            let (rs_i, rs_w) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                30 + rank,
                true,
            );
            let (ag_i, ag_w) =
                tagged_async_issue(SchedKind::AllGather, &[0, 1], 4, 1, 40 + rank, true);
            vec![
                SchedEvent::BufWrite {
                    buf: 30 + rank,
                    label: "bucket_grads",
                },
                SchedEvent::Marker { label: BUCKET_SEAL },
                rs_i,
                rs_w,
                SchedEvent::BufWrite {
                    buf: 40 + rank,
                    label: "zero1_update",
                },
                ag_i,
                ag_w,
            ]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        assert!(report.is_ok(), "{report}");
        let ran: Vec<&str> = report.timings_us.iter().map(|(n, _)| *n).collect();
        assert_eq!(ran, ["lints", "matching", "deadlock", "hb", "slab"]);
    }

    #[test]
    fn overlap_race_write_in_window_flagged_with_exact_wording() {
        let mk = |rank: u64| {
            let (i, w) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                7 + rank,
                true,
            );
            vec![
                i,
                SchedEvent::BufWrite {
                    buf: 7 + rank,
                    label: "injected-write",
                },
                w,
            ]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        let race = report
            .diagnostics
            .iter()
            .find(|d| matches!(d, Diagnostic::OverlapRace { rank: 0, .. }))
            .expect("race diagnostic");
        assert_eq!(
            race.to_string(),
            "rank 0 event #1: write to buffer 7 (injected-write) races with async \
             reduce_scatter_linear[elems=8, op=Sum, async, seq=0] at op #0 (lane lrs, \
             issued at event #0) — the pending collective may still read or write the buffer"
        );
    }

    #[test]
    fn waiting_a_later_op_orders_earlier_windows() {
        // FIFO comm-worker precision: waiting op B also closes op A's
        // window (the worker finished A before B), so a write to A's
        // buffer after B's wait is ordered — not a race.
        let mk = |rank: u64| {
            let (ia, wa) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                50 + rank,
                true,
            );
            let (ib, wb) = tagged_async_issue(SchedKind::AllGather, &[0, 1], 4, 1, 60 + rank, true);
            vec![
                ia,
                ib,
                wb,
                SchedEvent::BufWrite {
                    buf: 50 + rank,
                    label: "rewrite",
                },
                wa,
            ]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn early_recycle_flagged_with_exact_wording() {
        let mk = |rank: u64| {
            let (i, w) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                7 + rank,
                true,
            );
            vec![i, SchedEvent::SlabRecycle { slab: 7 + rank }, w]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| matches!(d, Diagnostic::EarlyRecycle { rank: 0, .. }))
            .expect("early-recycle diagnostic");
        assert_eq!(
            diag.to_string(),
            "rank 0 event #1: slab 7 recycled before async \
             reduce_scatter_linear[elems=8, op=Sum, async, seq=0] at op #0 (lane lrs, \
             issued at event #0) released it"
        );
        // Recycling after the wait is the legal lifetime — no finding.
        let mk_ok = |rank: u64| {
            let (i, w) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                7 + rank,
                true,
            );
            vec![i, w, SchedEvent::SlabRecycle { slab: 7 + rank }]
        };
        assert!(check_schedules(&[mk_ok(0), mk_ok(1)]).is_ok());
    }

    #[test]
    fn double_recycle_flagged_with_exact_wording() {
        let mk = |rank: u64| {
            let (i, w) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                7 + rank,
                true,
            );
            vec![
                i,
                w,
                SchedEvent::SlabRecycle { slab: 7 + rank },
                SchedEvent::SlabRecycle { slab: 7 + rank },
            ]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| matches!(d, Diagnostic::DoubleRecycle { rank: 0, .. }))
            .expect("double-recycle diagnostic");
        assert_eq!(
            diag.to_string(),
            "rank 0 event #3: slab 7 recycled twice (first recycle at event #2)"
        );
    }

    #[test]
    fn slab_aliasing_flagged_concurrent_and_ordered() {
        // Concurrent windows sharing one slab: cross-lane aliasing.
        let mk = |rank: u64| {
            let (ia, wa) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                7 + rank,
                true,
            );
            let (mut ib, wb) =
                tagged_async_issue(SchedKind::AllGather, &[0, 1], 4, 1, 7 + rank, true);
            if let SchedEvent::Issue(o) = &mut ib {
                o.buf = Some(90 + rank); // distinct logical buffer, shared slab
            }
            vec![ia, ib, wa, wb]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| matches!(d, Diagnostic::SlabReuse { rank: 0, .. }))
            .expect("slab-reuse diagnostic");
        assert_eq!(
            diag.to_string(),
            "rank 0: slab 7 aliased by concurrent async ops — op #0 (lane lrs, issued at \
             event #0) and op #1 (lane ag, issued at event #1)"
        );

        // Ordered windows sharing one slab: use-after-recycle.
        let mk = |rank: u64| {
            let (ia, wa) = tagged_async_issue(
                SchedKind::ReduceScatterLinear,
                &[0, 1],
                8,
                0,
                7 + rank,
                true,
            );
            let (mut ib, wb) =
                tagged_async_issue(SchedKind::AllGather, &[0, 1], 4, 1, 7 + rank, true);
            if let SchedEvent::Issue(o) = &mut ib {
                o.buf = Some(90 + rank);
            }
            vec![ia, wa, ib, wb]
        };
        let report = check_schedules(&[mk(0), mk(1)]);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| matches!(d, Diagnostic::SlabReuse { rank: 0, .. }))
            .expect("slab-reuse diagnostic");
        assert_eq!(
            diag.to_string(),
            "rank 0: slab 7 of async op #0 (lane lrs, issued at event #0) reused after \
             recycle by async op #1 (lane ag, issued at event #2)"
        );
    }

    #[test]
    fn lint_negative_paths_cover_algorithm_lanes() {
        // The PR 8 algorithm kinds (tree / recursive halving-doubling
        // lanes) must hit the same lint classes as the ring kinds.

        // Wait-before-issue on the RHD lane.
        let (i, w) = async_issue(SchedKind::AllReduceRhd, &[0, 1], 8, 0, false);
        let report = check_schedules(&[vec![w.clone(), i.clone()], vec![i, w]]);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| matches!(d, Diagnostic::WaitBeforeIssue { rank: 0, .. })),
            "{report}"
        );

        // Double-wait on the tree lanes.
        let (i, w) = async_issue(SchedKind::AllReduceTree, &[0, 1], 8, 0, false);
        let report = check_schedules(&[vec![i.clone(), w.clone(), w.clone()], vec![i, w]]);
        assert!(
            report.diagnostics.iter().any(|d| matches!(
                d,
                Diagnostic::DoubleWait {
                    rank: 0,
                    event_index: 2,
                    ..
                }
            )),
            "{report}"
        );

        // Unwaited handle + pooled leak on the RDAG lane.
        let (i, _w) = async_issue(SchedKind::AllGatherRd, &[0, 1], 8, 0, true);
        let report = check_schedules(&[vec![i.clone()], vec![i]]);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::UnwaitedHandle { rank: 0, .. })));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::PooledLeak { rank: 0, .. })));

        // Indivisible reduce-scatter on the recursive-halving lane,
        // rendered with the runtime's exact words.
        let stream = vec![issue(SchedKind::ReduceScatterRh, &[0, 1, 2], 10, 0)];
        let report = check_schedules(&[stream.clone(), stream.clone(), stream]);
        let msg = report
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::IndivisibleReduceScatter { message, .. } => Some(message.clone()),
                _ => None,
            })
            .expect("indivisible diagnostic");
        assert_eq!(msg, indivisible_message("reduce_scatter_rh", 10, 3));

        // Root disagreement on the tree broadcast is a first-divergence
        // mismatch like any ring kind.
        let mut a = op(SchedKind::BroadcastTree, &[0, 1], 8);
        a.root = Some(0);
        let mut b = a.clone();
        b.root = Some(1);
        let report = check_schedules(&[vec![SchedEvent::Issue(a)], vec![SchedEvent::Issue(b)]]);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| matches!(d, Diagnostic::Mismatch { index: 0, .. })),
            "{report}"
        );
    }
}
