//! Seeded schedule defects for negative-path testing: corrupt one
//! rank's extracted stream the way a real SPMD bug would, then assert
//! the verifier rejects it with a diagnostic naming the divergence.

use axonn_collectives::SchedEvent;

/// The defect families the verifier must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectKind {
    /// Operations swapped on one rank — the classic mismatched-order
    /// bug. Prefers swapping two differing issues on the *same*
    /// communicator (caught by the matching checker); otherwise swaps a
    /// wait before its own issue (caught by the lints). Swaps across
    /// independent communicators are deliberately never injected: the
    /// transport keys every message by `(group, seq, lane)`, so such
    /// reorders are harmless and the verifier rightly accepts them.
    Reorder,
    /// A wait dropped from one rank: the handle (and any pooled slab it
    /// holds) leaks.
    MissingWait,
    /// One rank contributes a different element count to a collective.
    CountMismatch,
    /// A buffer write inserted right after an async issue on the same
    /// buffer — the write lands inside the collective's overlap window
    /// (caught by the happens-before race detector).
    OverlapRace,
    /// A later async op's slab id rewritten to alias an earlier op's
    /// slab (caught by the slab-lifetime analysis).
    SlabReuse,
    /// An explicit slab recycle inserted right after an async issue,
    /// before the op releases the slab (caught by the slab-lifetime
    /// analysis).
    EarlyRecycle,
}

/// The ISSUE-facing alias: injected defect kinds.
pub use DefectKind as InjectKind;

impl DefectKind {
    pub fn label(&self) -> &'static str {
        match self {
            DefectKind::Reorder => "reorder",
            DefectKind::MissingWait => "missing-wait",
            DefectKind::CountMismatch => "count-mismatch",
            DefectKind::OverlapRace => "overlap-race",
            DefectKind::SlabReuse => "slab-reuse",
            DefectKind::EarlyRecycle => "early-recycle",
        }
    }

    /// Every defect family, in label order (CLI help, exhaustive tests).
    pub const ALL: [DefectKind; 6] = [
        DefectKind::Reorder,
        DefectKind::MissingWait,
        DefectKind::CountMismatch,
        DefectKind::OverlapRace,
        DefectKind::SlabReuse,
        DefectKind::EarlyRecycle,
    ];

    /// Parse a CLI spelling (`reorder`, `missing-wait`, `count-mismatch`,
    /// `overlap-race`, `slab-reuse`, `early-recycle`).
    pub fn parse(s: &str) -> Option<DefectKind> {
        DefectKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

fn differs(a: &SchedEvent, b: &SchedEvent) -> bool {
    match (a, b) {
        (SchedEvent::Issue(x), SchedEvent::Issue(y)) => {
            x.kind != y.kind
                || x.ranks != y.ranks
                || x.elems != y.elems
                || x.root != y.root
                || x.reduce != y.reduce
        }
        _ => false,
    }
}

/// Corrupt `rank`'s stream in place. Returns `false` when the stream
/// has no site the defect applies to (e.g. no waits to drop).
pub fn inject(streams: &mut [Vec<SchedEvent>], rank: usize, defect: DefectKind) -> bool {
    let Some(stream) = streams.get_mut(rank) else {
        return false;
    };
    match defect {
        DefectKind::Reorder => {
            let issues: Vec<usize> = stream
                .iter()
                .enumerate()
                .filter_map(|(i, e)| matches!(e, SchedEvent::Issue(_)).then_some(i))
                .collect();
            // Prefer swapping differing ops on the *same* communicator
            // (first-divergent-op matching diagnostic); otherwise swap
            // a wait ahead of its own issue (wait-before-issue lint).
            let same_group = |a: usize, b: usize| match (&stream[a], &stream[b]) {
                (SchedEvent::Issue(x), SchedEvent::Issue(y)) => x.group_key == y.group_key,
                _ => false,
            };
            let mut pick = None;
            'outer: for (n, &p) in issues.iter().enumerate() {
                for &q in &issues[n + 1..] {
                    if differs(&stream[p], &stream[q]) && same_group(p, q) {
                        pick = Some((p, q));
                        break 'outer;
                    }
                }
            }
            if pick.is_none() {
                'outer: for (w, ev) in stream.iter().enumerate() {
                    let SchedEvent::Wait { group_key, seq } = ev else {
                        continue;
                    };
                    for (i, prior) in stream.iter().enumerate().take(w) {
                        if let SchedEvent::Issue(op) = prior {
                            if !op.blocking && op.group_key == *group_key && op.seq == *seq {
                                pick = Some((i, w));
                                break 'outer;
                            }
                        }
                    }
                }
            }
            match pick {
                Some((p, q)) => {
                    stream.swap(p, q);
                    true
                }
                None => false,
            }
        }
        DefectKind::MissingWait => {
            let pos = stream
                .iter()
                .position(|e| matches!(e, SchedEvent::Wait { .. }));
            match pos {
                Some(i) => {
                    stream.remove(i);
                    true
                }
                None => false,
            }
        }
        DefectKind::CountMismatch => {
            for ev in stream.iter_mut() {
                if let SchedEvent::Issue(op) = ev {
                    op.elems += 1;
                    return true;
                }
            }
            false
        }
        DefectKind::OverlapRace => {
            // A write to the op's own buffer immediately after issue:
            // no wait orders it after the window, so it is concurrent
            // with the in-flight collective.
            let site = stream.iter().enumerate().find_map(|(i, e)| match e {
                SchedEvent::Issue(op) if !op.blocking => op.buf.map(|b| (i, b)),
                _ => None,
            });
            match site {
                Some((i, buf)) => {
                    stream.insert(
                        i + 1,
                        SchedEvent::BufWrite {
                            buf,
                            label: "injected-write",
                        },
                    );
                    true
                }
                None => false,
            }
        }
        DefectKind::EarlyRecycle => {
            let site = stream.iter().enumerate().find_map(|(i, e)| match e {
                SchedEvent::Issue(op) if !op.blocking => op.slab.map(|s| (i, s)),
                _ => None,
            });
            match site {
                Some((i, slab)) => {
                    stream.insert(i + 1, SchedEvent::SlabRecycle { slab });
                    true
                }
                None => false,
            }
        }
        DefectKind::SlabReuse => {
            // Alias the second pooled async issue's slab to the first's.
            let mut first_slab = None;
            for ev in stream.iter_mut() {
                let SchedEvent::Issue(op) = ev else { continue };
                if op.blocking || op.slab.is_none() {
                    continue;
                }
                match first_slab {
                    None => first_slab = op.slab,
                    Some(slab) => {
                        op.slab = Some(slab);
                        return true;
                    }
                }
            }
            false
        }
    }
}
