//! Seeded schedule defects for negative-path testing: corrupt one
//! rank's extracted stream the way a real SPMD bug would, then assert
//! the verifier rejects it with a diagnostic naming the divergence.

use axonn_collectives::SchedEvent;

/// The defect families the verifier must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectKind {
    /// Operations swapped on one rank — the classic mismatched-order
    /// bug. Prefers swapping two differing issues on the *same*
    /// communicator (caught by the matching checker); otherwise swaps a
    /// wait before its own issue (caught by the lints). Swaps across
    /// independent communicators are deliberately never injected: the
    /// transport keys every message by `(group, seq, lane)`, so such
    /// reorders are harmless and the verifier rightly accepts them.
    Reorder,
    /// A wait dropped from one rank: the handle (and any pooled slab it
    /// holds) leaks.
    MissingWait,
    /// One rank contributes a different element count to a collective.
    CountMismatch,
}

impl DefectKind {
    pub fn label(&self) -> &'static str {
        match self {
            DefectKind::Reorder => "reorder",
            DefectKind::MissingWait => "missing-wait",
            DefectKind::CountMismatch => "count-mismatch",
        }
    }

    /// Parse a CLI spelling (`reorder`, `missing-wait`, `count-mismatch`).
    pub fn parse(s: &str) -> Option<DefectKind> {
        match s {
            "reorder" => Some(DefectKind::Reorder),
            "missing-wait" => Some(DefectKind::MissingWait),
            "count-mismatch" => Some(DefectKind::CountMismatch),
            _ => None,
        }
    }
}

fn differs(a: &SchedEvent, b: &SchedEvent) -> bool {
    match (a, b) {
        (SchedEvent::Issue(x), SchedEvent::Issue(y)) => {
            x.kind != y.kind
                || x.ranks != y.ranks
                || x.elems != y.elems
                || x.root != y.root
                || x.reduce != y.reduce
        }
        _ => false,
    }
}

/// Corrupt `rank`'s stream in place. Returns `false` when the stream
/// has no site the defect applies to (e.g. no waits to drop).
pub fn inject(streams: &mut [Vec<SchedEvent>], rank: usize, defect: DefectKind) -> bool {
    let Some(stream) = streams.get_mut(rank) else {
        return false;
    };
    match defect {
        DefectKind::Reorder => {
            let issues: Vec<usize> = stream
                .iter()
                .enumerate()
                .filter_map(|(i, e)| matches!(e, SchedEvent::Issue(_)).then_some(i))
                .collect();
            // Prefer swapping differing ops on the *same* communicator
            // (first-divergent-op matching diagnostic); otherwise swap
            // a wait ahead of its own issue (wait-before-issue lint).
            let same_group = |a: usize, b: usize| match (&stream[a], &stream[b]) {
                (SchedEvent::Issue(x), SchedEvent::Issue(y)) => x.group_key == y.group_key,
                _ => false,
            };
            let mut pick = None;
            'outer: for (n, &p) in issues.iter().enumerate() {
                for &q in &issues[n + 1..] {
                    if differs(&stream[p], &stream[q]) && same_group(p, q) {
                        pick = Some((p, q));
                        break 'outer;
                    }
                }
            }
            if pick.is_none() {
                'outer: for (w, ev) in stream.iter().enumerate() {
                    let SchedEvent::Wait { group_key, seq } = ev else {
                        continue;
                    };
                    for (i, prior) in stream.iter().enumerate().take(w) {
                        if let SchedEvent::Issue(op) = prior {
                            if !op.blocking && op.group_key == *group_key && op.seq == *seq {
                                pick = Some((i, w));
                                break 'outer;
                            }
                        }
                    }
                }
            }
            match pick {
                Some((p, q)) => {
                    stream.swap(p, q);
                    true
                }
                None => false,
            }
        }
        DefectKind::MissingWait => {
            let pos = stream
                .iter()
                .position(|e| matches!(e, SchedEvent::Wait { .. }));
            match pos {
                Some(i) => {
                    stream.remove(i);
                    true
                }
                None => false,
            }
        }
        DefectKind::CountMismatch => {
            for ev in stream.iter_mut() {
                if let SchedEvent::Issue(op) = ev {
                    op.elems += 1;
                    return true;
                }
            }
            false
        }
    }
}
