//! Verifier diagnostics: typed findings with stable, precise rendering.
//!
//! Every diagnostic names the rank(s) involved and the event or op index
//! where the problem was observed, so a failing `axonnctl verify` run (or
//! the teardown check in `axonn_exec::run_spmd`) points at the exact
//! first divergence rather than a generic "schedules differ".

use std::fmt;

/// One verifier finding. Severity is uniform: any diagnostic means the
/// schedule violates the SPMD collective contract (or leaks resources)
/// and the configuration must not be launched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// Two ranks disagree on the `index`-th collective issued on a
    /// communicator group: different kind, member list, element count,
    /// root, or reduction — or one rank stopped issuing early.
    /// `left`/`right` are the rendered ops (`None` = stream ended).
    Mismatch {
        group_key: u64,
        index: usize,
        rank_a: usize,
        rank_b: usize,
        left: Option<String>,
        right: Option<String>,
    },
    /// A rank waited on an async handle before (or without ever)
    /// issuing the matching collective.
    WaitBeforeIssue {
        rank: usize,
        event_index: usize,
        group_key: u64,
        seq: u64,
    },
    /// A rank waited twice on the same `(group, seq)` instance.
    DoubleWait {
        rank: usize,
        event_index: usize,
        group_key: u64,
        seq: u64,
    },
    /// An async collective was issued but its handle never waited by
    /// schedule end.
    UnwaitedHandle {
        rank: usize,
        issue_index: usize,
        op: String,
    },
    /// An unwaited async op holds a pooled slab, so the slab is still
    /// reachable (not yet recycled) when the schedule ends.
    PooledLeak {
        rank: usize,
        issue_index: usize,
        op: String,
    },
    /// A `bucket_seal` marker was not followed by the linear
    /// reduce-scatter that drains the sealed bucket.
    BucketNotReduced { rank: usize, marker_index: usize },
    /// A reduce-scatter was issued with a buffer length not divisible
    /// by the group size. `message` is formatted identically to the
    /// runtime `CommError::InvalidBuffer` display, so static and
    /// dynamic rejections agree byte for byte.
    IndivisibleReduceScatter {
        rank: usize,
        event_index: usize,
        message: String,
    },
    /// The schedule cannot complete under the portable blocking
    /// contract (every blocking collective may synchronise all
    /// members): the fixpoint simulation wedged with the listed ranks
    /// stuck at the described ops.
    Deadlock { stuck: Vec<(usize, String)> },
    /// The main context mutated a buffer while a pending nonblocking
    /// collective's overlap window may still read or write it: the
    /// write is neither ordered after the window's end nor before its
    /// issue in the happens-before analysis.
    OverlapRace {
        rank: usize,
        /// Event index of the racing `BufWrite`.
        write_index: usize,
        buf: u64,
        /// The write site's annotation label (e.g. `bucket_grads`).
        label: String,
        /// Rendered async op whose window the write lands in.
        op: String,
        /// Ordinal of that op among the rank's collective issues.
        op_index: usize,
        /// Wire-lane label of the op's kind.
        lane: &'static str,
        /// Event index of the op's issue.
        issue_index: usize,
    },
    /// A pooled slab was explicitly recycled before every async op
    /// reading it released it — the pool could re-issue storage a
    /// pending collective still reads.
    EarlyRecycle {
        rank: usize,
        /// Event index of the premature `SlabRecycle`.
        recycle_index: usize,
        slab: u64,
        /// Rendered async op still holding the slab.
        op: String,
        op_index: usize,
        lane: &'static str,
        issue_index: usize,
    },
    /// One slab id recycled twice: the pool free-list would hold the
    /// buffer twice and serve it to two owners.
    DoubleRecycle {
        rank: usize,
        slab: u64,
        first_index: usize,
        second_index: usize,
    },
    /// One slab id backing two async ops. Ordered windows are a
    /// use-after-recycle (the second op reads retired storage);
    /// concurrent windows are cross-lane aliasing (two in-flight
    /// collectives share the slab).
    SlabReuse {
        rank: usize,
        slab: u64,
        first_op: usize,
        first_lane: &'static str,
        first_issue: usize,
        second_op: usize,
        second_lane: &'static str,
        second_issue: usize,
        concurrent: bool,
    },
}

fn opt_op(op: &Option<String>) -> &str {
    op.as_deref().unwrap_or("nothing (stream ended)")
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::Mismatch {
                group_key,
                index,
                rank_a,
                rank_b,
                left,
                right,
            } => write!(
                f,
                "collective mismatch on group {group_key:#x} at op #{index}: \
                 rank {rank_a} issued {}, rank {rank_b} issued {}",
                opt_op(left),
                opt_op(right)
            ),
            Diagnostic::WaitBeforeIssue {
                rank,
                event_index,
                group_key,
                seq,
            } => write!(
                f,
                "rank {rank} event #{event_index}: wait on (group {group_key:#x}, seq {seq}) \
                 before any matching async issue"
            ),
            Diagnostic::DoubleWait {
                rank,
                event_index,
                group_key,
                seq,
            } => write!(
                f,
                "rank {rank} event #{event_index}: second wait on \
                 (group {group_key:#x}, seq {seq})"
            ),
            Diagnostic::UnwaitedHandle {
                rank,
                issue_index,
                op,
            } => write!(
                f,
                "rank {rank}: async {op} issued at event #{issue_index} is never waited"
            ),
            Diagnostic::PooledLeak {
                rank,
                issue_index,
                op,
            } => write!(
                f,
                "rank {rank}: pooled slab of async {op} issued at event #{issue_index} \
                 is still reachable at schedule end"
            ),
            Diagnostic::BucketNotReduced { rank, marker_index } => write!(
                f,
                "rank {rank}: bucket sealed at event #{marker_index} but never reduced \
                 (no reduce_scatter_linear follows)"
            ),
            Diagnostic::IndivisibleReduceScatter {
                rank,
                event_index,
                message,
            } => write!(f, "rank {rank} event #{event_index}: {message}"),
            Diagnostic::Deadlock { stuck } => {
                write!(
                    f,
                    "schedule cannot complete under the blocking-collective contract; stuck:"
                )?;
                for (rank, what) in stuck {
                    write!(f, " [rank {rank}: {what}]")?;
                }
                Ok(())
            }
            Diagnostic::OverlapRace {
                rank,
                write_index,
                buf,
                label,
                op,
                op_index,
                lane,
                issue_index,
            } => write!(
                f,
                "rank {rank} event #{write_index}: write to buffer {buf} ({label}) races \
                 with async {op} at op #{op_index} (lane {lane}, issued at event \
                 #{issue_index}) — the pending collective may still read or write the buffer"
            ),
            Diagnostic::EarlyRecycle {
                rank,
                recycle_index,
                slab,
                op,
                op_index,
                lane,
                issue_index,
            } => write!(
                f,
                "rank {rank} event #{recycle_index}: slab {slab} recycled before async {op} \
                 at op #{op_index} (lane {lane}, issued at event #{issue_index}) released it"
            ),
            Diagnostic::DoubleRecycle {
                rank,
                slab,
                first_index,
                second_index,
            } => write!(
                f,
                "rank {rank} event #{second_index}: slab {slab} recycled twice \
                 (first recycle at event #{first_index})"
            ),
            Diagnostic::SlabReuse {
                rank,
                slab,
                first_op,
                first_lane,
                first_issue,
                second_op,
                second_lane,
                second_issue,
                concurrent,
            } => {
                if *concurrent {
                    write!(
                        f,
                        "rank {rank}: slab {slab} aliased by concurrent async ops — op \
                         #{first_op} (lane {first_lane}, issued at event #{first_issue}) and \
                         op #{second_op} (lane {second_lane}, issued at event #{second_issue})"
                    )
                } else {
                    write!(
                        f,
                        "rank {rank}: slab {slab} of async op #{first_op} (lane {first_lane}, \
                         issued at event #{first_issue}) reused after recycle by async op \
                         #{second_op} (lane {second_lane}, issued at event #{second_issue})"
                    )
                }
            }
        }
    }
}

/// The outcome of a verification pass over one world's schedule streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// World size (number of per-rank streams checked).
    pub ranks: usize,
    /// Total collective issues across all ranks.
    pub issues: usize,
    /// Findings, in checker order (local lints, cross-rank matching,
    /// deadlock simulation, happens-before races, slab lifetimes).
    /// Empty means the schedule is certified.
    pub diagnostics: Vec<Diagnostic>,
    /// Wall-clock per-check timings, in microseconds, in the order the
    /// checks ran (`lints`, `matching`, `deadlock`, `hb`, `slab`). Lets
    /// `axonnctl verify` surface slow fixpoints on large grids. Integer
    /// µs keeps the `Eq` derive.
    pub timings_us: Vec<(&'static str, u64)>,
}

impl Report {
    /// True when no checker produced a finding.
    pub fn is_ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "schedule OK: {} ranks, {} collective issues, 0 diagnostics",
                self.ranks, self.issues
            )
        } else {
            writeln!(
                f,
                "schedule REJECTED: {} ranks, {} collective issues, {} diagnostic(s):",
                self.ranks,
                self.issues,
                self.diagnostics.len()
            )?;
            for (i, d) in self.diagnostics.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(f, "  {i}: {d}")?;
            }
            Ok(())
        }
    }
}
