//! Per-rank schedule lints: handle hygiene, bucket discipline, and the
//! static mirror of the transport's dynamic buffer checks. All of these
//! are local to one rank's stream — no cross-rank reasoning — so they
//! stay precise (no false positives from interleaving).

use crate::diag::Diagnostic;
use axonn_collectives::{SchedEvent, SchedKind};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Marker label emitted by the gradient-sync bucketizer when a bucket
/// seals; the next collective issue on the rank must be the linear
/// reduce-scatter that drains it.
pub const BUCKET_SEAL: &str = "bucket_seal";

/// Format the static indivisible-reduce-scatter message exactly as the
/// runtime's `CommError::InvalidBuffer` renders, so `axonnctl verify`
/// and a live failure name the defect with the same words.
pub fn indivisible_message(op: &'static str, elems: usize, group: usize) -> String {
    format!("invalid buffer for {op}: length {elems} not divisible by group size {group}")
}

/// Run all per-rank lints over all ranks' streams.
pub fn check(streams: &[Vec<SchedEvent>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (rank, stream) in streams.iter().enumerate() {
        // (group, seq) -> (event index, rendered op, pooled) of async issues.
        let mut issued: HashMap<(u64, u64), (usize, String, bool)> = HashMap::new();
        let mut waited: HashMap<(u64, u64), usize> = HashMap::new();

        for (i, ev) in stream.iter().enumerate() {
            match ev {
                SchedEvent::Issue(op) => {
                    if !op.blocking {
                        issued.insert((op.group_key, op.seq), (i, op.to_string(), op.pooled));
                    }
                    let g = op.ranks.len();
                    let divisible_kinds = matches!(
                        op.kind,
                        SchedKind::ReduceScatter
                            | SchedKind::ReduceScatterLinear
                            | SchedKind::ReduceScatterRh
                    );
                    if divisible_kinds && g > 1 && !op.elems.is_multiple_of(g) {
                        let label = match op.kind {
                            SchedKind::ReduceScatter => "reduce_scatter",
                            SchedKind::ReduceScatterRh => "reduce_scatter_rh",
                            _ => "reduce_scatter_linear",
                        };
                        diags.push(Diagnostic::IndivisibleReduceScatter {
                            rank,
                            event_index: i,
                            message: indivisible_message(label, op.elems, g),
                        });
                    }
                }
                SchedEvent::Wait { group_key, seq } => {
                    let key = (*group_key, *seq);
                    match waited.entry(key) {
                        Entry::Occupied(_) => diags.push(Diagnostic::DoubleWait {
                            rank,
                            event_index: i,
                            group_key: *group_key,
                            seq: *seq,
                        }),
                        // An unissued wait is not recorded as waited, so
                        // a later legitimate wait still pairs up.
                        Entry::Vacant(_) if !issued.contains_key(&key) => {
                            diags.push(Diagnostic::WaitBeforeIssue {
                                rank,
                                event_index: i,
                                group_key: *group_key,
                                seq: *seq,
                            })
                        }
                        Entry::Vacant(slot) => {
                            slot.insert(i);
                        }
                    }
                }
                SchedEvent::Marker { label } if *label == BUCKET_SEAL => {
                    let next_issue = stream[i + 1..].iter().find_map(|e| match e {
                        SchedEvent::Issue(op) => Some(op.kind),
                        _ => None,
                    });
                    if next_issue != Some(SchedKind::ReduceScatterLinear) {
                        diags.push(Diagnostic::BucketNotReduced {
                            rank,
                            marker_index: i,
                        });
                    }
                }
                SchedEvent::Marker { .. } => {}
                // Buffer-identity annotations carry no per-rank hygiene
                // obligations; the happens-before engine (`crate::hb`)
                // and the slab analysis (`crate::slab`) consume them.
                SchedEvent::BufWrite { .. } | SchedEvent::SlabRecycle { .. } => {}
            }
        }

        // Handles never waited: ordered by issue index for stable output.
        let mut leaks: Vec<(usize, &str, bool)> = issued
            .iter()
            .filter(|(key, _)| !waited.contains_key(*key))
            .map(|(_, (i, op, pooled))| (*i, op.as_str(), *pooled))
            .collect();
        leaks.sort_by_key(|(i, _, _)| *i);
        for (issue_index, op, pooled) in leaks {
            diags.push(Diagnostic::UnwaitedHandle {
                rank,
                issue_index,
                op: op.to_string(),
            });
            if pooled {
                diags.push(Diagnostic::PooledLeak {
                    rank,
                    issue_index,
                    op: op.to_string(),
                });
            }
        }
    }
    diags
}
