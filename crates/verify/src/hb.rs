//! Happens-before engine: per-rank vector clocks over schedule streams.
//!
//! The deadlock simulation ([`crate::deadlock`]) asks *does this
//! schedule complete?*; this module asks the finer question *what is
//! ordered with what?* — and answers it with vector clocks built from
//! the same two-context model:
//!
//! * each rank has a **main context** (the training/serving code) and a
//!   **worker context** (the comm worker of
//!   `axonn_collectives::nonblocking`, executing async ops strictly in
//!   issue order), giving `2 * ranks` clock components;
//! * an async `Issue` is a handoff edge main → worker (the worker's job
//!   inherits the issuer's clock);
//! * a collective **instance** (keyed `(group_key, seq)`) completes with
//!   the join of every member's arrival clock — a collective is a
//!   synchronisation point for its whole group;
//! * a `Wait` is a handoff edge worker → main: the waiter joins the
//!   *worker's* clock at job completion. Because the worker is FIFO,
//!   waiting a later op also orders the main context after every
//!   earlier async op — the exact guarantee the runtime provides.
//!
//! Each async op owns an **overlap window** `[issue clock, end clock]`:
//! the span during which the collective may still read or write its
//! buffer. The race detector ([`races`]) flags every
//! [`SchedEvent::BufWrite`] annotation that is *concurrent* with a
//! window on the same buffer id — neither ordered after the window's
//! end nor before its issue. The slab-lifetime analysis
//! ([`crate::slab`]) reuses the same windows to prove pooled slabs are
//! recycled only after all readers' clocks pass their last use.
//!
//! Today's transport copies payloads at issue time, so these races
//! cannot corrupt data *yet*; the engine certifies the stronger
//! zero-copy discipline (writes happen-before issues, recycles
//! happen-after ends) so an in-place payload path can land without
//! changing the contract.

use crate::diag::Diagnostic;
use axonn_collectives::{SchedEvent, SchedOp};
use std::collections::{HashMap, VecDeque};

type Key = (u64, u64); // (group_key, seq)

/// A vector clock over `2 * ranks` components: `2r` is rank `r`'s main
/// context, `2r + 1` its comm-worker context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn new(dim: usize) -> VClock {
        VClock(vec![0; dim])
    }

    fn tick(&mut self, component: usize) {
        self.0[component] += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise ≤ — "self happens-before-or-equals other".
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// One async collective's overlap window on a rank.
#[derive(Debug, Clone)]
pub(crate) struct OpWindow {
    pub(crate) rank: usize,
    /// Event index of the `Issue` in the rank's stream.
    pub(crate) issue_index: usize,
    /// Ordinal of this op among the rank's collective issues (op #).
    pub(crate) op_index: usize,
    /// Rendered op, for diagnostics.
    pub(crate) op: String,
    /// Wire-lane label of the op's kind (`SchedKind::lane_label`).
    pub(crate) lane: &'static str,
    pub(crate) buf: Option<u64>,
    pub(crate) slab: Option<u64>,
    /// Main-context clock at issue: anything ≤ this happens-before the
    /// collective starts.
    pub(crate) issue: VClock,
    /// Worker-context clock at completion: anything the end clock ≤ of
    /// is ordered after the collective finished. `Some` for every
    /// window once [`analyze`] succeeds.
    pub(crate) end: Option<VClock>,
}

/// A recorded main-context buffer mutation.
#[derive(Debug, Clone)]
pub(crate) struct WriteSite {
    pub(crate) rank: usize,
    pub(crate) event_index: usize,
    pub(crate) buf: u64,
    pub(crate) label: &'static str,
    pub(crate) clock: VClock,
}

/// A recorded explicit slab recycle.
#[derive(Debug, Clone)]
pub(crate) struct RecycleSite {
    pub(crate) rank: usize,
    pub(crate) event_index: usize,
    pub(crate) slab: u64,
    pub(crate) clock: VClock,
}

/// The happens-before facts extracted from one world's streams.
pub struct HbAnalysis {
    pub(crate) windows: Vec<OpWindow>,
    pub(crate) writes: Vec<WriteSite>,
    pub(crate) recycles: Vec<RecycleSite>,
}

enum Blocked {
    /// Main context inside a blocking collective.
    Collective(Key),
    /// Main context in `AsyncHandle::wait` for the window at this index.
    Wait(usize),
}

struct WorkerJob {
    key: Key,
    members: Vec<usize>,
    window: usize,
    arrived: bool,
}

struct RankSim<'a> {
    events: &'a [SchedEvent],
    pc: usize,
    main: VClock,
    worker_clock: VClock,
    blocked: Option<Blocked>,
    worker: VecDeque<WorkerJob>,
    /// `(group, seq)` → window index, for pairing waits with issues.
    issued: HashMap<Key, usize>,
    /// Collective issues seen so far (op ordinal counter).
    ops: usize,
}

impl RankSim<'_> {
    fn finished(&self) -> bool {
        self.pc == self.events.len() && self.blocked.is_none() && self.worker.is_empty()
    }
}

struct Instance {
    members: Vec<usize>,
    arrived: Vec<usize>,
    /// Join of all arrival clocks; becomes the completion clock.
    accum: VClock,
    complete: bool,
}

fn arrive(
    instances: &mut HashMap<Key, Instance>,
    key: Key,
    members: &[usize],
    rank: usize,
    clock: &VClock,
    dim: usize,
) {
    let inst = instances.entry(key).or_insert_with(|| Instance {
        members: members.to_vec(),
        arrived: Vec::new(),
        accum: VClock::new(dim),
        complete: false,
    });
    if !inst.arrived.contains(&rank) {
        inst.arrived.push(rank);
    }
    inst.accum.join(clock);
}

fn key_of(op: &SchedOp) -> Key {
    (op.group_key, op.seq)
}

/// Run the vector-clock simulation over all ranks' streams. Returns
/// `None` when the schedule wedges (the deadlock checker owns that
/// diagnosis); on `Some`, every window's end clock is populated.
pub fn analyze(streams: &[Vec<SchedEvent>]) -> Option<HbAnalysis> {
    let dim = 2 * streams.len();
    let mut ranks: Vec<RankSim> = streams
        .iter()
        .map(|events| RankSim {
            events,
            pc: 0,
            main: VClock::new(dim),
            worker_clock: VClock::new(dim),
            blocked: None,
            worker: VecDeque::new(),
            issued: HashMap::new(),
            ops: 0,
        })
        .collect();
    let mut instances: HashMap<Key, Instance> = HashMap::new();
    let mut windows: Vec<OpWindow> = Vec::new();
    let mut writes: Vec<WriteSite> = Vec::new();
    let mut recycles: Vec<RecycleSite> = Vec::new();

    loop {
        let mut progress = false;

        for (rank, state) in ranks.iter_mut().enumerate() {
            let main_c = 2 * rank;
            let worker_c = 2 * rank + 1;

            // Worker context: start the front job (arrival), then pop it
            // once its instance completes, stamping the window's end.
            if let Some(job) = state.worker.front_mut() {
                if !job.arrived {
                    // Handoff edge: the job inherits the issuer's clock.
                    let issue = windows[job.window].issue.clone();
                    state.worker_clock.join(&issue);
                    state.worker_clock.tick(worker_c);
                    arrive(
                        &mut instances,
                        job.key,
                        &job.members,
                        rank,
                        &state.worker_clock,
                        dim,
                    );
                    job.arrived = true;
                    progress = true;
                }
                if instances.get(&job.key).is_some_and(|i| i.complete) {
                    let inst = &instances[&job.key];
                    state.worker_clock.join(&inst.accum);
                    state.worker_clock.tick(worker_c);
                    windows[job.window].end = Some(state.worker_clock.clone());
                    state.worker.pop_front();
                    progress = true;
                }
            }

            // Main context: unblock, then run to the next blocking point.
            match &state.blocked {
                Some(Blocked::Collective(key)) => {
                    if let Some(inst) = instances.get(key).filter(|i| i.complete) {
                        state.main.join(&inst.accum);
                        state.main.tick(main_c);
                        state.blocked = None;
                        progress = true;
                    }
                }
                Some(Blocked::Wait(w)) => {
                    if let Some(end) = windows[*w].end.clone() {
                        state.main.join(&end);
                        state.main.tick(main_c);
                        state.blocked = None;
                        progress = true;
                    }
                }
                None => {}
            }
            if state.blocked.is_some() {
                continue;
            }
            while state.pc < state.events.len() {
                match &state.events[state.pc] {
                    SchedEvent::Marker { .. } => {
                        state.pc += 1;
                        progress = true;
                    }
                    SchedEvent::BufWrite { buf, label } => {
                        state.main.tick(main_c);
                        writes.push(WriteSite {
                            rank,
                            event_index: state.pc,
                            buf: *buf,
                            label,
                            clock: state.main.clone(),
                        });
                        state.pc += 1;
                        progress = true;
                    }
                    SchedEvent::SlabRecycle { slab } => {
                        state.main.tick(main_c);
                        recycles.push(RecycleSite {
                            rank,
                            event_index: state.pc,
                            slab: *slab,
                            clock: state.main.clone(),
                        });
                        state.pc += 1;
                        progress = true;
                    }
                    SchedEvent::Issue(op) if op.blocking => {
                        state.main.tick(main_c);
                        state.ops += 1;
                        let key = key_of(op);
                        arrive(&mut instances, key, &op.ranks, rank, &state.main, dim);
                        state.blocked = Some(Blocked::Collective(key));
                        state.pc += 1;
                        progress = true;
                        break;
                    }
                    SchedEvent::Issue(op) => {
                        state.main.tick(main_c);
                        let op_index = state.ops;
                        state.ops += 1;
                        let key = key_of(op);
                        let window = windows.len();
                        windows.push(OpWindow {
                            rank,
                            issue_index: state.pc,
                            op_index,
                            op: op.to_string(),
                            lane: op.kind.lane_label(),
                            buf: op.buf,
                            slab: op.slab,
                            issue: state.main.clone(),
                            end: None,
                        });
                        state.issued.insert(key, window);
                        state.worker.push_back(WorkerJob {
                            key,
                            members: op.ranks.clone(),
                            window,
                            arrived: false,
                        });
                        state.pc += 1;
                        progress = true;
                    }
                    SchedEvent::Wait { group_key, seq } => {
                        match state.issued.get(&(*group_key, *seq)).copied() {
                            // Unpaired waits (possible only in injected /
                            // defective streams; the lints flag them) carry
                            // no ordering information.
                            None => {
                                state.pc += 1;
                                progress = true;
                            }
                            Some(w) => {
                                if let Some(end) = windows[w].end.clone() {
                                    state.main.join(&end);
                                    state.main.tick(main_c);
                                    state.pc += 1;
                                    progress = true;
                                } else {
                                    state.blocked = Some(Blocked::Wait(w));
                                    state.pc += 1;
                                    progress = true;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }

        // Complete instances whose arrivals cover all members.
        for inst in instances.values_mut() {
            if !inst.complete && inst.members.iter().all(|m| inst.arrived.contains(m)) {
                inst.complete = true;
                progress = true;
            }
        }

        if ranks.iter().all(|r| r.finished()) {
            return Some(HbAnalysis {
                windows,
                writes,
                recycles,
            });
        }
        if !progress {
            return None; // wedged — the deadlock checker owns this case
        }
    }
}

/// The race detector: every recorded buffer write must be ordered with
/// every overlap window on the same buffer id — after the window's end
/// (the op finished) or before its issue (program order). A write
/// concurrent with the window is flagged: the pending collective may
/// still read or write the buffer.
pub fn races(analysis: &HbAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for w in &analysis.writes {
        for win in &analysis.windows {
            if win.buf != Some(w.buf) {
                continue;
            }
            let Some(end) = &win.end else { continue };
            let after_end = end.leq(&w.clock);
            let before_issue = w.clock.leq(&win.issue);
            if !after_end && !before_issue {
                diags.push(Diagnostic::OverlapRace {
                    rank: w.rank,
                    write_index: w.event_index,
                    buf: w.buf,
                    label: w.label.to_string(),
                    op: win.op.clone(),
                    op_index: win.op_index,
                    lane: win.lane,
                    issue_index: win.issue_index,
                });
            }
        }
    }
    diags
}
