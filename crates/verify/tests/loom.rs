//! Loom model-checking targets for the transport's concurrency
//! primitives. Build and run with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p axonn-verify --test loom
//! ```
//!
//! Under `cfg(loom)` the vendored `parking_lot` delegates its mutexes
//! and condvars to the vendored `loom` model checker, which explores
//! every bounded thread interleaving via DFS with a deterministic
//! cooperative scheduler. A test passing here means the property holds
//! on *all* interleavings, not just the ones the OS happened to pick.
#![cfg(loom)]

use axonn_collectives::mailbox::Transport;
use axonn_collectives::{BufferPool, Payload};
use loom::thread;
use std::sync::Arc;

/// Message key in the shape the transport expects; the exact value is
/// irrelevant to the mailbox protocol.
const KEY: u128 = 42;

/// No lost wakeup in the mailbox rendezvous: a receiver blocked in
/// `recv` is always woken by a concurrent `send`, in every
/// interleaving. A lost wakeup would leave the receiver parked forever,
/// which loom reports as a deadlock and fails the test.
#[test]
fn mailbox_send_recv_no_lost_wakeup() {
    loom::model(|| {
        let transport = Transport::new(2);
        let t = Arc::clone(&transport);
        let sender = thread::spawn(move || {
            t.send(1, 0, KEY, vec![7.0f32]);
        });
        let got = transport.recv(0, 1, KEY);
        assert_eq!(got.as_slice(), &[7.0]);
        sender.join().unwrap();
    });
}

/// Distinct keys deliver independently: a deposit on one key must not
/// satisfy (or permanently absorb the wakeup of) a receiver parked on
/// another key — the receiver re-checks its own queue and parks again
/// until its key arrives.
#[test]
fn mailbox_distinct_keys_deliver_independently() {
    loom::model(|| {
        let transport = Transport::new(2);
        let t = Arc::clone(&transport);
        let sender = thread::spawn(move || {
            t.send(1, 0, KEY + 1, vec![2.0f32]);
            t.send(1, 0, KEY, vec![1.0f32]);
        });
        assert_eq!(transport.recv(0, 1, KEY).as_slice(), &[1.0]);
        assert_eq!(transport.recv(0, 1, KEY + 1).as_slice(), &[2.0]);
        sender.join().unwrap();
    });
}

/// No double-recycle: when two clones of one pooled payload drop
/// concurrently, the slab returns to the pool exactly once — the next
/// two checkouts of the class see one hit, then one miss.
#[test]
fn pool_concurrent_drop_recycles_once() {
    loom::model(|| {
        let pool = BufferPool::new();
        let (payload, hit) = Payload::copy_pooled(&pool, &[1.0, 2.0, 3.0]);
        assert!(!hit, "fresh pool has nothing shelved");
        let clone = payload.clone();
        let t = thread::spawn(move || drop(clone));
        drop(payload);
        t.join().unwrap();
        // Exactly one shelved slab: hit, then miss.
        let (_p1, hit1) = Payload::copy_pooled(&pool, &[0.0]);
        let (_p2, hit2) = Payload::copy_pooled(&pool, &[0.0]);
        assert!(hit1, "first checkout must reuse the recycled slab");
        assert!(!hit2, "slab must not have been recycled twice");
    });
}

/// No use-after-drain: `into_vec` racing a concurrent clone-drop never
/// observes drained storage — whichever reference is last recycles (or
/// copies), and the data read is always intact.
#[test]
fn pool_into_vec_races_clone_drop_safely() {
    loom::model(|| {
        let pool = BufferPool::new();
        let (payload, _) = Payload::copy_pooled(&pool, &[4.0, 5.0]);
        let clone = payload.clone();
        let t = thread::spawn(move || drop(clone));
        let data = payload.into_vec();
        assert_eq!(data, vec![4.0, 5.0]);
        t.join().unwrap();
    });
}

/// Dropping the pool while a payload is still in flight is safe: the
/// slab's weak pool reference simply fails to upgrade and the buffer is
/// freed instead of shelved — no panic, no dangling shelf.
#[test]
fn pool_dropped_before_payload_is_safe() {
    loom::model(|| {
        let pool = BufferPool::new();
        let (payload, _) = Payload::copy_pooled(&pool, &[9.0]);
        let t = thread::spawn(move || {
            assert_eq!(payload.as_slice(), &[9.0]);
            drop(payload);
        });
        drop(pool);
        t.join().unwrap();
    });
}
