//! Loom model-checking targets for the transport's concurrency
//! primitives. Build and run with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p axonn-verify --test loom
//! ```
//!
//! Under `cfg(loom)` the vendored `parking_lot` delegates its mutexes
//! and condvars to the vendored `loom` model checker, which explores
//! every bounded thread interleaving via DFS with a deterministic
//! cooperative scheduler. A test passing here means the property holds
//! on *all* interleavings, not just the ones the OS happened to pick.
#![cfg(loom)]

use axonn_collectives::mailbox::Transport;
use axonn_collectives::{BufferPool, Payload};
use loom::thread;
use std::sync::Arc;

/// Message key in the shape the transport expects; the exact value is
/// irrelevant to the mailbox protocol.
const KEY: u128 = 42;

/// No lost wakeup in the mailbox rendezvous: a receiver blocked in
/// `recv` is always woken by a concurrent `send`, in every
/// interleaving. A lost wakeup would leave the receiver parked forever,
/// which loom reports as a deadlock and fails the test.
#[test]
fn mailbox_send_recv_no_lost_wakeup() {
    loom::model(|| {
        let transport = Transport::new(2);
        let t = Arc::clone(&transport);
        let sender = thread::spawn(move || {
            t.send(1, 0, KEY, vec![7.0f32]);
        });
        let got = transport.recv(0, 1, KEY);
        assert_eq!(got.as_slice(), &[7.0]);
        sender.join().unwrap();
    });
}

/// Distinct keys deliver independently: a deposit on one key must not
/// satisfy (or permanently absorb the wakeup of) a receiver parked on
/// another key — the receiver re-checks its own queue and parks again
/// until its key arrives.
#[test]
fn mailbox_distinct_keys_deliver_independently() {
    loom::model(|| {
        let transport = Transport::new(2);
        let t = Arc::clone(&transport);
        let sender = thread::spawn(move || {
            t.send(1, 0, KEY + 1, vec![2.0f32]);
            t.send(1, 0, KEY, vec![1.0f32]);
        });
        assert_eq!(transport.recv(0, 1, KEY).as_slice(), &[1.0]);
        assert_eq!(transport.recv(0, 1, KEY + 1).as_slice(), &[2.0]);
        sender.join().unwrap();
    });
}

/// No double-recycle: when two clones of one pooled payload drop
/// concurrently, the slab returns to the pool exactly once — the next
/// two checkouts of the class see one hit, then one miss.
#[test]
fn pool_concurrent_drop_recycles_once() {
    loom::model(|| {
        let pool = BufferPool::new();
        let (payload, hit) = Payload::copy_pooled(&pool, &[1.0, 2.0, 3.0]);
        assert!(!hit, "fresh pool has nothing shelved");
        let clone = payload.clone();
        let t = thread::spawn(move || drop(clone));
        drop(payload);
        t.join().unwrap();
        // Exactly one shelved slab: hit, then miss.
        let (_p1, hit1) = Payload::copy_pooled(&pool, &[0.0]);
        let (_p2, hit2) = Payload::copy_pooled(&pool, &[0.0]);
        assert!(hit1, "first checkout must reuse the recycled slab");
        assert!(!hit2, "slab must not have been recycled twice");
    });
}

/// No use-after-drain: `into_vec` racing a concurrent clone-drop never
/// observes drained storage — whichever reference is last recycles (or
/// copies), and the data read is always intact.
#[test]
fn pool_into_vec_races_clone_drop_safely() {
    loom::model(|| {
        let pool = BufferPool::new();
        let (payload, _) = Payload::copy_pooled(&pool, &[4.0, 5.0]);
        let clone = payload.clone();
        let t = thread::spawn(move || drop(clone));
        let data = payload.into_vec();
        assert_eq!(data, vec![4.0, 5.0]);
        t.join().unwrap();
    });
}

/// The nonblocking worker's issue/wait handoff, modelled over the
/// mailbox: the main context "issues" by depositing the payload for the
/// worker, the worker executes and deposits the result, and the main
/// context "waits" by receiving it. The two-hop rendezvous must deliver
/// in every interleaving — a lost wakeup on either hop parks a thread
/// forever and loom reports the deadlock.
#[test]
fn issue_wait_handoff_delivers_in_all_interleavings() {
    loom::model(|| {
        let transport = Transport::new(2);
        let t = Arc::clone(&transport);
        let worker = thread::spawn(move || {
            // Worker context: pick up the issued job, execute, hand the
            // result back on the completion key.
            let job = t.recv(1, 0, KEY);
            let done: Vec<f32> = job.as_slice().iter().map(|v| v * 2.0).collect();
            t.send(1, 0, KEY + 1, done);
        });
        // Main context: issue, then wait.
        transport.send(0, 1, KEY, vec![1.0f32, 2.0]);
        let got = transport.recv(0, 1, KEY + 1);
        assert_eq!(got.as_slice(), &[2.0, 4.0]);
        worker.join().unwrap();
    });
}

/// The `OpScope` RAII marker substrate: a rank entering and leaving a
/// collective (`set_op`/`clear_op`, what `Comm::op_scope` and its Drop
/// impl call) racing a watchdog snapshot. The observer must only ever
/// see a coherent marker — the named op or none — and once the guard is
/// gone the marker is always cleared, in every interleaving.
#[test]
fn op_scope_markers_are_coherent_under_snapshot() {
    use axonn_collectives::Beats;
    loom::model(|| {
        let beats = Beats::new(1);
        let b = beats.clone();
        let rank = thread::spawn(move || {
            b.set_op(0, "all_reduce"); // OpScope creation
            b.note_collective(0); // work inside the scope
            b.clear_op(0); // OpScope drop
        });
        let seen = beats.snapshot(0).current_op;
        assert!(
            seen.is_none() || seen == Some("all_reduce"),
            "torn op marker: {seen:?}"
        );
        rank.join().unwrap();
        let final_snap = beats.snapshot(0);
        assert_eq!(final_snap.current_op, None, "guard failed to clear");
        assert_eq!(final_snap.collectives, 1);
    });
}

/// Dropping the pool while a payload is still in flight is safe: the
/// slab's weak pool reference simply fails to upgrade and the buffer is
/// freed instead of shelved — no panic, no dangling shelf.
#[test]
fn pool_dropped_before_payload_is_safe() {
    loom::model(|| {
        let pool = BufferPool::new();
        let (payload, _) = Payload::copy_pooled(&pool, &[9.0]);
        let t = thread::spawn(move || {
            assert_eq!(payload.as_slice(), &[9.0]);
            drop(payload);
        });
        drop(pool);
        t.join().unwrap();
    });
}
