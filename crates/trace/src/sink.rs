//! Per-rank event recorder and the finished per-rank trace.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Serialize, Value};

use crate::event::{EventDetail, Stream, TraceEvent, XferStats};

const STREAMS: usize = 4;

fn stream_slot(stream: Stream) -> usize {
    match stream {
        Stream::Compute => 0,
        Stream::Comm | Stream::CommAg => 1,
        Stream::CommAr => 2,
        Stream::CommRs => 3,
    }
}

/// Lock-cheap per-rank recorder.
///
/// Events land in one `Vec` per stream behind its own mutex; each stream
/// is written by exactly one thread (the rank's compute thread or its
/// communication worker), so the locks are uncontended in steady state —
/// the cost of a `record` call is one CAS plus a `Vec` push. The current
/// layer scope is an atomic so the communication worker can stamp events
/// without touching the compute thread's state.
pub struct TraceSink {
    rank: usize,
    origin: Instant,
    enabled: AtomicBool,
    /// Current layer scope, `-1` when outside any layer.
    layer_scope: AtomicI64,
    streams: [Mutex<Vec<TraceEvent>>; STREAMS],
}

impl TraceSink {
    pub fn new(rank: usize) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            rank,
            origin: Instant::now(),
            enabled: AtomicBool::new(true),
            layer_scope: AtomicI64::new(-1),
            streams: std::array::from_fn(|_| Mutex::new(Vec::new())),
        })
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Wall-clock nanoseconds since this sink was created.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Pause/resume recording (used while the kernel tuner replays
    /// candidate GEMMs so timing probes don't pollute the schedule).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Enter/leave a layer scope. Events recorded while a scope is set
    /// inherit it, including asynchronous collectives issued from it.
    pub fn set_layer(&self, layer: Option<usize>) {
        let v = layer.map(|l| l as i64).unwrap_or(-1);
        self.layer_scope.store(v, Ordering::Release);
    }

    pub fn layer(&self) -> Option<usize> {
        let v = self.layer_scope.load(Ordering::Acquire);
        (v >= 0).then_some(v as usize)
    }

    /// Record a span with explicit timestamps on both clocks.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        stream: Stream,
        t_start: f64,
        t_end: f64,
        wall_start_ns: u64,
        wall_end_ns: u64,
        layer: Option<usize>,
        detail: EventDetail,
    ) {
        self.record_xfer(
            stream,
            t_start,
            t_end,
            wall_start_ns,
            wall_end_ns,
            layer,
            detail,
            XferStats::default(),
        );
    }

    /// [`record`](Self::record) with transport transfer statistics
    /// attached (used by the pooled exec transport for collective spans).
    #[allow(clippy::too_many_arguments)]
    pub fn record_xfer(
        &self,
        stream: Stream,
        t_start: f64,
        t_end: f64,
        wall_start_ns: u64,
        wall_end_ns: u64,
        layer: Option<usize>,
        detail: EventDetail,
        xfer: XferStats,
    ) {
        if !self.is_enabled() {
            return;
        }
        let ev = TraceEvent {
            stream,
            t_start,
            t_end,
            wall_start_ns,
            wall_end_ns,
            layer,
            detail,
            xfer,
        };
        self.streams[stream_slot(stream)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ev);
    }

    /// Record a span, stamping the current layer scope and using a single
    /// wall timestamp captured now for both edges (for events whose wall
    /// duration is not meaningful, e.g. simulator spans).
    pub fn record_scoped(&self, stream: Stream, t_start: f64, t_end: f64, detail: EventDetail) {
        let now = self.now_ns();
        self.record(stream, t_start, t_end, now, now, self.layer(), detail);
    }

    /// Instantaneous marker at virtual time `t` on `stream`.
    pub fn mark(&self, stream: Stream, t: f64, detail: EventDetail) {
        self.record_scoped(stream, t, t, detail);
    }

    /// Open a span whose end is not known yet (e.g. a layer scope that
    /// encloses other events). The event is pushed immediately — keeping
    /// per-stream start times monotone even with nesting — and its end
    /// edge is patched by [`TraceSink::close_span`]. Returns `None` when
    /// recording is paused.
    pub fn open_span(&self, stream: Stream, t_start: f64, detail: EventDetail) -> Option<OpenSpan> {
        if !self.is_enabled() {
            return None;
        }
        let wall = self.now_ns();
        let slot = stream_slot(stream);
        let mut events = self.streams[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let index = events.len();
        events.push(TraceEvent {
            stream,
            t_start,
            t_end: t_start,
            wall_start_ns: wall,
            wall_end_ns: wall,
            layer: self.layer(),
            detail,
            xfer: XferStats::default(),
        });
        Some(OpenSpan { slot, index })
    }

    /// Close a span opened with [`TraceSink::open_span`], stamping its
    /// virtual and wall end times. Accepts `None` so callers can thread
    /// the handle through without re-checking the enable gate.
    pub fn close_span(&self, span: Option<OpenSpan>, t_end: f64) {
        let Some(OpenSpan { slot, index }) = span else {
            return;
        };
        let wall = self.now_ns();
        let mut events = self.streams[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(ev) = events.get_mut(index) {
            ev.t_end = ev.t_start.max(t_end);
            ev.wall_end_ns = wall;
        }
    }

    /// Drain every stream into a finished [`RankTrace`].
    pub fn finish(&self) -> RankTrace {
        let mut events = Vec::new();
        for s in &self.streams {
            events.extend(
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .drain(..),
            );
        }
        // Stable order: by stream slot (drain order) — already grouped;
        // keep per-stream push order untouched.
        RankTrace {
            rank: self.rank,
            events,
        }
    }
}

/// Handle to a span opened with [`TraceSink::open_span`] and awaiting its
/// end edge.
pub struct OpenSpan {
    slot: usize,
    index: usize,
}

/// All events one rank recorded, grouped by stream in push order.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTrace {
    pub rank: usize,
    pub events: Vec<TraceEvent>,
}

impl RankTrace {
    /// Events of one stream, in the order they were recorded.
    pub fn stream_events(&self, stream: Stream) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.stream == stream)
    }

    /// The ordered event-kind labels on the compute stream — the
    /// plane-independent schedule signature (see acceptance criterion 3).
    pub fn kind_signature(&self) -> Vec<String> {
        self.stream_events(Stream::Compute)
            .map(|e| e.detail.kind())
            .collect()
    }

    /// True when virtual timestamps are monotone within every stream
    /// (event start never precedes the previous event's start, and every
    /// span has non-negative length).
    pub fn streams_monotone(&self) -> bool {
        for stream in [
            Stream::Compute,
            Stream::Comm,
            Stream::CommAg,
            Stream::CommAr,
            Stream::CommRs,
        ] {
            let mut prev = f64::NEG_INFINITY;
            for e in self.stream_events(stream) {
                if e.t_start < prev || e.t_end < e.t_start {
                    return false;
                }
                prev = e.t_start;
            }
        }
        true
    }

    /// Deterministic serialization: virtual time and payloads only, no
    /// wall clock. Byte-identical across identical seeded runs.
    pub fn canonical_json(&self) -> String {
        let v = Value::Object(vec![
            ("rank".into(), self.rank.serialize()),
            (
                "events".into(),
                Value::Array(self.events.iter().map(|e| e.canonical_value()).collect()),
            ),
        ]);
        serde_json::to_string(&v).expect("trace serialization is infallible")
    }
}

impl Serialize for RankTrace {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("rank".into(), self.rank.serialize()),
            ("events".into(), self.events.serialize()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollOp;

    fn gemm() -> EventDetail {
        EventDetail::Gemm {
            mode: "NN",
            flops: 8.0,
            packed_bytes: 512,
            panels: 1,
        }
    }

    #[test]
    fn records_respect_layer_scope_and_enable_gate() {
        let sink = TraceSink::new(3);
        sink.record_scoped(Stream::Compute, 0.0, 1.0, gemm());
        sink.set_layer(Some(2));
        sink.record_scoped(Stream::Compute, 1.0, 2.0, gemm());
        sink.set_enabled(false);
        sink.record_scoped(Stream::Compute, 2.0, 3.0, gemm());
        sink.set_enabled(true);
        sink.set_layer(None);
        let trace = sink.finish();
        assert_eq!(trace.rank, 3);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].layer, None);
        assert_eq!(trace.events[1].layer, Some(2));
    }

    #[test]
    fn open_close_span_keeps_start_order_and_patches_end() {
        let sink = TraceSink::new(0);
        sink.set_layer(Some(1));
        let span = sink.open_span(Stream::Compute, 0.0, EventDetail::LayerFwd { layer: 1 });
        sink.record_scoped(Stream::Compute, 0.25, 0.75, gemm());
        sink.close_span(span, 1.0);
        sink.set_layer(None);
        let trace = sink.finish();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].detail.kind(), "layer_fwd");
        assert_eq!(trace.events[0].t_start, 0.0);
        assert_eq!(trace.events[0].t_end, 1.0);
        assert_eq!(trace.events[0].layer, Some(1));
        assert!(trace.streams_monotone());

        // Paused sink yields no handle and close is a no-op.
        let sink = TraceSink::new(0);
        sink.set_enabled(false);
        let span = sink.open_span(Stream::Compute, 0.0, gemm());
        assert!(span.is_none());
        sink.close_span(span, 1.0);
        assert!(sink.finish().events.is_empty());
    }

    #[test]
    fn monotonicity_check_spots_regressions() {
        let sink = TraceSink::new(0);
        sink.record_scoped(Stream::Compute, 0.0, 1.0, gemm());
        sink.record_scoped(
            Stream::Comm,
            5.0,
            6.0,
            EventDetail::Collective {
                op: CollOp::AllReduce,
                group_size: 2,
                bytes: 64,
                seq: 0,
                blocking: false,
                op_seconds: 1.0,
            },
        );
        sink.record_scoped(Stream::Compute, 2.0, 2.5, gemm());
        let good = sink.finish();
        assert!(good.streams_monotone());

        let sink = TraceSink::new(0);
        sink.record_scoped(Stream::Compute, 2.0, 3.0, gemm());
        sink.record_scoped(Stream::Compute, 1.0, 1.5, gemm());
        assert!(!sink.finish().streams_monotone());
    }

    #[test]
    fn canonical_json_is_wall_time_free_and_stable() {
        let build = || {
            let sink = TraceSink::new(1);
            sink.record_scoped(Stream::Compute, 0.0, 0.125, gemm());
            std::thread::sleep(std::time::Duration::from_millis(1));
            sink.record_scoped(Stream::Compute, 0.125, 0.25, gemm());
            sink.finish().canonical_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "canonical traces must be byte-identical");
        assert!(!a.contains("wall"));
    }

    #[test]
    fn signature_covers_compute_stream_only() {
        let sink = TraceSink::new(0);
        sink.mark(
            Stream::Compute,
            0.0,
            EventDetail::Issue {
                op: CollOp::AllGather,
                group_size: 2,
                bytes: 32,
                seq: 1,
            },
        );
        sink.record_scoped(
            Stream::Comm,
            0.0,
            1.0,
            EventDetail::Collective {
                op: CollOp::AllGather,
                group_size: 2,
                bytes: 32,
                seq: 1,
                blocking: false,
                op_seconds: 1.0,
            },
        );
        sink.record_scoped(Stream::Compute, 0.0, 1.0, gemm());
        let sig = sink.finish().kind_signature();
        assert_eq!(
            sig,
            vec!["issue:all_gather".to_string(), "gemm".to_string()]
        );
    }
}
