//! # axonn-trace — unified tracing & metrics for both execution planes
//!
//! The workspace runs the same 4D-parallel schedule on two planes: the
//! correctness plane executes it with real tensors (`axonn-exec` +
//! `axonn-collectives`), the performance plane simulates it under a
//! machine model (`axonn-sim`). This crate gives both a shared event
//! vocabulary and recorder so a run can be
//!
//! * exported as Chrome trace-event JSON (one track per rank per stream,
//!   loadable in Perfetto / `chrome://tracing`),
//! * rolled up into a metrics registry (bytes per collective op, GEMM
//!   flops per mode, wait-gap histograms), and
//! * reduced to an overlap-efficiency report — how much collective time
//!   hid under compute, the quantity the paper's Fig. 5 measures.
//!
//! Every event carries both a *virtual* timestamp (from the plane's cost
//! model; deterministic) and a *wall* timestamp (diagnostic). Canonical
//! serializations exclude wall time, so two identical seeded runs produce
//! byte-identical traces — the determinism tests rely on this.

mod chrome;
mod event;
mod flight;
mod live;
mod metrics;
mod report;
mod sink;

pub use chrome::chrome_trace_json;
pub use event::{CollOp, EventDetail, Stream, TraceEvent, XferStats};
pub use flight::{flight_capacity, flight_dir, FlightEntry, FlightRecorder, DEFAULT_FLIGHT_CAP};
pub use live::{
    metrics_enabled, Counter, Gauge, LiveCollectives, LiveHistogram, LiveRegistry, MetricsSnapshot,
    HIST_SHARDS,
};
pub use metrics::{Histogram, MetricsRegistry, BYTES_BOUNDS, SECONDS_BOUNDS};
pub use report::{LayerOverlap, OverlapReport, TraceSummary};
pub use sink::{OpenSpan, RankTrace, TraceSink};
