//! Live metrics plane: lock-light counters, gauges, and sharded
//! histograms that hot paths update with plain atomic ops while an
//! observer thread reads concurrently.
//!
//! Design constraints, in order:
//!
//! 1. **No allocation and no locks on the update path.** Handles
//!    ([`Counter`], [`Gauge`], [`LiveHistogram`]) are registered once
//!    (cold path, takes the registry mutex) and cloned into the hot
//!    path; `inc`/`observe` are a handful of relaxed atomic ops.
//! 2. **Concurrent readers see a coherent-enough view.** Snapshots are
//!    monotone per cell but not cross-cell atomic — a reader may see a
//!    count without its sum. That is the standard Prometheus contract
//!    and fine for monitoring.
//! 3. **Same name vocabulary as the post-hoc plane.** The
//!    [`LiveCollectives`] facade pre-registers exactly the names
//!    `MetricsRegistry::from_traces` produces, so `sim` (virtual clocks)
//!    and the exec plane (wall clocks) publish comparable series.
//!
//! Histograms are sharded ([`HIST_SHARDS`] ways, threads pick a shard by
//! a thread-local id) so concurrent ranks don't contend on one cache
//! line; a snapshot folds the shards back into a plain
//! [`Histogram`](crate::Histogram).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Serialize, Value};

use crate::event::XferStats;
use crate::metrics::{Histogram, MetricsRegistry, BYTES_BOUNDS, SECONDS_BOUNDS};
use crate::CollOp;

/// Is live metrics collection enabled? Controlled by `AXONN_METRICS`:
/// `0`/`false` disables it, anything else (including unset) enables it.
/// Mirrors the `AXONN_SCHED_VERIFY` convention but defaults **on** —
/// the whole point of the live plane is that it is always there.
pub fn metrics_enabled() -> bool {
    match std::env::var("AXONN_METRICS") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("false")),
        Err(_) => true,
    }
}

/// Monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge storing an `f64` as its bit pattern.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shards per live histogram. Threads hash to a shard by registration
/// order of a thread-local id, so two ranks hammering the same metric
/// usually touch different cache lines.
pub const HIST_SHARDS: usize = 8;

#[derive(Debug)]
struct HistShard {
    /// One slot per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of finite observations, stored as f64 bits, CAS-updated.
    sum_bits: AtomicU64,
    total: AtomicU64,
    quarantined: AtomicU64,
}

impl HistShard {
    fn new(buckets: usize) -> HistShard {
        HistShard {
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            total: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    fn add_sum(&self, value: f64) {
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

thread_local! {
    static MY_SHARD: usize = {
        static NEXT_SHARD: AtomicU64 = AtomicU64::new(0);
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) as usize % HIST_SHARDS
    };
}

/// Sharded fixed-bucket histogram safe for concurrent observation.
/// Shares the non-finite quarantine semantics of [`Histogram`].
#[derive(Debug, Clone)]
pub struct LiveHistogram {
    bounds: Arc<Vec<f64>>,
    shards: Arc<Vec<HistShard>>,
}

impl LiveHistogram {
    pub fn new(bounds: Vec<f64>) -> LiveHistogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        LiveHistogram {
            bounds: Arc::new(bounds),
            shards: Arc::new((0..HIST_SHARDS).map(|_| HistShard::new(buckets)).collect()),
        }
    }

    pub fn observe(&self, value: f64) {
        let shard = &self.shards[MY_SHARD.with(|s| *s)];
        shard.total.fetch_add(1, Ordering::Relaxed);
        if !value.is_finite() {
            shard.quarantined.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        shard.counts[idx].fetch_add(1, Ordering::Relaxed);
        shard.add_sum(value);
    }

    /// Fold a finished-trace histogram's buckets into shard 0. Used by
    /// `absorb` so the sim plane can republish post-hoc aggregates under
    /// live names; individual values are gone, so the pre-bucketed
    /// counts are merged directly (bounds must match).
    pub fn merge_plain(&self, h: &Histogram) {
        assert_eq!(
            h.bounds(),
            &self.bounds[..],
            "histogram bounds mismatch in merge"
        );
        let shard = &self.shards[0];
        for (slot, &c) in shard.counts.iter().zip(h.bucket_counts()) {
            slot.fetch_add(c, Ordering::Relaxed);
        }
        shard.total.fetch_add(h.count(), Ordering::Relaxed);
        shard
            .quarantined
            .fetch_add(h.quarantined(), Ordering::Relaxed);
        shard.add_sum(h.sum());
    }

    /// Fold all shards into a plain snapshot histogram.
    pub fn snapshot(&self) -> Histogram {
        let buckets = self.bounds.len() + 1;
        let mut counts = vec![0u64; buckets];
        let mut sum = 0.0;
        let mut total = 0u64;
        let mut quarantined = 0u64;
        for shard in self.shards.iter() {
            for (acc, slot) in counts.iter_mut().zip(&shard.counts) {
                *acc += slot.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
            total += shard.total.load(Ordering::Relaxed);
            quarantined += shard.quarantined.load(Ordering::Relaxed);
        }
        Histogram::from_parts((*self.bounds).clone(), counts, sum, total, quarantined)
    }
}

/// Point-in-time view of a [`LiveRegistry`]: plain values, serializable
/// to JSON and Prometheus text.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Serialize for MetricsSnapshot {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.serialize()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Sanitize a dotted metric name into a Prometheus-legal identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("axonn_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Prometheus text exposition format (type hints + cumulative
    /// histogram buckets with an explicit `+Inf` bucket).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", fmt_f64(*value)));
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.bucket_counts().iter().enumerate() {
                cum += c;
                let le = h
                    .bounds()
                    .get(i)
                    .copied()
                    .map(fmt_f64)
                    .unwrap_or_else(|| "+Inf".to_string());
                out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{p}_sum {}\n", fmt_f64(h.sum())));
            out.push_str(&format!("{p}_count {}\n", h.count()));
        }
        out
    }

    /// JSON form of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

#[derive(Debug, Default)]
struct LiveInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, LiveHistogram>>,
}

/// Registry of live metric handles. Registration (`counter` / `gauge` /
/// `histogram`) takes a mutex and may allocate; it is meant to happen
/// once at setup. The returned handles are lock-free. A disabled
/// registry still hands out real handles — the callers' facades are
/// expected to skip stamping instead (see [`LiveCollectives`]), so the
/// flag is consulted once at wiring time, not per update.
#[derive(Debug, Clone, Default)]
pub struct LiveRegistry {
    inner: Arc<LiveInner>,
    enabled: bool,
}

impl LiveRegistry {
    /// Registry honoring the `AXONN_METRICS` environment toggle.
    pub fn new() -> LiveRegistry {
        LiveRegistry::new_enabled(metrics_enabled())
    }

    /// Registry with an explicit enable flag (tests, `monitor`).
    pub fn new_enabled(enabled: bool) -> LiveRegistry {
        LiveRegistry {
            inner: Arc::new(LiveInner::default()),
            enabled,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or register a histogram. Bounds are fixed at first
    /// registration; later callers get the existing handle.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> LiveHistogram {
        let mut map = self.inner.hists.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| LiveHistogram::new(bounds.to_vec()))
            .clone()
    }

    /// Republish a finished-trace aggregation through this registry —
    /// how `sim` keeps virtual-clock runs name-compatible with the live
    /// exec plane.
    pub fn absorb(&self, reg: &MetricsRegistry) {
        for (name, value) in reg.counters() {
            self.counter(name).add(value);
        }
        for (name, h) in reg.histograms() {
            self.histogram(name, h.bounds()).merge_plain(h);
        }
    }

    /// Coherent-enough point-in-time view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Per-op handle bundle for one collective op.
#[derive(Debug, Clone)]
struct OpHandles {
    calls: Counter,
    bytes: Counter,
    chunks: Counter,
    alloc_bytes: Counter,
    pool_hits: Counter,
    pool_misses: Counter,
    bytes_hist: LiveHistogram,
    seconds_hist: LiveHistogram,
}

/// Pre-registered handles for everything the collectives hot paths
/// stamp, indexed by [`CollOp::index`]. Built once per world; stamping
/// is array index + atomic adds, no map lookups or allocation.
///
/// Metric names match `MetricsRegistry::from_traces` exactly, so a live
/// snapshot and a post-hoc aggregation of the same run line up.
#[derive(Debug, Clone)]
pub struct LiveCollectives {
    registry: LiveRegistry,
    ops: Vec<OpHandles>,
    overlap_waits: Counter,
    overlap_wait_seconds: LiveHistogram,
}

impl LiveCollectives {
    pub fn new(registry: &LiveRegistry) -> LiveCollectives {
        let ops = CollOp::ALL
            .iter()
            .map(|op| {
                let n = op.name();
                OpHandles {
                    calls: registry.counter(&format!("collective.{n}.calls")),
                    bytes: registry.counter(&format!("collective.{n}.bytes")),
                    chunks: registry.counter(&format!("collective.{n}.chunks")),
                    alloc_bytes: registry.counter(&format!("collective.{n}.alloc_bytes")),
                    pool_hits: registry.counter(&format!("collective.{n}.pool_hits")),
                    pool_misses: registry.counter(&format!("collective.{n}.pool_misses")),
                    bytes_hist: registry
                        .histogram(&format!("collective.{n}.bytes_hist"), &BYTES_BOUNDS),
                    seconds_hist: registry
                        .histogram(&format!("collective.{n}.seconds_hist"), &SECONDS_BOUNDS),
                }
            })
            .collect();
        LiveCollectives {
            registry: registry.clone(),
            ops,
            overlap_waits: registry.counter("overlap.waits"),
            overlap_wait_seconds: registry.histogram("overlap.wait_seconds_hist", &SECONDS_BOUNDS),
        }
    }

    pub fn registry(&self) -> &LiveRegistry {
        &self.registry
    }

    /// Stamp one finished collective. `seconds` is the modeled op time
    /// when the world tracks time (`None` on untimed worlds — the
    /// seconds histogram is skipped, matching `from_traces`, which only
    /// sees events from traced/timed runs).
    pub fn record_collective(&self, op: CollOp, bytes: u64, seconds: Option<f64>, xfer: XferStats) {
        let h = &self.ops[op.index()];
        h.calls.inc();
        h.bytes.add(bytes);
        h.bytes_hist.observe(bytes as f64);
        if let Some(s) = seconds {
            h.seconds_hist.observe(s);
        }
        h.chunks.add(xfer.chunks as u64);
        h.alloc_bytes.add(xfer.alloc_bytes);
        h.pool_hits.add(xfer.pool_hits);
        h.pool_misses.add(xfer.pool_misses);
    }

    /// Stamp one overlap wait gap (virtual seconds the main stream
    /// blocked on an async collective).
    pub fn record_wait(&self, gap_seconds: f64) {
        self.overlap_waits.inc();
        self.overlap_wait_seconds.observe(gap_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = LiveRegistry::new_enabled(true);
        let c = reg.counter("x.calls");
        c.add(3);
        reg.counter("x.calls").inc(); // same cell
        let g = reg.gauge("x.load");
        g.set(2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x.calls"], 4);
        assert!((snap.gauges["x.load"] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn live_histogram_quarantines_and_snapshots() {
        let h = LiveHistogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(f64::NAN);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.quarantined(), 1);
        assert!((snap.sum() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn live_histogram_concurrent_observers() {
        let h = LiveHistogram::new(vec![1.0, 10.0, 100.0]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 20) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.bucket_counts().iter().sum::<u64>(), 4000);
    }

    #[test]
    fn collectives_facade_uses_from_traces_names() {
        let reg = LiveRegistry::new_enabled(true);
        let live = LiveCollectives::new(&reg);
        live.record_collective(
            CollOp::AllReduce,
            4096,
            Some(1e-3),
            XferStats {
                chunks: 2,
                alloc_bytes: 8192,
                pool_hits: 1,
                pool_misses: 1,
            },
        );
        live.record_wait(1e-4);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["collective.all_reduce.calls"], 1);
        assert_eq!(snap.counters["collective.all_reduce.bytes"], 4096);
        assert_eq!(snap.counters["collective.all_reduce.chunks"], 2);
        assert_eq!(snap.counters["overlap.waits"], 1);
        assert_eq!(
            snap.histograms["collective.all_reduce.seconds_hist"].count(),
            1
        );
        assert_eq!(snap.histograms["overlap.wait_seconds_hist"].count(), 1);
    }

    #[test]
    fn absorb_matches_from_traces_vocabulary() {
        // Build a post-hoc registry and absorb it into a live one: every
        // counter and histogram must carry over under the same name.
        let mut posthoc = MetricsRegistry::new();
        posthoc.counter_add("collective.all_gather.calls", 7);
        posthoc.observe("collective.all_gather.bytes_hist", &BYTES_BOUNDS, 2048.0);
        let live = LiveRegistry::new_enabled(true);
        live.absorb(&posthoc);
        let snap = live.snapshot();
        assert_eq!(snap.counters["collective.all_gather.calls"], 7);
        assert_eq!(
            snap.histograms["collective.all_gather.bytes_hist"].count(),
            1
        );
    }

    #[test]
    fn prometheus_text_exposition() {
        let reg = LiveRegistry::new_enabled(true);
        reg.counter("collective.all_reduce.calls").add(2);
        reg.gauge("rank0.heartbeat_age_ms").set(12.0);
        let h = reg.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(50.0);
        let text = reg.snapshot().prometheus_text();
        assert!(text.contains("# TYPE axonn_collective_all_reduce_calls counter"));
        assert!(text.contains("axonn_collective_all_reduce_calls 2"));
        assert!(text.contains("# TYPE axonn_rank0_heartbeat_age_ms gauge"));
        assert!(text.contains("axonn_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("axonn_lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("axonn_lat_count 2"));
        // JSON snapshot parses.
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"counters\""));
    }

    #[test]
    fn metrics_env_toggle() {
        // Not testing the env var itself (process-global); just the
        // explicit constructors.
        assert!(LiveRegistry::new_enabled(true).enabled());
        assert!(!LiveRegistry::new_enabled(false).enabled());
    }
}
