//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! One process per rank, one thread per stream; spans become `"X"`
//! (complete) events with microsecond timestamps on the virtual clock.

use serde::{Serialize, Value};

use crate::event::{EventDetail, Stream, TraceEvent};
use crate::sink::RankTrace;

const ALL_STREAMS: [Stream; 5] = [
    Stream::Compute,
    Stream::Comm,
    Stream::CommAg,
    Stream::CommAr,
    Stream::CommRs,
];

fn micros(seconds: f64) -> f64 {
    seconds * 1e6
}

fn meta_event(name: &str, pid: usize, tid: u64, arg_name: &str) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), pid.serialize()),
        ("tid".into(), tid.serialize()),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str(arg_name.into()))]),
        ),
    ])
}

fn span_event(rank: usize, ev: &TraceEvent) -> Value {
    let mut args: Vec<(String, Value)> = vec![("kind".into(), Value::Str(ev.detail.kind()))];
    if let Some(layer) = ev.layer {
        args.push(("layer".into(), layer.serialize()));
    }
    match &ev.detail {
        EventDetail::Gemm {
            mode,
            flops,
            packed_bytes,
            panels,
        } => {
            args.push(("mode".into(), mode.serialize()));
            args.push(("flops".into(), flops.serialize()));
            args.push(("packed_bytes".into(), packed_bytes.serialize()));
            args.push(("panels".into(), panels.serialize()));
        }
        EventDetail::Collective {
            group_size,
            bytes,
            seq,
            op_seconds,
            ..
        } => {
            args.push(("group_size".into(), group_size.serialize()));
            args.push(("bytes".into(), bytes.serialize()));
            args.push(("seq".into(), seq.serialize()));
            args.push(("op_seconds".into(), op_seconds.serialize()));
        }
        EventDetail::Issue { bytes, seq, .. } => {
            args.push(("bytes".into(), bytes.serialize()));
            args.push(("seq".into(), seq.serialize()));
        }
        EventDetail::OverlapWait { seq, .. } => {
            args.push(("seq".into(), seq.serialize()));
        }
        EventDetail::TunerDecision {
            choice,
            direct_seconds,
            naive_seconds,
            reroute_seconds,
            ..
        } => {
            args.push(("choice".into(), choice.serialize()));
            args.push(("direct_seconds".into(), direct_seconds.serialize()));
            args.push(("naive_seconds".into(), naive_seconds.serialize()));
            args.push(("reroute_seconds".into(), reroute_seconds.serialize()));
        }
        EventDetail::Recovery {
            event,
            attempt,
            step,
            rank,
        } => {
            args.push(("event".into(), event.serialize()));
            args.push(("attempt".into(), attempt.serialize()));
            args.push(("step".into(), step.serialize()));
            args.push(("rank".into(), rank.serialize()));
        }
        _ => {}
    }

    let dur = micros(ev.t_end - ev.t_start);
    let instant = dur <= 0.0;
    let mut fields: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(ev.detail.display_name())),
        (
            "ph".into(),
            Value::Str(if instant { "i" } else { "X" }.into()),
        ),
        ("pid".into(), rank.serialize()),
        ("tid".into(), ev.stream.index().serialize()),
        ("ts".into(), micros(ev.t_start).serialize()),
    ];
    if instant {
        // Instant events are thread-scoped markers.
        fields.push(("s".into(), Value::Str("t".into())));
    } else {
        fields.push(("dur".into(), dur.serialize()));
    }
    fields.push(("args".into(), Value::Object(args)));
    Value::Object(fields)
}

/// Serialize a run's traces to Chrome trace-event JSON.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for trace in traces {
        events.push(meta_event(
            "process_name",
            trace.rank,
            0,
            &format!("rank {}", trace.rank),
        ));
        for stream in ALL_STREAMS {
            // Emit a thread-name row only for streams that have events,
            // so exec traces don't show the simulator's channel tracks.
            if trace.stream_events(stream).next().is_some() {
                events.push(meta_event(
                    "thread_name",
                    trace.rank,
                    stream.index(),
                    stream.name(),
                ));
            }
        }
        for ev in &trace.events {
            events.push(span_event(trace.rank, ev));
        }
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollOp;
    use crate::sink::TraceSink;

    #[test]
    fn export_parses_back_and_has_tracks() {
        let sink = TraceSink::new(2);
        sink.record_scoped(
            Stream::Compute,
            0.0,
            1e-3,
            EventDetail::Gemm {
                mode: "NN",
                flops: 64.0,
                packed_bytes: 1024,
                panels: 1,
            },
        );
        sink.mark(
            Stream::Compute,
            1e-3,
            EventDetail::Issue {
                op: CollOp::AllGather,
                group_size: 2,
                bytes: 256,
                seq: 0,
            },
        );
        sink.record_scoped(
            Stream::Comm,
            1e-3,
            2e-3,
            EventDetail::Collective {
                op: CollOp::AllGather,
                group_size: 2,
                bytes: 256,
                seq: 0,
                blocking: false,
                op_seconds: 1e-3,
            },
        );
        let json = chrome_trace_json(&[sink.finish()]);
        let doc: serde::Value = serde_json::from_str(&json).expect("chrome trace must parse");
        let events = match doc.field("traceEvents").unwrap() {
            serde::Value::Array(a) => a.clone(),
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // 1 process_name + 2 thread_name + 3 spans.
        assert_eq!(events.len(), 6);
        // The gemm span is a complete event with µs timestamps.
        let gemm = events
            .iter()
            .find(|e| matches!(e.field("name"), Ok(serde::Value::Str(s)) if s == "gemm NN"))
            .expect("gemm event present");
        assert!(matches!(gemm.field("ph"), Ok(serde::Value::Str(s)) if s == "X"));
        match gemm.field("dur").unwrap() {
            serde::Value::F64(d) => assert!((d - 1000.0).abs() < 1e-9),
            other => panic!("dur not f64: {other:?}"),
        }
        // The issue marker became an instant event.
        let issue = events
            .iter()
            .find(
                |e| matches!(e.field("name"), Ok(serde::Value::Str(s)) if s == "issue all_gather"),
            )
            .expect("issue event present");
        assert!(matches!(issue.field("ph"), Ok(serde::Value::Str(s)) if s == "i"));
    }
}
