//! The unified event vocabulary shared by both execution planes.
//!
//! The correctness plane (`axonn-exec` + `axonn-collectives`) and the
//! performance plane (`axonn-sim`) record the *same* event types, which
//! is what makes a 4D run and its simulation directly diffable: the
//! ordered sequence of event kinds on the compute stream is the
//! schedule, independent of which plane produced it.

use serde::{Serialize, Value};

/// Which per-rank track an event belongs to.
///
/// The exec plane uses `Compute` plus the single `Comm` track of its
/// asynchronous collective worker; the simulator models one channel per
/// collective type, mirroring AxoNN's per-communicator NCCL streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Stream {
    Compute,
    Comm,
    CommAg,
    CommAr,
    CommRs,
}

impl Stream {
    /// Stable small integer for Chrome-trace `tid`s.
    pub fn index(self) -> u64 {
        match self {
            Stream::Compute => 0,
            Stream::Comm => 1,
            Stream::CommAg => 1,
            Stream::CommAr => 2,
            Stream::CommRs => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Stream::Compute => "compute",
            Stream::Comm => "comm",
            Stream::CommAg => "comm.all_gather",
            Stream::CommAr => "comm.all_reduce",
            Stream::CommRs => "comm.reduce_scatter",
        }
    }
}

/// Collective operation, as named in the paper's Eqs. 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CollOp {
    AllGather,
    ReduceScatter,
    AllReduce,
    /// The small-message recursive-doubling all-reduce specialization.
    AllReduceRd,
    Broadcast,
    Barrier,
    /// Recursive-doubling all-gather (medium messages on pow2 groups).
    AllGatherRd,
    /// Recursive-halving reduce-scatter (medium messages on pow2 groups).
    ReduceScatterRh,
    /// Recursive halving/doubling all-reduce (Rabenseifner, pow2 groups).
    AllReduceRhd,
    /// Binomial-tree all-reduce (latency-bound small messages, any group).
    AllReduceTree,
    /// Binomial-tree broadcast (latency-bound small messages, any group).
    BroadcastTree,
}

impl CollOp {
    /// Every collective op, in [`CollOp::index`] order. Lets callers
    /// pre-register one metric handle per op without allocation.
    pub const ALL: [CollOp; 11] = [
        CollOp::AllGather,
        CollOp::ReduceScatter,
        CollOp::AllReduce,
        CollOp::AllReduceRd,
        CollOp::Broadcast,
        CollOp::Barrier,
        CollOp::AllGatherRd,
        CollOp::ReduceScatterRh,
        CollOp::AllReduceRhd,
        CollOp::AllReduceTree,
        CollOp::BroadcastTree,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CollOp::AllGather => "all_gather",
            CollOp::ReduceScatter => "reduce_scatter",
            CollOp::AllReduce => "all_reduce",
            CollOp::AllReduceRd => "all_reduce_rd",
            CollOp::Broadcast => "broadcast",
            CollOp::Barrier => "barrier",
            CollOp::AllGatherRd => "all_gather_rd",
            CollOp::ReduceScatterRh => "reduce_scatter_rh",
            CollOp::AllReduceRhd => "all_reduce_rhd",
            CollOp::AllReduceTree => "all_reduce_tree",
            CollOp::BroadcastTree => "broadcast_tree",
        }
    }

    /// Dense index into [`CollOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            CollOp::AllGather => 0,
            CollOp::ReduceScatter => 1,
            CollOp::AllReduce => 2,
            CollOp::AllReduceRd => 3,
            CollOp::Broadcast => 4,
            CollOp::Barrier => 5,
            CollOp::AllGatherRd => 6,
            CollOp::ReduceScatterRh => 7,
            CollOp::AllReduceRhd => 8,
            CollOp::AllReduceTree => 9,
            CollOp::BroadcastTree => 10,
        }
    }
}

/// Transport-level transfer statistics attached to collective spans by
/// the pooled exec-plane transport: how many pipeline chunks the payload
/// was segmented into, and how the buffer pool behaved (bytes freshly
/// allocated vs. slabs recycled). Zero for planes/events without a real
/// transport (the simulator, GEMMs, markers).
///
/// Pool behaviour depends on how the OS interleaved the ranks' threads,
/// so these counters live on [`TraceEvent`] *outside* the canonical
/// serialization — like wall time, they are diagnostic, not part of the
/// deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XferStats {
    /// Pipeline segments the payload was split into (0 when the event is
    /// not a transport-backed collective).
    pub chunks: u32,
    /// Bytes of fresh heap allocation the transport performed.
    pub alloc_bytes: u64,
    /// Hop buffers served from the pool without allocating.
    pub pool_hits: u64,
    /// Hop buffers that missed the pool and had to allocate.
    pub pool_misses: u64,
}

impl Serialize for XferStats {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("chunks".into(), self.chunks.serialize()),
            ("alloc_bytes".into(), self.alloc_bytes.serialize()),
            ("pool_hits".into(), self.pool_hits.serialize()),
            ("pool_misses".into(), self.pool_misses.serialize()),
        ])
    }
}

/// What happened during an event's span.
#[derive(Debug, Clone, PartialEq)]
pub enum EventDetail {
    /// A local GEMM on the compute stream. `mode` is the operand
    /// transposition actually executed (`"NN"`, `"NT"`, `"TN"`,
    /// `"TN(naive)"` when the tuner kept the unpacked kernel, or
    /// `"TN->NN"` when it rerouted through a transpose). `packed_bytes`
    /// and `panels` count the blocked engine's pack traffic (zero for
    /// the naive tier).
    Gemm {
        mode: &'static str,
        flops: f64,
        packed_bytes: u64,
        panels: u32,
    },
    /// A collective occupying the stream it is recorded on: the compute
    /// stream for blocking calls (the span is the full stall, entry to
    /// completion), a comm stream for asynchronous execution.
    /// `op_seconds` is the modelled cost of the operation itself.
    Collective {
        op: CollOp,
        group_size: usize,
        bytes: u64,
        seq: u64,
        blocking: bool,
        op_seconds: f64,
    },
    /// Instantaneous marker on the compute stream: an asynchronous
    /// collective was handed to the communication worker.
    Issue {
        op: CollOp,
        group_size: usize,
        bytes: u64,
        seq: u64,
    },
    /// The compute stream blocked waiting on an asynchronous handle.
    /// A zero-length wait means the collective was fully hidden.
    OverlapWait { op: CollOp, seq: u64 },
    /// One layer's forward pass (outer span on the compute stream).
    LayerFwd { layer: usize },
    /// One layer's backward pass.
    LayerBwd { layer: usize },
    /// The kernel tuner locked in a strategy for a layer's dW GEMM.
    /// `direct_seconds` timed the packed TN kernel, `naive_seconds` the
    /// unpacked column-strided TN walk, `reroute_seconds` the explicit
    /// transpose + NN path.
    TunerDecision {
        layer: usize,
        choice: &'static str,
        direct_seconds: f64,
        naive_seconds: f64,
        reroute_seconds: f64,
    },
    /// Non-GEMM compute charged by the simulator (attention, softmax…).
    Aux { label: &'static str },
    /// A supervisor lifecycle event: failure detection, restart,
    /// resharding, checkpoint, resume, completion. Recorded on the
    /// supervisor's own timeline by `run_spmd_supervised`.
    Recovery {
        /// Which lifecycle transition ("failure_detected", "restart",
        /// "reshard", "checkpoint", "resume", "give_up", "completed").
        event: &'static str,
        /// Relaunch attempt index (0 = first launch).
        attempt: u64,
        /// Training step the event refers to (e.g. the checkpointed
        /// step being resumed from), when known.
        step: u64,
        /// The rank the event is about (the failed rank for
        /// "failure_detected"), or 0 when not rank-specific.
        rank: usize,
    },
}

impl EventDetail {
    /// The event-kind label used for cross-plane schedule comparison:
    /// coarse enough to be plane-independent (no sizes, no timings),
    /// fine enough to pin the schedule (op names included).
    pub fn kind(&self) -> String {
        match self {
            EventDetail::Gemm { .. } => "gemm".to_string(),
            EventDetail::Collective { op, blocking, .. } => {
                if *blocking {
                    format!("collective:{}", op.name())
                } else {
                    format!("async:{}", op.name())
                }
            }
            EventDetail::Issue { op, .. } => format!("issue:{}", op.name()),
            EventDetail::OverlapWait { op, .. } => format!("wait:{}", op.name()),
            EventDetail::LayerFwd { .. } => "layer_fwd".to_string(),
            EventDetail::LayerBwd { .. } => "layer_bwd".to_string(),
            EventDetail::TunerDecision { .. } => "tuner_decision".to_string(),
            EventDetail::Aux { .. } => "aux".to_string(),
            EventDetail::Recovery { event, .. } => format!("recovery:{event}"),
        }
    }

    /// Short display name for Chrome-trace rows.
    pub fn display_name(&self) -> String {
        match self {
            EventDetail::Gemm { mode, .. } => format!("gemm {mode}"),
            EventDetail::Collective { op, group_size, .. } => {
                format!("{} g={group_size}", op.name())
            }
            EventDetail::Issue { op, .. } => format!("issue {}", op.name()),
            EventDetail::OverlapWait { op, .. } => format!("wait {}", op.name()),
            EventDetail::LayerFwd { layer } => format!("fwd L{layer}"),
            EventDetail::LayerBwd { layer } => format!("bwd L{layer}"),
            EventDetail::TunerDecision { layer, choice, .. } => {
                format!("tune L{layer} -> {choice}")
            }
            EventDetail::Aux { label } => format!("aux {label}"),
            EventDetail::Recovery {
                event,
                attempt,
                rank,
                ..
            } => format!("recovery {event} a{attempt} r{rank}"),
        }
    }
}

impl Serialize for EventDetail {
    fn serialize(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![("kind".into(), Value::Str(self.kind()))];
        match self {
            EventDetail::Gemm {
                mode,
                flops,
                packed_bytes,
                panels,
            } => {
                fields.push(("mode".into(), mode.serialize()));
                fields.push(("flops".into(), flops.serialize()));
                fields.push(("packed_bytes".into(), packed_bytes.serialize()));
                fields.push(("panels".into(), panels.serialize()));
            }
            EventDetail::Collective {
                op,
                group_size,
                bytes,
                seq,
                blocking,
                op_seconds,
            } => {
                fields.push(("op".into(), Value::Str(op.name().into())));
                fields.push(("group_size".into(), group_size.serialize()));
                fields.push(("bytes".into(), bytes.serialize()));
                fields.push(("seq".into(), seq.serialize()));
                fields.push(("blocking".into(), blocking.serialize()));
                fields.push(("op_seconds".into(), op_seconds.serialize()));
            }
            EventDetail::Issue {
                op,
                group_size,
                bytes,
                seq,
            } => {
                fields.push(("op".into(), Value::Str(op.name().into())));
                fields.push(("group_size".into(), group_size.serialize()));
                fields.push(("bytes".into(), bytes.serialize()));
                fields.push(("seq".into(), seq.serialize()));
            }
            EventDetail::OverlapWait { op, seq } => {
                fields.push(("op".into(), Value::Str(op.name().into())));
                fields.push(("seq".into(), seq.serialize()));
            }
            EventDetail::LayerFwd { layer } | EventDetail::LayerBwd { layer } => {
                fields.push(("layer".into(), layer.serialize()));
            }
            EventDetail::TunerDecision {
                layer,
                choice,
                direct_seconds,
                naive_seconds,
                reroute_seconds,
            } => {
                fields.push(("layer".into(), layer.serialize()));
                fields.push(("choice".into(), choice.serialize()));
                fields.push(("direct_seconds".into(), direct_seconds.serialize()));
                fields.push(("naive_seconds".into(), naive_seconds.serialize()));
                fields.push(("reroute_seconds".into(), reroute_seconds.serialize()));
            }
            EventDetail::Aux { label } => {
                fields.push(("label".into(), label.serialize()));
            }
            EventDetail::Recovery {
                event,
                attempt,
                step,
                rank,
            } => {
                fields.push(("event".into(), event.serialize()));
                fields.push(("attempt".into(), attempt.serialize()));
                fields.push(("step".into(), step.serialize()));
                fields.push(("rank".into(), rank.serialize()));
            }
        }
        Value::Object(fields)
    }
}

/// One recorded span (or instantaneous marker, when `t_end == t_start`).
///
/// Events carry both clocks: `t_start`/`t_end` are *virtual* seconds from
/// the plane's cost model (deterministic, the basis of every comparison
/// and report), `wall_start_ns`/`wall_end_ns` are host nanoseconds from
/// recorder creation (diagnostic only, excluded from canonical output).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub stream: Stream,
    pub t_start: f64,
    pub t_end: f64,
    pub wall_start_ns: u64,
    pub wall_end_ns: u64,
    /// The layer whose forward/backward this event belongs to, when the
    /// recording site had that context (asynchronous collectives keep
    /// the layer that *issued* them).
    pub layer: Option<usize>,
    pub detail: EventDetail,
    /// Transport transfer statistics (pooled exec transport only; zero
    /// elsewhere). Excluded from the canonical form — see [`XferStats`].
    pub xfer: XferStats,
}

impl TraceEvent {
    /// Serialize without the wall-clock fields — the canonical form used
    /// for determinism checks and cross-plane diffing.
    pub fn canonical_value(&self) -> Value {
        Value::Object(vec![
            ("stream".into(), Value::Str(self.stream.name().into())),
            ("t_start".into(), self.t_start.serialize()),
            ("t_end".into(), self.t_end.serialize()),
            (
                "layer".into(),
                match self.layer {
                    Some(l) => l.serialize(),
                    None => Value::Null,
                },
            ),
            ("detail".into(), self.detail.serialize()),
        ])
    }
}

impl Serialize for TraceEvent {
    fn serialize(&self) -> Value {
        let Value::Object(mut fields) = self.canonical_value() else {
            unreachable!("canonical_value always returns an object");
        };
        fields.push(("wall_start_ns".into(), self.wall_start_ns.serialize()));
        fields.push(("wall_end_ns".into(), self.wall_end_ns.serialize()));
        fields.push(("xfer".into(), self.xfer.serialize()));
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_distinguish_blocking_from_async() {
        let mk = |blocking| EventDetail::Collective {
            op: CollOp::AllReduce,
            group_size: 4,
            bytes: 1024,
            seq: 0,
            blocking,
            op_seconds: 1e-3,
        };
        assert_eq!(mk(true).kind(), "collective:all_reduce");
        assert_eq!(mk(false).kind(), "async:all_reduce");
        assert_eq!(
            EventDetail::OverlapWait {
                op: CollOp::AllGather,
                seq: 3
            }
            .kind(),
            "wait:all_gather"
        );
    }

    #[test]
    fn canonical_form_excludes_wall_time() {
        let ev = TraceEvent {
            stream: Stream::Compute,
            t_start: 1.0,
            t_end: 2.0,
            wall_start_ns: 123,
            wall_end_ns: 456,
            layer: Some(1),
            detail: EventDetail::Gemm {
                mode: "NN",
                flops: 100.0,
                packed_bytes: 2048,
                panels: 2,
            },
            xfer: XferStats {
                chunks: 4,
                alloc_bytes: 4096,
                pool_hits: 3,
                pool_misses: 1,
            },
        };
        let canon = serde_json::to_string(&ev.canonical_value()).unwrap();
        assert!(!canon.contains("wall"), "canonical form leaked wall time");
        assert!(
            !canon.contains("pool_hits"),
            "canonical form leaked transfer stats"
        );
        let full = serde_json::to_string(&ev).unwrap();
        assert!(full.contains("wall_start_ns"));
        assert!(full.contains("pool_hits"));
        assert!(full.contains("alloc_bytes"));
    }
}
