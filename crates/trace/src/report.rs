//! Derived reports: overlap-efficiency accounting (how much collective
//! time hid under compute, the quantity behind the paper's Fig. 5) and
//! the compact run summary.

use serde::{Serialize, Value};

use crate::event::{EventDetail, Stream};
use crate::metrics::MetricsRegistry;
use crate::sink::RankTrace;

/// Overlap accounting for one layer (or for unattributed collectives
/// when `layer` is `None`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LayerOverlap {
    pub layer: Option<usize>,
    /// Modelled collective time issued (blocking + asynchronous).
    pub issued_seconds: f64,
    /// Collective time the compute stream actually stalled for: the full
    /// span of blocking calls plus the wait gap of asynchronous ones.
    pub exposed_seconds: f64,
    /// `max(0, issued - exposed)` per operation, summed.
    pub hidden_seconds: f64,
    /// `hidden / issued`, 0 when nothing was issued.
    pub efficiency: f64,
}

/// Whole-run overlap-efficiency report, aggregated over all ranks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OverlapReport {
    pub per_layer: Vec<LayerOverlap>,
    pub total_issued_seconds: f64,
    pub total_exposed_seconds: f64,
    pub total_hidden_seconds: f64,
    /// Fraction of issued collective time hidden under compute.
    pub overlap_efficiency: f64,
    /// Compute-stream busy time (GEMMs + aux), summed over ranks.
    pub compute_seconds: f64,
}

struct Bucket {
    issued: f64,
    exposed: f64,
    hidden: f64,
}

impl OverlapReport {
    pub fn from_traces(traces: &[RankTrace]) -> OverlapReport {
        // Keyed by layer; index 0 = unattributed, i+1 = layer i.
        let mut buckets: Vec<Bucket> = Vec::new();
        let bucket = |layer: Option<usize>, buckets: &mut Vec<Bucket>| -> usize {
            let idx = layer.map(|l| l + 1).unwrap_or(0);
            while buckets.len() <= idx {
                buckets.push(Bucket {
                    issued: 0.0,
                    exposed: 0.0,
                    hidden: 0.0,
                });
            }
            idx
        };
        let mut compute_seconds = 0.0;

        for trace in traces {
            // Asynchronous collectives, to be matched against their waits.
            // Two passes because a trace stores streams back to back: the
            // compute stream (holding the waits) comes before the comm
            // streams (holding the asynchronous execution spans).
            struct Pending {
                op: crate::event::CollOp,
                seq: u64,
                op_seconds: f64,
                layer: Option<usize>,
                waited: bool,
            }
            let mut pending: Vec<Pending> = Vec::new();

            for ev in &trace.events {
                match &ev.detail {
                    EventDetail::Collective {
                        op,
                        seq,
                        blocking,
                        op_seconds,
                        ..
                    } => {
                        if *blocking {
                            let idx = bucket(ev.layer, &mut buckets);
                            let stall = ev.t_end - ev.t_start;
                            buckets[idx].issued += op_seconds;
                            buckets[idx].exposed += stall;
                            // A blocking collective hides nothing.
                        } else {
                            pending.push(Pending {
                                op: *op,
                                seq: *seq,
                                op_seconds: *op_seconds,
                                layer: ev.layer,
                                waited: false,
                            });
                        }
                    }
                    EventDetail::Gemm { .. } | EventDetail::Aux { .. }
                        if ev.stream == Stream::Compute =>
                    {
                        compute_seconds += ev.t_end - ev.t_start;
                    }
                    _ => {}
                }
            }

            for ev in &trace.events {
                if let EventDetail::OverlapWait { op, seq } = &ev.detail {
                    let gap = ev.t_end - ev.t_start;
                    let hit = pending
                        .iter_mut()
                        .find(|p| !p.waited && p.op == *op && p.seq == *seq);
                    if let Some(p) = hit {
                        p.waited = true;
                        let idx = bucket(p.layer.or(ev.layer), &mut buckets);
                        buckets[idx].issued += p.op_seconds;
                        buckets[idx].exposed += gap;
                        buckets[idx].hidden += (p.op_seconds - gap).max(0.0);
                    } else {
                        // Wait without a recorded issue (shouldn't
                        // happen): count the stall as exposed.
                        let idx = bucket(ev.layer, &mut buckets);
                        buckets[idx].exposed += gap;
                    }
                }
            }

            // Issued-but-never-waited asynchronous collectives: their cost
            // was fully off the critical path.
            for p in pending.iter().filter(|p| !p.waited) {
                let idx = bucket(p.layer, &mut buckets);
                buckets[idx].issued += p.op_seconds;
                buckets[idx].hidden += p.op_seconds;
            }
        }

        let mut per_layer: Vec<LayerOverlap> = buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.issued > 0.0 || b.exposed > 0.0)
            .map(|(idx, b)| LayerOverlap {
                layer: idx.checked_sub(1),
                issued_seconds: b.issued,
                exposed_seconds: b.exposed,
                hidden_seconds: b.hidden,
                efficiency: if b.issued > 0.0 {
                    b.hidden / b.issued
                } else {
                    0.0
                },
            })
            .collect();
        // Attributed layers first (ascending), unattributed last.
        per_layer.sort_by_key(|l| l.layer.map(|x| x as i64).unwrap_or(i64::MAX));

        let total_issued: f64 = per_layer.iter().map(|l| l.issued_seconds).sum();
        let total_exposed: f64 = per_layer.iter().map(|l| l.exposed_seconds).sum();
        let total_hidden: f64 = per_layer.iter().map(|l| l.hidden_seconds).sum();
        OverlapReport {
            per_layer,
            total_issued_seconds: total_issued,
            total_exposed_seconds: total_exposed,
            total_hidden_seconds: total_hidden,
            overlap_efficiency: if total_issued > 0.0 {
                total_hidden / total_issued
            } else {
                0.0
            },
            compute_seconds,
        }
    }

    /// Overlap accounting restricted to the *data-parallel gradient
    /// pipeline*: asynchronous reduce-scatter / all-gather spans issued
    /// outside any layer scope (bucketed gradient collectives are the
    /// only unattributed async ops — per-layer OAR/ORS/OAG spans carry
    /// the issuing layer) together with their matching waits. The serial
    /// per-tensor tail issues only blocking collectives, so its
    /// efficiency here is identically zero; any positive value certifies
    /// real overlap between bucket communication and backward compute.
    pub fn data_parallel_overlap(traces: &[RankTrace]) -> OverlapReport {
        let filtered: Vec<RankTrace> = traces
            .iter()
            .map(|trace| {
                // (op, seq) pairs of the bucket collectives on this rank;
                // waits are matched against the same per-rank key space.
                let mut keys: Vec<(crate::event::CollOp, u64)> = Vec::new();
                let mut events: Vec<crate::event::TraceEvent> = Vec::new();
                for ev in &trace.events {
                    if let EventDetail::Collective {
                        op,
                        seq,
                        blocking: false,
                        ..
                    } = &ev.detail
                    {
                        let bucket_op = matches!(
                            op,
                            crate::event::CollOp::ReduceScatter
                                | crate::event::CollOp::ReduceScatterRh
                                | crate::event::CollOp::AllGather
                                | crate::event::CollOp::AllGatherRd
                        );
                        if ev.layer.is_none() && bucket_op {
                            keys.push((*op, *seq));
                            events.push(ev.clone());
                        }
                    }
                }
                for ev in &trace.events {
                    if let EventDetail::OverlapWait { op, seq } = &ev.detail {
                        if keys.contains(&(*op, *seq)) {
                            events.push(ev.clone());
                        }
                    }
                }
                RankTrace {
                    rank: trace.rank,
                    events,
                }
            })
            .collect();
        OverlapReport::from_traces(&filtered)
    }
}

/// Compact machine-readable summary of a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    pub ranks: usize,
    pub total_events: usize,
    /// Latest virtual timestamp across all ranks and streams.
    pub virtual_makespan_seconds: f64,
    pub overlap: OverlapReport,
    pub metrics: MetricsRegistry,
}

impl TraceSummary {
    pub fn from_traces(traces: &[RankTrace]) -> TraceSummary {
        let total_events = traces.iter().map(|t| t.events.len()).sum();
        let makespan = traces
            .iter()
            .flat_map(|t| t.events.iter())
            .map(|e| e.t_end)
            .fold(0.0, f64::max);
        TraceSummary {
            ranks: traces.len(),
            total_events,
            virtual_makespan_seconds: makespan,
            overlap: OverlapReport::from_traces(traces),
            metrics: MetricsRegistry::from_traces(traces),
        }
    }

    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.serialize())
            .expect("summary serialization is infallible")
    }
}

impl Serialize for TraceSummary {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("ranks".into(), self.ranks.serialize()),
            ("total_events".into(), self.total_events.serialize()),
            (
                "virtual_makespan_seconds".into(),
                self.virtual_makespan_seconds.serialize(),
            ),
            ("overlap".into(), self.overlap.serialize()),
            ("metrics".into(), self.metrics.serialize()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollOp;
    use crate::sink::TraceSink;

    fn coll(blocking: bool, seq: u64, op_seconds: f64) -> EventDetail {
        EventDetail::Collective {
            op: CollOp::AllReduce,
            group_size: 4,
            bytes: 1024,
            seq,
            blocking,
            op_seconds,
        }
    }

    #[test]
    fn blocking_collectives_hide_nothing() {
        let sink = TraceSink::new(0);
        sink.set_layer(Some(0));
        sink.record_scoped(Stream::Compute, 0.0, 2.0, coll(true, 0, 1.5));
        let report = OverlapReport::from_traces(&[sink.finish()]);
        assert_eq!(report.total_hidden_seconds, 0.0);
        assert!((report.total_issued_seconds - 1.5).abs() < 1e-12);
        assert!((report.total_exposed_seconds - 2.0).abs() < 1e-12);
        assert_eq!(report.overlap_efficiency, 0.0);
        assert_eq!(report.per_layer.len(), 1);
        assert_eq!(report.per_layer[0].layer, Some(0));
    }

    #[test]
    fn async_wait_gap_splits_hidden_and_exposed() {
        let sink = TraceSink::new(0);
        sink.set_layer(Some(1));
        // Issued at t=0, costs 1.0s, waited at t=0.8 for 0.2s: 0.8 hidden.
        sink.record_scoped(Stream::Comm, 0.0, 1.0, coll(false, 7, 1.0));
        sink.record_scoped(
            Stream::Compute,
            0.8,
            1.0,
            EventDetail::OverlapWait {
                op: CollOp::AllReduce,
                seq: 7,
            },
        );
        let report = OverlapReport::from_traces(&[sink.finish()]);
        assert!((report.total_hidden_seconds - 0.8).abs() < 1e-12);
        assert!((report.total_exposed_seconds - 0.2).abs() < 1e-12);
        assert!((report.overlap_efficiency - 0.8).abs() < 1e-12);
        assert_eq!(report.per_layer[0].layer, Some(1));
    }

    #[test]
    fn unwaited_async_counts_fully_hidden() {
        let sink = TraceSink::new(0);
        sink.record_scoped(Stream::Comm, 0.0, 0.5, coll(false, 1, 0.5));
        let report = OverlapReport::from_traces(&[sink.finish()]);
        assert!((report.total_hidden_seconds - 0.5).abs() < 1e-12);
        assert_eq!(report.overlap_efficiency, 1.0);
    }

    #[test]
    fn data_parallel_overlap_selects_unattributed_bucket_ops() {
        let rs = |seq, op_seconds| EventDetail::Collective {
            op: CollOp::ReduceScatter,
            group_size: 2,
            bytes: 512,
            seq,
            blocking: false,
            op_seconds,
        };
        let sink = TraceSink::new(0);
        // Layer-scoped ORS span: excluded from the data-parallel view.
        sink.set_layer(Some(3));
        sink.record_scoped(Stream::Comm, 0.0, 1.0, rs(0, 1.0));
        sink.set_layer(None);
        // Unattributed bucket reduce-scatter: 0.9 of 1.0s hidden.
        sink.record_scoped(Stream::Comm, 0.0, 1.0, rs(1, 1.0));
        sink.record_scoped(
            Stream::Compute,
            0.9,
            1.0,
            EventDetail::OverlapWait {
                op: CollOp::ReduceScatter,
                seq: 1,
            },
        );
        // Blocking all-reduce (the serial tail): also excluded.
        sink.record_scoped(
            Stream::Compute,
            1.0,
            2.0,
            EventDetail::Collective {
                op: CollOp::AllReduce,
                group_size: 2,
                bytes: 512,
                seq: 2,
                blocking: true,
                op_seconds: 1.0,
            },
        );
        let traces = [sink.finish()];
        let dp = OverlapReport::data_parallel_overlap(&traces);
        assert!((dp.total_issued_seconds - 1.0).abs() < 1e-12);
        assert!((dp.total_hidden_seconds - 0.9).abs() < 1e-12);
        assert!((dp.overlap_efficiency - 0.9).abs() < 1e-12);
        // The full report still sees everything.
        let full = OverlapReport::from_traces(&traces);
        assert!(full.total_issued_seconds > 2.9);
    }

    #[test]
    fn summary_rolls_up_makespan_and_compute() {
        let sink = TraceSink::new(0);
        sink.record_scoped(
            Stream::Compute,
            0.0,
            2.5,
            EventDetail::Gemm {
                mode: "NN",
                flops: 10.0,
                packed_bytes: 256,
                panels: 1,
            },
        );
        let summary = TraceSummary::from_traces(&[sink.finish()]);
        assert_eq!(summary.ranks, 1);
        assert_eq!(summary.total_events, 1);
        assert!((summary.virtual_makespan_seconds - 2.5).abs() < 1e-12);
        assert!((summary.overlap.compute_seconds - 2.5).abs() < 1e-12);
        let json = summary.to_json_pretty();
        assert!(json.contains("overlap_efficiency"));
    }
}
