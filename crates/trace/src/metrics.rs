//! Metrics registry: monotonic counters and fixed-bucket histograms,
//! plus the standard aggregation from finished traces.

use std::collections::BTreeMap;

use serde::{Serialize, Value};

use crate::event::EventDetail;
use crate::sink::RankTrace;

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`;
/// one implicit overflow bucket counts the rest. Non-finite observations
/// (NaN, ±inf) are counted in `quarantined` but never touch the buckets
/// or the sum, so one poisoned measurement cannot corrupt an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
    quarantined: u64,
}

impl Histogram {
    /// `bounds` must be strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            total: 0,
            quarantined: 0,
        }
    }

    /// Rebuild a histogram from raw parts (used by the live registry to
    /// snapshot its atomic shards into the plain form).
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        total: u64,
        quarantined: u64,
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert_eq!(counts.len(), bounds.len() + 1, "counts/bounds mismatch");
        Histogram {
            bounds,
            counts,
            sum,
            total,
            quarantined,
        }
    }

    pub fn observe(&mut self, value: f64) {
        self.total += 1;
        if !value.is_finite() {
            self.quarantined += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all *finite* observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Non-finite observations counted but excluded from buckets/sum.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Merge another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.total += other.total;
        self.quarantined += other.quarantined;
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the `q`-th finite observation. Returns `None`
    /// when no finite observation has been recorded; observations that
    /// landed in the overflow bucket yield `f64::INFINITY` (the bucket
    /// has no upper bound).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let finite = self.total - self.quarantined;
        if finite == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * finite as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }
}

impl Serialize for Histogram {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("bounds".into(), self.bounds.serialize()),
            ("counts".into(), self.counts.serialize()),
            ("sum".into(), self.sum.serialize()),
            ("total".into(), self.total.serialize()),
            ("quarantined".into(), self.quarantined.serialize()),
        ])
    }
}

/// Named counters + histograms. Keys are sorted (BTreeMap), so the JSON
/// form is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Byte-size bucket bounds (64 B .. 256 MiB, powers of 16).
pub const BYTES_BOUNDS: [f64; 5] = [64.0, 1024.0, 16384.0, 262_144.0, 4_194_304.0];
/// Seconds bucket bounds (1 µs .. 10 s, decades).
pub const SECONDS_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The standard aggregation: bytes moved per collective op, GEMM
    /// flops per mode, and collective op-time histograms, across all
    /// ranks of a run.
    pub fn from_traces(traces: &[RankTrace]) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for trace in traces {
            for ev in &trace.events {
                match &ev.detail {
                    EventDetail::Collective {
                        op,
                        bytes,
                        op_seconds,
                        ..
                    } => {
                        reg.counter_add(&format!("collective.{}.calls", op.name()), 1);
                        reg.counter_add(&format!("collective.{}.bytes", op.name()), *bytes);
                        reg.observe(
                            &format!("collective.{}.bytes_hist", op.name()),
                            &BYTES_BOUNDS,
                            *bytes as f64,
                        );
                        reg.observe(
                            &format!("collective.{}.seconds_hist", op.name()),
                            &SECONDS_BOUNDS,
                            *op_seconds,
                        );
                        // Transport-layer counters from the pooled
                        // transport; zero-valued adds still create the
                        // keys so reports can rely on their presence.
                        reg.counter_add(
                            &format!("collective.{}.chunks", op.name()),
                            ev.xfer.chunks as u64,
                        );
                        reg.counter_add(
                            &format!("collective.{}.alloc_bytes", op.name()),
                            ev.xfer.alloc_bytes,
                        );
                        reg.counter_add(
                            &format!("collective.{}.pool_hits", op.name()),
                            ev.xfer.pool_hits,
                        );
                        reg.counter_add(
                            &format!("collective.{}.pool_misses", op.name()),
                            ev.xfer.pool_misses,
                        );
                    }
                    EventDetail::Gemm {
                        mode,
                        flops,
                        packed_bytes,
                        panels,
                    } => {
                        reg.counter_add(&format!("gemm.{mode}.calls"), 1);
                        reg.counter_add(&format!("gemm.{mode}.flops"), *flops as u64);
                        reg.counter_add(&format!("gemm.{mode}.packed_bytes"), *packed_bytes);
                        reg.counter_add(&format!("gemm.{mode}.panels"), *panels as u64);
                    }
                    EventDetail::OverlapWait { .. } => {
                        reg.counter_add("overlap.waits", 1);
                        reg.observe(
                            "overlap.wait_seconds_hist",
                            &SECONDS_BOUNDS,
                            ev.t_end - ev.t_start,
                        );
                    }
                    EventDetail::TunerDecision { .. } => {
                        reg.counter_add("tuner.decisions", 1);
                    }
                    _ => {}
                }
            }
        }
        reg
    }
}

impl Serialize for MetricsRegistry {
    fn serialize(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        );
        Value::Object(vec![
            ("counters".into(), counters),
            ("histograms".into(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollOp, Stream};
    use crate::sink::TraceSink;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 105.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn histogram_quarantines_non_finite() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(5.0);
        // All four observations counted, but only the finite one reached
        // a bucket or the sum.
        assert_eq!(h.count(), 4);
        assert_eq!(h.quarantined(), 3);
        assert_eq!(h.bucket_counts(), &[0, 1, 0]);
        assert!((h.sum() - 5.0).abs() < 1e-12);
        assert!(h.sum().is_finite());
        assert_eq!(h.quantile(0.5), Some(10.0));
    }

    #[test]
    fn quantile_on_empty_histogram_is_none() {
        let h = Histogram::new(vec![1.0, 10.0]);
        assert_eq!(h.quantile(0.5), None);
        // A histogram holding only quarantined values has no finite
        // observations either.
        let mut q = Histogram::new(vec![1.0, 10.0]);
        q.observe(f64::NAN);
        assert_eq!(q.quantile(0.5), None);
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for _ in 0..8 {
            h.observe(0.5);
        }
        h.observe(5.0);
        h.observe(500.0); // overflow bucket
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.9), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new(vec![1.0, 10.0]);
        let mut b = Histogram::new(vec![1.0, 10.0]);
        a.observe(0.5);
        b.observe(5.0);
        b.observe(f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.quarantined(), 1);
        assert_eq!(a.bucket_counts(), &[1, 1, 0]);
    }

    #[test]
    fn aggregates_bytes_and_flops_from_traces() {
        let sink = TraceSink::new(0);
        sink.record_scoped(
            Stream::Compute,
            0.0,
            1.0,
            crate::event::EventDetail::Collective {
                op: CollOp::AllReduce,
                group_size: 4,
                bytes: 4096,
                seq: 0,
                blocking: true,
                op_seconds: 1.0,
            },
        );
        sink.record_scoped(
            Stream::Compute,
            1.0,
            2.0,
            crate::event::EventDetail::Gemm {
                mode: "NN",
                flops: 1000.0,
                packed_bytes: 2048,
                panels: 3,
            },
        );
        let reg = MetricsRegistry::from_traces(&[sink.finish()]);
        assert_eq!(reg.counter("collective.all_reduce.bytes"), 4096);
        assert_eq!(reg.counter("collective.all_reduce.calls"), 1);
        assert_eq!(reg.counter("gemm.NN.flops"), 1000);
        assert_eq!(reg.counter("gemm.NN.packed_bytes"), 2048);
        assert_eq!(reg.counter("gemm.NN.panels"), 3);
        assert_eq!(
            reg.histogram("collective.all_reduce.bytes_hist")
                .unwrap()
                .count(),
            1
        );
        // Deterministic serialization (sorted keys).
        let a = serde_json::to_string(&reg).unwrap();
        let b = serde_json::to_string(&reg.clone()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregates_transport_xfer_counters() {
        use crate::event::XferStats;
        let sink = TraceSink::new(0);
        let coll = |seq| crate::event::EventDetail::Collective {
            op: CollOp::AllReduce,
            group_size: 4,
            bytes: 4096,
            seq,
            blocking: true,
            op_seconds: 1.0,
        };
        sink.record_xfer(
            Stream::Compute,
            0.0,
            1.0,
            0,
            0,
            None,
            coll(0),
            XferStats {
                chunks: 2,
                alloc_bytes: 8192,
                pool_hits: 0,
                pool_misses: 2,
            },
        );
        sink.record_xfer(
            Stream::Compute,
            1.0,
            2.0,
            0,
            0,
            None,
            coll(1),
            XferStats {
                chunks: 2,
                alloc_bytes: 0,
                pool_hits: 2,
                pool_misses: 0,
            },
        );
        let reg = MetricsRegistry::from_traces(&[sink.finish()]);
        assert_eq!(reg.counter("collective.all_reduce.chunks"), 4);
        assert_eq!(reg.counter("collective.all_reduce.alloc_bytes"), 8192);
        assert_eq!(reg.counter("collective.all_reduce.pool_hits"), 2);
        assert_eq!(reg.counter("collective.all_reduce.pool_misses"), 2);
    }
}
