//! Crash-surviving flight recorder: a bounded per-rank ring buffer of
//! the most recent runtime events, dumped to disk when something goes
//! wrong (panic, watchdog trip, `ft` failure detection).
//!
//! The post-hoc tracer only yields data from runs that reach
//! `finish()`; the flight recorder exists precisely for runs that
//! don't. Entries are cheap preformatted lines, not full
//! [`TraceEvent`](crate::TraceEvent)s — the recorder must stay usable
//! from inside panicking and poisoned contexts, so it holds no
//! references into the run's data structures.
//!
//! Capacity comes from `AXONN_FLIGHT_CAP` (default
//! [`DEFAULT_FLIGHT_CAP`]); dumps land in `AXONN_FLIGHT_DIR` (default
//! `target/flight`), one JSON file per rank named by a world-unique id
//! so concurrent tests don't clobber each other.

use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Serialize, Value};

/// Default ring capacity (events retained per rank).
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// Ring capacity from `AXONN_FLIGHT_CAP`, clamped to at least 1.
pub fn flight_capacity() -> usize {
    std::env::var("AXONN_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_FLIGHT_CAP)
        .max(1)
}

/// Dump directory from `AXONN_FLIGHT_DIR` (default `target/flight`).
pub fn flight_dir() -> PathBuf {
    std::env::var("AXONN_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/flight"))
}

fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// One recorded moment: a wall timestamp and a preformatted label.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    pub wall_ns: u64,
    pub label: String,
}

impl Serialize for FlightEntry {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("wall_ns".into(), self.wall_ns.serialize()),
            ("label".into(), self.label.serialize()),
        ])
    }
}

/// Bounded ring of recent events for one rank. `record` is a short
/// mutex-guarded push (the mutex is uncontended in practice — only this
/// rank's threads write); `dump` serializes whatever survived.
#[derive(Debug)]
pub struct FlightRecorder {
    rank: usize,
    /// World-unique id baked into dump filenames.
    world_id: u64,
    cap: usize,
    ring: Mutex<VecDeque<FlightEntry>>,
    /// Total events ever recorded (including evicted ones).
    recorded: Mutex<u64>,
}

impl FlightRecorder {
    pub fn new(world_id: u64, rank: usize) -> FlightRecorder {
        FlightRecorder::with_capacity(world_id, rank, flight_capacity())
    }

    pub fn with_capacity(world_id: u64, rank: usize, cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            rank,
            world_id,
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap)),
            recorded: Mutex::new(0),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world_id(&self) -> u64 {
        self.world_id
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append an event, evicting the oldest once at capacity.
    pub fn record(&self, label: impl Into<String>) {
        let entry = FlightEntry {
            wall_ns: wall_ns(),
            label: label.into(),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(entry);
        *self.recorded.lock().unwrap() += 1;
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// The dump path this recorder writes to.
    pub fn dump_path(&self) -> PathBuf {
        flight_dir().join(format!("flight_w{}_rank{}.json", self.world_id, self.rank))
    }

    /// Write the ring to disk as JSON, creating the dump directory if
    /// needed. `reason` names what tripped the dump (panic message,
    /// watchdog diagnostic, fault record). Returns the written path.
    pub fn dump(&self, reason: &str) -> io::Result<PathBuf> {
        let dir = flight_dir();
        std::fs::create_dir_all(&dir)?;
        let path = self.dump_path();
        let body = Value::Object(vec![
            ("rank".into(), self.rank.serialize()),
            ("world_id".into(), self.world_id.serialize()),
            ("reason".into(), reason.serialize()),
            ("dumped_wall_ns".into(), wall_ns().serialize()),
            (
                "recorded_total".into(),
                (*self.recorded.lock().unwrap()).serialize(),
            ),
            ("events".into(), self.entries().serialize()),
        ]);
        let json = serde_json::to_string(&body).expect("flight dump serializes");
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let fr = FlightRecorder::with_capacity(1, 0, 3);
        for i in 0..5 {
            fr.record(format!("ev{i}"));
        }
        let entries = fr.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].label, "ev2");
        assert_eq!(entries[2].label, "ev4");
    }

    #[test]
    fn dump_writes_json() {
        // The default-dir dump itself is exercised by the integration
        // tests (AXONN_FLIGHT_DIR is process-global, so setting it here
        // would race parallel unit tests); check the serialized shape
        // and the filename scheme.
        let fr = FlightRecorder::with_capacity(42, 1, 8);
        fr.record("send dst=0 lane=rs");
        fr.record("recv src=0 lane=ag");
        let body = Value::Object(vec![("events".into(), fr.entries().serialize())]);
        let json = serde_json::to_string(&body).unwrap();
        assert!(json.contains("send dst=0 lane=rs"));
        assert!(json.contains("recv src=0 lane=ag"));
        assert_eq!(
            fr.dump_path().file_name().unwrap().to_str().unwrap(),
            "flight_w42_rank1.json"
        );
    }
}
