//! Property tests for the performance model: enumeration completeness,
//! Equation 1–6 structure, and ranking invariants over random inputs.

use axonn_cluster::{BandwidthDb, Machine};
use axonn_gpt::model_by_billions;
use axonn_perfmodel::{layer_comm_time, network_comm_time, rank_configs, Grid4d};
use proptest::prelude::*;

fn setup() -> (Machine, BandwidthDb) {
    let m = Machine::frontier();
    let db = BandwidthDb::profile(&m);
    (m, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn enumeration_is_complete_and_exact(exp in 0u32..8) {
        let gpus = 1usize << exp;
        let grids = Grid4d::enumerate(gpus);
        // Every grid multiplies to the GPU count.
        prop_assert!(grids.iter().all(|g| g.gpus() == gpus));
        // Count equals compositions of the exponent into 4 parts.
        let e = exp as usize;
        let expect = (e + 1) * (e + 2) * (e + 3) / 6;
        prop_assert_eq!(grids.len(), expect);
    }

    #[test]
    fn comm_time_is_nonnegative_and_finite(
        gi in 0usize..56, m in 1usize..1_000_000, k_exp in 7usize..14, n_exp in 7usize..14
    ) {
        let (machine, db) = setup();
        let grid = Grid4d::enumerate(32)[gi % 56];
        let b = layer_comm_time(&machine, &db, grid, m, 1 << k_exp, 1 << n_exp, false);
        for t in [b.ag_z, b.rs_z, b.ar_y, b.ar_x, b.ar_data, b.total()] {
            prop_assert!(t.is_finite() && t >= 0.0);
        }
    }

    #[test]
    fn doubling_batch_never_reduces_comm_time(gi in 0usize..56, m in 1usize..100_000) {
        let (machine, db) = setup();
        let grid = Grid4d::enumerate(32)[gi % 56];
        let a = layer_comm_time(&machine, &db, grid, m, 4096, 4096, false).total();
        let b = layer_comm_time(&machine, &db, grid, 2 * m, 4096, 4096, false).total();
        prop_assert!(b >= a);
    }

    #[test]
    fn weight_terms_do_not_depend_on_batch(gi in 0usize..56, m in 1usize..100_000) {
        let (machine, db) = setup();
        let grid = Grid4d::enumerate(32)[gi % 56];
        let a = layer_comm_time(&machine, &db, grid, m, 4096, 4096, false);
        let b = layer_comm_time(&machine, &db, grid, 3 * m, 4096, 4096, false);
        prop_assert_eq!(a.ag_z, b.ag_z);
        prop_assert_eq!(a.rs_z, b.rs_z);
        prop_assert_eq!(a.ar_data, b.ar_data);
    }

    #[test]
    fn transposed_flag_equals_swapped_grid(gi in 0usize..56, m in 1usize..50_000) {
        // layer(grid, transposed=true) must equal layer(grid.swap_xy(),
        // transposed=false) with the group *bandwidths* following the
        // physical groups — totals agree.
        let (machine, db) = setup();
        let grid = Grid4d::enumerate(32)[gi % 56];
        let a = layer_comm_time(&machine, &db, grid, m, 8192, 8192, true).total();
        // Swapping the grid changes which physical level each role maps
        // to; with square weights the per-term volumes match.
        let b = layer_comm_time(&machine, &db, grid, m, 8192, 8192, false);
        let a2 = layer_comm_time(&machine, &db, grid, m, 8192, 8192, true);
        // ar terms swap exactly; z and data terms are identical.
        prop_assert_eq!(a2.ag_z, b.ag_z);
        prop_assert_eq!(a2.rs_z, b.rs_z);
        prop_assert_eq!(a2.ar_data, b.ar_data);
        prop_assert!((a - (b.ag_z + b.rs_z + b.ar_y + b.ar_x + b.ar_data)).abs() <= a * 1e-9
            || (a2.ar_x - b.ar_y).abs() + (a2.ar_y - b.ar_x).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_sorted_and_subset_of_enumeration(gpu_exp in 3u32..7) {
        let (machine, db) = setup();
        let gpus = 1usize << gpu_exp;
        let model = model_by_billions(5);
        let ranked = rank_configs(&machine, &db, &model, 1 << 16, gpus, None);
        prop_assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            prop_assert!(w[0].predicted_comm_seconds <= w[1].predicted_comm_seconds);
        }
        prop_assert!(ranked.iter().all(|r| r.grid.gpus() == gpus));
    }

    #[test]
    fn stricter_memory_limits_never_add_configs(gpu_exp in 4u32..7, lim_gb in 1.0f64..2000.0) {
        let (machine, db) = setup();
        let gpus = 1usize << gpu_exp;
        let model = model_by_billions(5);
        let loose = rank_configs(&machine, &db, &model, 1 << 16, gpus, Some(2.0 * lim_gb * 1e9));
        let tight = rank_configs(&machine, &db, &model, 1 << 16, gpus, Some(lim_gb * 1e9));
        prop_assert!(tight.len() <= loose.len());
    }

    #[test]
    fn network_time_sums_layers(m_exp in 12usize..20) {
        let (machine, db) = setup();
        let model = model_by_billions(5);
        let grid = Grid4d::new(2, 2, 2, 4);
        let batch = 1usize << m_exp;
        let total = network_comm_time(&machine, &db, grid, &model, batch);
        let by_hand: f64 = model
            .network_fc_layers()
            .iter()
            .map(|l| {
                layer_comm_time(
                    &machine,
                    &db,
                    grid,
                    batch / grid.gd,
                    l.shape.k,
                    l.shape.n,
                    l.transposed,
                )
                .total()
            })
            .sum();
        prop_assert!((total - by_hand).abs() < 1e-9 * total.max(1e-12));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hierarchical_group_rings_satisfy_assumption_2(
        ex in 0u32..3, ey in 0u32..3, ez in 0u32..3, ed in 0u32..2
    ) {
        // Assumption-2: rings minimize node-boundary crossings. The
        // hierarchical 4D layout produces groups whose natural member
        // order is already crossing-minimal on contiguous node placement.
        use axonn_cluster::{minimal_crossings, ring_node_crossings};
        let grid = Grid4d::new(1 << ex, 1 << ey, 1 << ez, 1 << ed);
        for gpus_per_node in [4usize, 8] {
            for level in 0..4 {
                for group in grid.groups_at_level(level) {
                    prop_assert_eq!(
                        ring_node_crossings(&group, gpus_per_node),
                        minimal_crossings(&group, gpus_per_node),
                        "grid {} level {} group {:?}",
                        grid,
                        level,
                        group
                    );
                }
            }
        }
    }
}
