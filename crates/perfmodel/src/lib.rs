//! The AxoNN communication performance model (Section V-B).
//!
//! Given a machine, a model architecture and a GPU count, the model
//! predicts the communication time of every legal 4D configuration
//! (Equations 1–6) using the hierarchical bandwidths of Equation 7 and
//! the profiled intra-node database, and produces the ordered list of
//! configurations from which AxoNN picks its top candidates. Figure 2 of
//! the paper validates exactly this ranking against observed batch times;
//! our `fig2_perfmodel` bench does the same against the simulator.

pub mod algo;
pub mod compute;
pub mod grid;
pub mod memory;
pub mod model;

pub use algo::{
    ar_tree_ring_crossover_bytes, best_all_reduce, best_reduce_scatter,
    layer_comm_time_with_latency, AlphaBeta, ArCurve, RsCurve,
};
pub use compute::{ComputeBreakdown, ComputeModel};
pub use grid::Grid4d;
pub use memory::{estimate_memory, estimate_memory_replicated_w, fits, MemoryEstimate};
pub use model::{layer_comm_time, network_comm_time, rank_configs, CommBreakdown, RankedConfig};
