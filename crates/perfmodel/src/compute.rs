//! Compute-side companion to the Eq. 1–6 communication terms: per-layer
//! GEMM time under a calibrated throughput curve.
//!
//! The communication model prices what moves between GPUs; this module
//! prices what each GPU grinds through locally — the three GEMMs of one
//! FC layer's training step (forward NN, input-gradient NT, and
//! weight-gradient TN). The curve can come from the paper's published
//! machine presets (`ComputeModel::from_machine`) or from a
//! [`CalibratedGemm`] fitted to *measured* rates of this host's real
//! `axonn-tensor` kernels — which is exactly what the benchmark plane's
//! GEMM drift report does to keep the model falsifiable.

use crate::grid::Grid4d;
use axonn_cluster::{CalibratedGemm, GemmMode, GemmSample, Machine};
use axonn_gpt::GptConfig;
use serde::Serialize;

/// Seconds of the three training-step GEMMs of one FC layer.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ComputeBreakdown {
    /// Forward `I·W` (NN).
    pub fwd: f64,
    /// Input gradient `dO·Wᵀ` (NT).
    pub bwd_input: f64,
    /// Weight gradient `Iᵀ·dO` (TN).
    pub bwd_weight: f64,
}

impl ComputeBreakdown {
    pub fn total(&self) -> f64 {
        self.fwd + self.bwd_input + self.bwd_weight
    }
}

/// GEMM compute-time model over a fitted throughput curve.
#[derive(Debug, Clone, Copy)]
pub struct ComputeModel {
    pub gemm: CalibratedGemm,
}

impl ComputeModel {
    pub fn new(gemm: CalibratedGemm) -> ComputeModel {
        ComputeModel { gemm }
    }

    /// Build the model from a machine preset by sampling its efficiency
    /// curve — both curves share the saturating form
    /// `rate(d) = peak · d / (d + h)`, so the two-point fit reproduces
    /// the preset exactly. Mode factors are taken in the sub-threshold
    /// regime (the pathological large-`k` TN kernel is the tuner's
    /// problem, not the planner's).
    pub fn from_machine(machine: &Machine) -> ComputeModel {
        let sample = |mode: GemmMode, d: usize| GemmSample {
            mode,
            dim: d,
            rate: machine.gemm_rate(d, d, d, mode),
        };
        let samples = [
            sample(GemmMode::NN, 256),
            sample(GemmMode::NN, 8192),
            sample(GemmMode::NT, 8192),
            sample(GemmMode::TN, 8192),
        ];
        ComputeModel {
            gemm: CalibratedGemm::fit(&samples).expect("preset curve always fits"),
        }
    }

    /// The three GEMMs of one layer on a local `m×k×n` weight shard with
    /// `m` local activation rows.
    pub fn layer_compute_time(&self, m: usize, k: usize, n: usize) -> ComputeBreakdown {
        ComputeBreakdown {
            fwd: self.gemm.seconds(m, k, n, GemmMode::NN),
            bwd_input: self.gemm.seconds(m, n, k, GemmMode::NT),
            bwd_weight: self.gemm.seconds(k, m, n, GemmMode::TN),
        }
    }

    /// Whole-network per-batch compute time on `grid`: every FC layer's
    /// local shard, using the same role-swap for "transposed" layers as
    /// the exec and sim planes (X and Y exchange which weight dimension
    /// they shard).
    pub fn network_compute_time(
        &self,
        grid: Grid4d,
        model: &GptConfig,
        batch_tokens: usize,
    ) -> f64 {
        assert_eq!(
            batch_tokens % (grid.gd * grid.gz),
            0,
            "batch tokens must divide across data-parallel and Z groups"
        );
        let m = batch_tokens / (grid.gd * grid.gz);
        model
            .network_fc_layers()
            .iter()
            .map(|l| {
                let (kp, np) = if l.transposed {
                    (grid.gx, grid.gy)
                } else {
                    (grid.gy, grid.gx)
                };
                let k = l.shape.k.div_ceil(kp);
                let n = l.shape.n.div_ceil(np);
                self.layer_compute_time(m, k, n).total()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_gpt::model_by_billions;

    #[test]
    fn from_machine_reproduces_preset_curve() {
        let machine = Machine::frontier();
        let cm = ComputeModel::from_machine(&machine);
        for d in [128usize, 1024, 4096] {
            let preset = machine.gemm_rate(d, d, d, GemmMode::NN);
            let fitted = cm.gemm.rate(d, d, d, GemmMode::NN);
            assert!(
                ((fitted - preset) / preset).abs() < 1e-9,
                "d={d}: {fitted} vs {preset}"
            );
        }
        // Sub-threshold TN factor: Frontier's tn_small.
        let preset_tn = machine.gemm_rate(4096, 4096, 4096, GemmMode::TN);
        let fitted_tn = cm.gemm.rate(4096, 4096, 4096, GemmMode::TN);
        assert!(((fitted_tn - preset_tn) / preset_tn).abs() < 1e-9);
    }

    #[test]
    fn layer_breakdown_sums_and_orders() {
        let cm = ComputeModel::from_machine(&Machine::frontier());
        let b = cm.layer_compute_time(2048, 4096, 4096);
        assert!(b.fwd > 0.0 && b.bwd_input > 0.0 && b.bwd_weight > 0.0);
        let total = b.fwd + b.bwd_input + b.bwd_weight;
        assert!((b.total() - total).abs() < 1e-15);
        // Equal flops, so ordering follows the mode factors: NN fastest.
        assert!(b.fwd <= b.bwd_input && b.fwd <= b.bwd_weight);
    }

    #[test]
    fn network_compute_shrinks_with_tensor_parallelism() {
        let cm = ComputeModel::from_machine(&Machine::perlmutter());
        let model = model_by_billions(5);
        let batch = 1 << 18;
        let t1 = cm.network_compute_time(Grid4d::new(1, 1, 1, 1), &model, batch);
        let t8 = cm.network_compute_time(Grid4d::new(4, 2, 1, 1), &model, batch);
        assert!(t1 > 0.0);
        // Smaller local GEMMs are less efficient, so the speedup is
        // sublinear — but still a speedup.
        assert!(t8 < t1 && t8 > t1 / 8.0);
    }
}
