//! Per-algorithm α–β collective cost curves and crossover prediction.
//!
//! Equations 1–6 price every collective with the bandwidth-optimal ring
//! under Assumption 3 (α = 0). The exec plane's message-size-aware
//! selection (`axonn_collectives::AlgoPolicy`) breaks that assumption on
//! purpose: for small and medium payloads the per-message latency term
//! dominates, and recursive halving/doubling or binomial trees win. This
//! module prices each algorithm with the classic `steps·α + volume/β`
//! decomposition (Thakur et al. / Rabenseifner — the same formulas the
//! functional plane's `RingCostModel` charges), predicts the winning
//! algorithm for a payload, and computes the analytic crossover points,
//! so the Eq. 1–7 ranker can be latency-adjusted without re-deriving the
//! curves at every call site.

use crate::grid::Grid4d;
use crate::model::{CommBreakdown, BYTES_PER_ELEM};
use axonn_cluster::{effective_bandwidth, BandwidthDb, Machine};

/// One link's latency/bandwidth pair: `α` seconds per message, `β`
/// bytes per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBeta {
    pub alpha: f64,
    pub beta: f64,
}

impl AlphaBeta {
    pub fn new(alpha: f64, beta: f64) -> AlphaBeta {
        AlphaBeta { alpha, beta }
    }
}

/// `⌈log2 g⌉` — critical-path steps of the hypercube/tree algorithms.
fn log_steps(g: usize) -> f64 {
    (g as f64).log2().ceil()
}

/// All-reduce algorithm curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArCurve {
    /// Ring (reduce-scatter + all-gather): `2(g−1)` steps,
    /// `2·(g−1)/g·n` volume — bandwidth-optimal.
    Ring,
    /// Recursive halving/doubling: `2⌈log2 g⌉` steps at ring-equal
    /// volume. Power-of-two groups only.
    RecursiveHalvingDoubling,
    /// Binomial tree (reduce + broadcast): `2⌈log2 g⌉` steps, each
    /// carrying the whole buffer. Any group size.
    Tree,
}

impl ArCurve {
    /// Predicted seconds for an all-reduce of `bytes` over `g` ranks.
    pub fn seconds(self, link: AlphaBeta, g: usize, bytes: f64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        let gf = g as f64;
        let l = log_steps(g);
        let (steps, volume) = match self {
            ArCurve::Ring => (2.0 * (gf - 1.0), 2.0 * (gf - 1.0) / gf * bytes),
            ArCurve::RecursiveHalvingDoubling => (2.0 * l, 2.0 * (gf - 1.0) / gf * bytes),
            ArCurve::Tree => (2.0 * l, 2.0 * l * bytes),
        };
        steps * link.alpha + volume / link.beta
    }

    /// Whether the curve is legal for this group size.
    pub fn legal(self, g: usize) -> bool {
        match self {
            ArCurve::Ring | ArCurve::Tree => true,
            ArCurve::RecursiveHalvingDoubling => g.is_power_of_two(),
        }
    }
}

/// Reduce-scatter algorithm curves (all-gather curves are symmetric:
/// same step counts, same `(g−1)/g·n` volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsCurve {
    /// Ring: `g−1` steps, `(g−1)/g·n` volume.
    Ring,
    /// Recursive halving (doubling for all-gather): `⌈log2 g⌉` steps at
    /// ring-equal volume. Power-of-two groups only.
    RecursiveHalving,
}

impl RsCurve {
    pub fn seconds(self, link: AlphaBeta, g: usize, bytes: f64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        let gf = g as f64;
        let steps = match self {
            RsCurve::Ring => gf - 1.0,
            RsCurve::RecursiveHalving => log_steps(g),
        };
        steps * link.alpha + (gf - 1.0) / gf * bytes / link.beta
    }

    pub fn legal(self, g: usize) -> bool {
        match self {
            RsCurve::Ring => true,
            RsCurve::RecursiveHalving => g.is_power_of_two(),
        }
    }
}

/// The cheapest legal all-reduce curve for this payload, with its
/// predicted seconds. Ties prefer the fewer-message algorithm (which is
/// what the exec policy does: per-message overheads the α term does not
/// capture — progress-thread wakeups, pool traffic — favour it).
pub fn best_all_reduce(link: AlphaBeta, g: usize, bytes: f64) -> (ArCurve, f64) {
    let candidates = [
        ArCurve::Tree,
        ArCurve::RecursiveHalvingDoubling,
        ArCurve::Ring,
    ];
    candidates
        .into_iter()
        .filter(|c| c.legal(g))
        .map(|c| (c, c.seconds(link, g, bytes)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("ring is always legal")
}

/// The cheapest legal reduce-scatter (equivalently all-gather) curve.
pub fn best_reduce_scatter(link: AlphaBeta, g: usize, bytes: f64) -> (RsCurve, f64) {
    let candidates = [RsCurve::RecursiveHalving, RsCurve::Ring];
    candidates
        .into_iter()
        .filter(|c| c.legal(g))
        .map(|c| (c, c.seconds(link, g, bytes)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("ring is always legal")
}

/// Analytic tree↔ring all-reduce crossover: the message size `n*` where
/// the binomial tree's `2L` messages stop paying for its `2L·n` volume
/// against the ring's `2(g−1)` messages at `2(g−1)/g·n` volume:
///
/// ```text
/// n* = α·β·(g − 1 − L) / (L − (g−1)/g),   L = ⌈log2 g⌉
/// ```
///
/// Below `n*` the tree wins; above it the ring (or RHD) does. Zero when
/// `g ≤ 2` (the tree never wins — it has no step advantage there).
pub fn ar_tree_ring_crossover_bytes(link: AlphaBeta, g: usize) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let gf = g as f64;
    let l = log_steps(g);
    let step_gain = gf - 1.0 - l;
    if step_gain <= 0.0 {
        return 0.0;
    }
    link.alpha * link.beta * step_gain / (l - (gf - 1.0) / gf)
}

/// Latency-adjusted Equations 1–5 for one FC layer: every term is priced
/// with the *cheapest legal* algorithm curve on that group's effective
/// bandwidth, instead of the α-free ring. With `alpha == 0` this reduces
/// exactly to `layer_comm_time` (Assumption 3), because the hypercube
/// algorithms move ring-equal volume and the tree is never selected.
#[allow(clippy::too_many_arguments)]
pub fn layer_comm_time_with_latency(
    machine: &Machine,
    db: &BandwidthDb,
    grid: Grid4d,
    m: usize,
    k: usize,
    n: usize,
    transposed: bool,
    alpha: f64,
) -> CommBreakdown {
    let mut betas = [0.0f64; 4];
    for (level, beta) in betas.iter_mut().enumerate() {
        *beta = effective_bandwidth(machine, db, grid.prefix(level), grid.dims()[level]);
    }
    let (gx, gy, beta_x, beta_y) = if transposed {
        (grid.gy, grid.gx, betas[1], betas[0])
    } else {
        (grid.gx, grid.gy, betas[0], betas[1])
    };
    let (gz, gd) = (grid.gz, grid.gd);
    let (mf, kf, nf) = (m as f64, k as f64, n as f64);
    let (gxf, gyf, gzf) = (gx as f64, gy as f64, gz as f64);

    let ag_z = if gz > 1 {
        // Eq. 1 prices the gathered buffer; the curve takes the full
        // pre-scatter/post-gather size `bytes` and applies (g−1)/g.
        let bytes = BYTES_PER_ELEM * kf * nf / (gxf * gyf);
        best_reduce_scatter(AlphaBeta::new(alpha, betas[2]), gz, bytes).1
    } else {
        0.0
    };
    let rs_z = if gz > 1 {
        let bytes = BYTES_PER_ELEM * kf * nf / (gxf * gyf);
        best_reduce_scatter(AlphaBeta::new(alpha, betas[2]), gz, bytes).1
    } else {
        0.0
    };
    let ar_y = if gy > 1 {
        let bytes = BYTES_PER_ELEM * mf * nf / (gzf * gxf);
        best_all_reduce(AlphaBeta::new(alpha, beta_y), gy, bytes).1
    } else {
        0.0
    };
    let ar_x = if gx > 1 {
        let bytes = BYTES_PER_ELEM * mf * kf / (gzf * gyf);
        best_all_reduce(AlphaBeta::new(alpha, beta_x), gx, bytes).1
    } else {
        0.0
    };
    let ar_data = if gd > 1 {
        let grad_bytes = BYTES_PER_ELEM * kf * nf / (gxf * gyf * gzf);
        let link = AlphaBeta::new(alpha, betas[3]);
        // Bucketed ZeRO-1: a reduce-scatter plus an all-gather.
        best_reduce_scatter(link, gd, grad_bytes).1 + best_reduce_scatter(link, gd, grad_bytes).1
    } else {
        0.0
    };
    CommBreakdown {
        ag_z,
        rs_z,
        ar_y,
        ar_x,
        ar_data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::layer_comm_time;

    const LINK: AlphaBeta = AlphaBeta {
        alpha: 1e-6,
        beta: 1e10,
    };

    #[test]
    fn alpha_free_curves_match_eq_ring_volumes() {
        // With α = 0, every legal curve except the tree collapses onto
        // the ring's bandwidth term — the Assumption-3 regime.
        let link = AlphaBeta::new(0.0, 1e9);
        for g in [2usize, 4, 8] {
            let n = 1e6;
            let ring = ArCurve::Ring.seconds(link, g, n);
            let rhd = ArCurve::RecursiveHalvingDoubling.seconds(link, g, n);
            assert!((ring - rhd).abs() < ring * 1e-12, "g={g}");
            assert!(ArCurve::Tree.seconds(link, g, n) > ring, "g={g}");
            let rs_ring = RsCurve::Ring.seconds(link, g, n);
            let rs_rh = RsCurve::RecursiveHalving.seconds(link, g, n);
            assert!((rs_ring - rs_rh).abs() < rs_ring * 1e-12, "g={g}");
        }
    }

    #[test]
    fn rhd_dominates_ring_on_pow2_groups_at_every_size() {
        // Same volume, fewer messages: with any α > 0 the halving/
        // doubling curve is the pow2 winner at every payload size, which
        // is why the exec policy's medium band is so wide.
        for g in [4usize, 8, 16] {
            for bytes in [64.0, 1e4, 1e7, 1e9] {
                assert!(
                    ArCurve::RecursiveHalvingDoubling.seconds(LINK, g, bytes)
                        < ArCurve::Ring.seconds(LINK, g, bytes),
                    "g={g} bytes={bytes}"
                );
            }
        }
    }

    #[test]
    fn tree_crossover_is_where_prediction_flips() {
        // Non-pow2 group: RHD is illegal, so the duel is tree vs ring
        // and the analytic crossover must be exactly where the argmin
        // changes.
        let g = 6;
        let n_star = ar_tree_ring_crossover_bytes(LINK, g);
        assert!(n_star > 0.0);
        let (below, _) = best_all_reduce(LINK, g, n_star * 0.9);
        let (above, _) = best_all_reduce(LINK, g, n_star * 1.1);
        assert_eq!(below, ArCurve::Tree);
        assert_eq!(above, ArCurve::Ring);
        // g = 2: the tree has no step advantage, crossover degenerates.
        assert_eq!(ar_tree_ring_crossover_bytes(LINK, 2), 0.0);
    }

    #[test]
    fn latency_adjusted_breakdown_reduces_to_eq16_at_alpha_zero() {
        let machine = Machine::frontier();
        let db = BandwidthDb::profile(&machine);
        let grid = Grid4d::new(4, 2, 2, 2);
        let base = layer_comm_time(&machine, &db, grid, 2048, 8192, 8192, false);
        let adj = layer_comm_time_with_latency(&machine, &db, grid, 2048, 8192, 8192, false, 0.0);
        for (a, b) in [
            (base.ag_z, adj.ag_z),
            (base.rs_z, adj.rs_z),
            (base.ar_y, adj.ar_y),
            (base.ar_x, adj.ar_x),
            (base.ar_data, adj.ar_data),
        ] {
            assert!((a - b).abs() <= a.abs() * 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn latency_adjustment_charges_alpha_but_stays_close() {
        // A small α adds message costs without inflating the bandwidth
        // terms: the adjusted total is strictly larger but of the same
        // order for realistically large layers.
        let machine = Machine::frontier();
        let db = BandwidthDb::profile(&machine);
        let grid = Grid4d::new(4, 2, 2, 2);
        let base = layer_comm_time(&machine, &db, grid, 2048, 8192, 8192, false).total();
        let adj = layer_comm_time_with_latency(&machine, &db, grid, 2048, 8192, 8192, false, 1e-6)
            .total();
        assert!(adj > base);
        assert!(adj < base * 1.5, "{adj} vs {base}");
    }
}
