//! Equations 1–6: per-layer and whole-network communication time, and the
//! configuration ranking built on top of them.

use crate::grid::Grid4d;
use axonn_cluster::{effective_bandwidth, BandwidthDb, Machine};
use axonn_gpt::GptConfig;
use serde::Serialize;

/// Bytes per element for communicated tensors (bf16 activations, weights
/// and gradients — the mixed-precision regime of Section VI-A).
pub const BYTES_PER_ELEM: f64 = 2.0;

/// The five collective terms of Equation 6 for one FC layer.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CommBreakdown {
    /// Eq. 1 — all-gather of the Z-sharded weights (forward).
    pub ag_z: f64,
    /// Eq. 2 — reduce-scatter of weight gradients (backward).
    pub rs_z: f64,
    /// Eq. 3 — all-reduce of output activations (forward).
    pub ar_y: f64,
    /// Eq. 4 — all-reduce of input gradients (backward).
    pub ar_x: f64,
    /// Eq. 5 — data-parallel gradient all-reduce.
    pub ar_data: f64,
}

impl CommBreakdown {
    /// Equation 6: the sum of all terms.
    pub fn total(&self) -> f64 {
        self.ag_z + self.rs_z + self.ar_y + self.ar_x + self.ar_data
    }
}

/// Hierarchical bandwidths `β_x, β_y, β_z, β_data` for a configuration
/// (Equation 7 + Case-1 database).
fn level_bandwidths(machine: &Machine, db: &BandwidthDb, grid: Grid4d) -> [f64; 4] {
    let mut betas = [0.0f64; 4];
    for (level, beta) in betas.iter_mut().enumerate() {
        *beta = effective_bandwidth(machine, db, grid.prefix(level), grid.dims()[level]);
    }
    betas
}

/// Equations 1–5 for a single FC layer with activation rows `m` (tokens
/// per model replica), weight shape `k×n`, on `grid`.
///
/// For layers with "transposed" weights (Section V-A) the roles of the X
/// and Y groups are exchanged: pass the result of `grid.swap_xy()` *and*
/// swapped bandwidths — or more simply, set `transposed` here.
pub fn layer_comm_time(
    machine: &Machine,
    db: &BandwidthDb,
    grid: Grid4d,
    m: usize,
    k: usize,
    n: usize,
    transposed: bool,
) -> CommBreakdown {
    let betas = level_bandwidths(machine, db, grid);
    // Transposed layers swap which physical group plays the X role; the
    // bandwidths follow the physical groups.
    let (gx, gy, beta_x, beta_y) = if transposed {
        (grid.gy, grid.gx, betas[1], betas[0])
    } else {
        (grid.gx, grid.gy, betas[0], betas[1])
    };
    let (gz, gd) = (grid.gz, grid.gd);
    let (beta_z, beta_d) = (betas[2], betas[3]);
    let (mf, kf, nf) = (m as f64, k as f64, n as f64);
    let (gxf, gyf, gzf, gdf) = (gx as f64, gy as f64, gz as f64, gd as f64);

    let ag_z = if gz > 1 {
        (1.0 / beta_z) * (gzf - 1.0) * BYTES_PER_ELEM * kf * nf / (gxf * gyf * gzf)
    } else {
        0.0
    };
    let rs_z = if gz > 1 {
        (1.0 / beta_z) * ((gzf - 1.0) / gzf) * BYTES_PER_ELEM * kf * nf / (gxf * gyf)
    } else {
        0.0
    };
    let ar_y = if gy > 1 {
        (2.0 / beta_y) * ((gyf - 1.0) / gyf) * BYTES_PER_ELEM * mf * nf / (gzf * gxf)
    } else {
        0.0
    };
    let ar_x = if gx > 1 {
        (2.0 / beta_x) * ((gxf - 1.0) / gxf) * BYTES_PER_ELEM * mf * kf / (gzf * gyf)
    } else {
        0.0
    };
    // Eq. 5 charged as the bucketed ZeRO-1 schedule actually runs it: a
    // reduce-scatter of the gradient bucket plus an all-gather of the
    // updated slices. Each half moves ((g-1)/g)·V bytes, so the total
    // equals the classic all-reduce volume — the schedule rearranges
    // *when* the bytes move (overlapped with the ORS drain), not how
    // many there are.
    let ar_data = if gd > 1 {
        let grad_bytes = BYTES_PER_ELEM * kf * nf / (gxf * gyf * gzf);
        let rs_d = (1.0 / beta_d) * ((gdf - 1.0) / gdf) * grad_bytes;
        let ag_d = (1.0 / beta_d) * ((gdf - 1.0) / gdf) * grad_bytes;
        rs_d + ag_d
    } else {
        0.0
    };
    CommBreakdown {
        ag_z,
        rs_z,
        ar_y,
        ar_x,
        ar_data,
    }
}

/// Whole-network communication time: Equation 6 applied to every FC layer
/// of `model` (with the alternating transpose scheme) and summed.
/// `batch_tokens` is the global batch; each model replica processes
/// `batch_tokens / G_data` tokens.
pub fn network_comm_time(
    machine: &Machine,
    db: &BandwidthDb,
    grid: Grid4d,
    model: &GptConfig,
    batch_tokens: usize,
) -> f64 {
    assert_eq!(
        batch_tokens % grid.gd,
        0,
        "batch tokens must divide across data-parallel groups"
    );
    let m = batch_tokens / grid.gd;
    model
        .network_fc_layers()
        .iter()
        .map(|l| layer_comm_time(machine, db, grid, m, l.shape.k, l.shape.n, l.transposed).total())
        .sum()
}

/// A configuration with its predicted communication time.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RankedConfig {
    pub grid: Grid4d,
    pub predicted_comm_seconds: f64,
}

/// Enumerate all 4D configurations of `gpus` and order them by predicted
/// communication time, best first — the ordered list of Section V-B from
/// which AxoNN tries the top few.
///
/// Configurations whose tensor-parallel sharding cannot hold the model
/// (per-GPU weight shard above `mem_limit_bytes`, if given) are dropped,
/// mirroring the memory feasibility check a real launch performs.
pub fn rank_configs(
    machine: &Machine,
    db: &BandwidthDb,
    model: &GptConfig,
    batch_tokens: usize,
    gpus: usize,
    mem_limit_bytes: Option<f64>,
) -> Vec<RankedConfig> {
    let mut out: Vec<RankedConfig> = Grid4d::enumerate(gpus)
        .into_iter()
        .filter(|g| batch_tokens.is_multiple_of(g.gd))
        .filter(|g| {
            let Some(limit) = mem_limit_bytes else {
                return true;
            };
            // Mixed-precision training state per parameter: bf16 weight
            // (2) + bf16 grad (2) + fp32 master + two Adam moments (12).
            let state_bytes = 16.0;
            let per_gpu = model.num_parameters() as f64 * state_bytes / g.tensor_parallel() as f64;
            per_gpu <= limit
        })
        .map(|grid| RankedConfig {
            grid,
            predicted_comm_seconds: network_comm_time(machine, db, grid, model, batch_tokens),
        })
        .collect();
    out.sort_by(|a, b| {
        a.predicted_comm_seconds
            .total_cmp(&b.predicted_comm_seconds)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_gpt::model_by_billions;

    fn setup() -> (Machine, BandwidthDb) {
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        (m, db)
    }

    #[test]
    fn breakdown_terms_vanish_for_unit_dimensions() {
        let (m, db) = setup();
        let b = layer_comm_time(&m, &db, Grid4d::new(1, 1, 1, 1), 4096, 8192, 8192, false);
        assert_eq!(b.total(), 0.0);

        let b = layer_comm_time(&m, &db, Grid4d::new(1, 1, 8, 1), 4096, 8192, 8192, false);
        assert!(b.ag_z > 0.0 && b.rs_z > 0.0);
        assert_eq!(b.ar_x + b.ar_y + b.ar_data, 0.0);
    }

    #[test]
    fn eq1_hand_computed() {
        // Within-node Z group of 2 on Frontier: β from the database.
        let (m, db) = setup();
        let grid = Grid4d::new(1, 1, 2, 1);
        let (k, n) = (4096, 4096);
        let b = layer_comm_time(&m, &db, grid, 1024, k, n, false);
        let beta = db.lookup(1, 2);
        let expect = (1.0 / beta) * 1.0 * 2.0 * (k * n) as f64 / 2.0;
        assert!((b.ag_z - expect).abs() < expect * 1e-12);
    }

    #[test]
    fn eq5_uses_outermost_bandwidth() {
        // Data-parallel groups span nodes; β = β_inter / min(Gnode, TP).
        let (m, db) = setup();
        let grid = Grid4d::new(8, 1, 1, 4); // TP=8 fills a node
        let (k, n) = (8192, 8192);
        let b = layer_comm_time(&m, &db, grid, 1024, k, n, false);
        let beta = m.beta_inter / 8.0;
        let expect = (2.0 / beta) * (3.0 / 4.0) * 2.0 * (k * n) as f64 / 8.0;
        assert!(
            (b.ar_data - expect).abs() < expect * 1e-12,
            "{} vs {expect}",
            b.ar_data
        );
    }

    #[test]
    fn transposed_layer_swaps_x_and_y_costs() {
        let (m, db) = setup();
        let grid = Grid4d::new(4, 2, 1, 1);
        // Square weights: ar terms differ only via (G, β) roles.
        let normal = layer_comm_time(&m, &db, grid, 2048, 4096, 4096, false);
        let transposed = layer_comm_time(&m, &db, grid, 2048, 4096, 4096, true);
        assert!((normal.ar_x - transposed.ar_y).abs() < 1e-15);
        assert!((normal.ar_y - transposed.ar_x).abs() < 1e-15);
    }

    #[test]
    fn network_time_positive_and_scales_with_batch() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        let grid = Grid4d::new(8, 2, 2, 1);
        let t1 = network_comm_time(&m, &db, grid, &model, 1 << 20);
        let t2 = network_comm_time(&m, &db, grid, &model, 1 << 21);
        assert!(t1 > 0.0);
        // Activation terms grow with batch, weight terms don't.
        assert!(t2 > t1 && t2 < 2.0 * t1);
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        let ranked = rank_configs(&m, &db, &model, 1 << 22, 32, None);
        assert_eq!(ranked.len(), 56);
        for w in ranked.windows(2) {
            assert!(w[0].predicted_comm_seconds <= w[1].predicted_comm_seconds);
        }
    }

    #[test]
    fn pure_data_parallel_is_memory_infeasible_for_big_models() {
        // On communication volume alone, pure DP looks attractive for
        // large batches (only gradients move); what rules it out for a
        // 20B model on 64 GB GCDs is memory, exactly as on Frontier. The
        // ranking with a realistic memory limit must exclude TP degrees
        // that cannot hold the model.
        let (m, db) = setup();
        let model = model_by_billions(20);
        let ranked = rank_configs(&m, &db, &model, 1 << 22, 32, Some(64e9));
        assert!(ranked.iter().all(|r| r.grid != Grid4d::new(1, 1, 1, 32)));
        // 20B params * 16 B/param = 320 GB of training state: needs TP >= 8.
        assert!(ranked.iter().all(|r| r.grid.tensor_parallel() >= 8));
    }

    #[test]
    fn memory_filter_drops_infeasible_configs() {
        let (m, db) = setup();
        let model = model_by_billions(20);
        // 64 GB GCDs: pure data-parallel (TP=1) needs 20B*16B = 320 GB.
        let ranked = rank_configs(&m, &db, &model, 1 << 22, 32, Some(64e9));
        assert!(ranked.iter().all(|r| {
            model.num_parameters() as f64 * 16.0 / r.grid.tensor_parallel() as f64 <= 64e9
        }));
        assert!(!ranked.is_empty());
    }
}
