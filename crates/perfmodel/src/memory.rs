//! Per-GPU memory estimation for a 4D configuration.
//!
//! The launch-time feasibility check the paper's framework performs:
//! given a model, a grid and a batch, estimate what one GPU must hold —
//! sharded training state, checkpointed activations, the transient
//! gathered-weight buffer of Algorithm 1 — so infeasible configurations
//! can be pruned before ranking. Numbers follow the mixed-precision
//! regime of Section VI-A (bf16 weights/grads/activations, fp32 master
//! weights and Adam moments) with activation checkpointing on.

use crate::grid::Grid4d;
use axonn_gpt::GptConfig;
use serde::Serialize;

/// Bytes per element of bf16 tensors.
const BF16: f64 = 2.0;
/// Bytes per element of fp32 tensors.
const FP32: f64 = 4.0;

/// Breakdown of one GPU's estimated memory.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MemoryEstimate {
    /// bf16 weight shards: `2·P / (gx·gy·gz)`.
    pub weights: f64,
    /// bf16 gradient shards (same sharding as weights).
    pub gradients: f64,
    /// fp32 master weights + two Adam moments: `12·P / (gx·gy·gz)`.
    pub optimizer: f64,
    /// Checkpointed layer-boundary activations: one `m_local × h` bf16
    /// tensor per FC layer (with checkpointing, intermediates inside a
    /// layer are recomputed).
    pub activations: f64,
    /// The transient gathered `W` buffer of Algorithm 1 (largest layer's
    /// `k·n / (g_in·g_out)` block, double-buffered under OAG prefetch).
    pub gathered_weights: f64,
}

impl MemoryEstimate {
    pub fn total(&self) -> f64 {
        self.weights + self.gradients + self.optimizer + self.activations + self.gathered_weights
    }
}

/// Estimate the per-GPU memory of training `model` on `grid` with
/// `batch_tokens` global batch tokens.
pub fn estimate_memory(model: &GptConfig, grid: Grid4d, batch_tokens: usize) -> MemoryEstimate {
    let params = model.num_parameters() as f64;
    let tp = grid.tensor_parallel() as f64;
    let m_local = batch_tokens as f64 / (grid.gd as f64 * grid.gz as f64);

    let weights = BF16 * params / tp;
    let gradients = BF16 * params / tp;
    let optimizer = 3.0 * FP32 * params / tp;

    // One boundary activation per FC layer: m_local rows of the layer's
    // *input* width divided over the row group.
    let mut activations = 0.0;
    let mut biggest_gather = 0.0f64;
    for l in model.network_fc_layers() {
        let (g_in, g_out) = if l.transposed {
            (grid.gx as f64, grid.gy as f64)
        } else {
            (grid.gy as f64, grid.gx as f64)
        };
        activations += BF16 * m_local * l.shape.k as f64 / g_in;
        let gathered = BF16 * (l.shape.k as f64 / g_in) * (l.shape.n as f64 / g_out);
        biggest_gather = biggest_gather.max(gathered);
    }
    MemoryEstimate {
        weights,
        gradients,
        optimizer,
        activations,
        gathered_weights: 2.0 * biggest_gather, // double-buffered prefetch
    }
}

/// Memory estimate under Agarwal's *original* 3D algorithm, which
/// replicates `W` along Z instead of sharding it — the design the paper
/// explicitly modified ("We modify Agarwal's algorithm to reduce memory
/// consumption", Section V-A). Weight/gradient/optimizer state is divided
/// only by `gx·gy`, and no gather buffer is needed.
pub fn estimate_memory_replicated_w(
    model: &GptConfig,
    grid: Grid4d,
    batch_tokens: usize,
) -> MemoryEstimate {
    let mut e = estimate_memory(model, grid, batch_tokens);
    let gz = grid.gz as f64;
    e.weights *= gz;
    e.gradients *= gz;
    e.optimizer *= gz;
    e.gathered_weights = 0.0;
    e
}

/// True if the configuration fits within `mem_limit_bytes` per GPU.
pub fn fits(model: &GptConfig, grid: Grid4d, batch_tokens: usize, mem_limit_bytes: f64) -> bool {
    estimate_memory(model, grid, batch_tokens).total() <= mem_limit_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_gpt::model_by_billions;

    #[test]
    fn state_terms_match_16_bytes_per_param() {
        let m = model_by_billions(20);
        let g = Grid4d::new(4, 2, 4, 8);
        let e = estimate_memory(&m, g, 1 << 20);
        let per_param = (e.weights + e.gradients + e.optimizer) * g.tensor_parallel() as f64
            / m.num_parameters() as f64;
        assert!((per_param - 16.0).abs() < 1e-9);
    }

    #[test]
    fn more_tensor_parallelism_means_less_state() {
        let m = model_by_billions(20);
        let small_tp = estimate_memory(&m, Grid4d::new(2, 1, 2, 8), 1 << 20);
        let big_tp = estimate_memory(&m, Grid4d::new(4, 2, 4, 1), 1 << 20);
        assert!(big_tp.weights < small_tp.weights);
        assert!(big_tp.optimizer < small_tp.optimizer);
    }

    #[test]
    fn activations_scale_with_per_replica_batch() {
        let m = model_by_billions(5);
        let g = Grid4d::new(2, 2, 2, 4);
        let a = estimate_memory(&m, g, 1 << 20).activations;
        let b = estimate_memory(&m, g, 1 << 21).activations;
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn z_sharding_cuts_activations_not_gathered_weights() {
        // Z divides batch rows (activations) but the gathered W block is
        // the full (k/g_in × n/g_out) regardless of Z — the memory cost
        // that FSDP-style sharding cannot remove.
        let m = model_by_billions(5);
        // Same data-parallel degree; only Z differs.
        let z1 = estimate_memory(&m, Grid4d::new(2, 2, 1, 2), 1 << 20);
        let z4 = estimate_memory(&m, Grid4d::new(2, 2, 4, 2), 1 << 20);
        assert!(z4.activations < z1.activations);
        assert_eq!(z4.gathered_weights, z1.gathered_weights);
        // But Z does shard the persistent weight state.
        assert!(z4.weights < z1.weights);
    }

    #[test]
    fn fits_is_monotone_in_limit() {
        let m = model_by_billions(20);
        let g = Grid4d::new(4, 2, 4, 8);
        let need = estimate_memory(&m, g, 1 << 20).total();
        assert!(!fits(&m, g, 1 << 20, need * 0.9));
        assert!(fits(&m, g, 1 << 20, need * 1.1));
    }

    #[test]
    fn z_sharding_beats_agarwal_replication() {
        // The paper's Algorithm-1 modification: for any grid with gz > 1,
        // sharding W along Z needs less persistent memory than
        // replicating it, despite the transient gather buffer.
        let m = model_by_billions(20);
        let g = Grid4d::new(4, 2, 8, 4);
        let sharded = estimate_memory(&m, g, 1 << 20);
        let replicated = estimate_memory_replicated_w(&m, g, 1 << 20);
        assert!(sharded.total() < replicated.total());
        // And the state terms differ by exactly gz.
        assert!((replicated.weights / sharded.weights - 8.0).abs() < 1e-9);
    }

    #[test]
    fn frontier_scale_sanity() {
        // GPT-80B on the paper's 8,192-GCD partition must fit in 64 GB
        // GCDs for *some* configuration and not for pure-DP-style ones.
        let m = model_by_billions(80);
        let good = Grid4d::new(8, 2, 16, 32); // TP=256
        let e = estimate_memory(&m, good, axonn_gpt::HEADLINE_BATCH_TOKENS);
        assert!(
            e.total() < 64e9,
            "TP-256 config should fit: {:.1} GB",
            e.total() / 1e9
        );
        let bad = Grid4d::new(1, 1, 1, 8192);
        assert!(!fits(&m, bad, axonn_gpt::HEADLINE_BATCH_TOKENS, 64e9));
    }
}
