//! The 4D virtual grid: `G_x × G_y × G_z × G_data`.
//!
//! Process groups are organised hierarchically — X innermost, then Y,
//! then Z, then data outermost — matching the concrete example in
//! Section V-B (with 8 GPUs and all dimensions 2, the X groups are
//! (0,1), (2,3), …; the Y groups (0,2), (1,3), …; and so on).

use serde::{Deserialize, Serialize};

/// One configuration of the 4D hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Grid4d {
    pub gx: usize,
    pub gy: usize,
    pub gz: usize,
    pub gd: usize,
}

impl Grid4d {
    pub fn new(gx: usize, gy: usize, gz: usize, gd: usize) -> Self {
        assert!(
            gx >= 1 && gy >= 1 && gz >= 1 && gd >= 1,
            "grid dimensions must be positive"
        );
        Grid4d { gx, gy, gz, gd }
    }

    /// Total GPUs in the configuration.
    pub fn gpus(&self) -> usize {
        self.gx * self.gy * self.gz * self.gd
    }

    /// GPUs per model replica (the tensor-parallel degree).
    pub fn tensor_parallel(&self) -> usize {
        self.gx * self.gy * self.gz
    }

    /// Dimension sizes in hierarchy order (X, Y, Z, data).
    pub fn dims(&self) -> [usize; 4] {
        [self.gx, self.gy, self.gz, self.gd]
    }

    /// Cumulative product of the dimensions *inside* level `i` — the
    /// `Π_{j<i} G_j` prefix of Equation 7.
    pub fn prefix(&self, level: usize) -> usize {
        self.dims()[..level].iter().product()
    }

    /// The grid with the X and Y roles exchanged — what "transposed"
    /// layers see (Section V-A).
    pub fn swap_xy(&self) -> Grid4d {
        Grid4d {
            gx: self.gy,
            gy: self.gx,
            gz: self.gz,
            gd: self.gd,
        }
    }

    /// All ordered factorizations of `gpus` into the four dimensions —
    /// the configuration space the performance model ranks. Covers
    /// non-power-of-two partitions too (Alps runs on 6144 GPUs).
    ///
    /// # Panics
    /// If `gpus` is zero.
    pub fn enumerate(gpus: usize) -> Vec<Grid4d> {
        assert!(gpus >= 1, "GPU count must be positive");
        let mut out = Vec::new();
        for gx in divisors(gpus) {
            let rest_x = gpus / gx;
            for gy in divisors(rest_x) {
                let rest_y = rest_x / gy;
                for gz in divisors(rest_y) {
                    out.push(Grid4d::new(gx, gy, gz, rest_y / gz));
                }
            }
        }
        out
    }

    /// World ranks of every X / Y / Z / data group, given the hierarchical
    /// rank layout. Level 0 = X, 1 = Y, 2 = Z, 3 = data. Each returned
    /// group is ordered innermost-stride first, which fixes ring order.
    pub fn groups_at_level(&self, level: usize) -> Vec<Vec<usize>> {
        let dims = self.dims();
        let size = dims[level];
        let stride = self.prefix(level);
        let total = self.gpus();
        let mut groups = Vec::with_capacity(total / size);
        for base in 0..total {
            // `base` is a group leader iff its coordinate at `level` is 0.
            if (base / stride).is_multiple_of(size) {
                groups.push((0..size).map(|t| base + t * stride).collect());
            }
        }
        groups
    }

    /// Coordinates `(x, y, z, d)` of a world rank under the hierarchical
    /// layout.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize, usize) {
        assert!(rank < self.gpus(), "rank {rank} outside grid");
        let x = rank % self.gx;
        let y = (rank / self.gx) % self.gy;
        let z = (rank / (self.gx * self.gy)) % self.gz;
        let d = rank / (self.gx * self.gy * self.gz);
        (x, y, z, d)
    }

    /// Inverse of [`Grid4d::coords_of`].
    pub fn rank_of(&self, x: usize, y: usize, z: usize, d: usize) -> usize {
        assert!(x < self.gx && y < self.gy && z < self.gz && d < self.gd);
        x + self.gx * (y + self.gy * (z + self.gz * d))
    }
}

/// All divisors of `n`, ascending.
fn divisors(n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    v.sort_unstable();
    v
}

impl std::fmt::Display for Grid4d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}x{}x{} (x*y*z*d)",
            self.gx, self.gy, self.gz, self.gd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_groups() {
        // Section V-B: 8 GPUs, all dims 2. X groups: (0,1),(2,3),(4,5),
        // (6,7). Y groups: (0,2),(1,3),(4,6),(5,7).
        let g = Grid4d::new(2, 2, 2, 1);
        assert_eq!(
            g.groups_at_level(0),
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]
        );
        assert_eq!(
            g.groups_at_level(1),
            vec![vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]]
        );
        assert_eq!(
            g.groups_at_level(2),
            vec![vec![0, 4], vec![1, 5], vec![2, 6], vec![3, 7]]
        );
    }

    #[test]
    fn enumerate_counts_compositions() {
        // 2^5 = 32 GPUs: compositions of 5 into 4 nonneg parts = C(8,3).
        assert_eq!(Grid4d::enumerate(32).len(), 56);
        // Every enumerated grid multiplies back to 32.
        assert!(Grid4d::enumerate(32).iter().all(|g| g.gpus() == 32));
        // Degenerate world.
        assert_eq!(Grid4d::enumerate(1), vec![Grid4d::new(1, 1, 1, 1)]);
    }

    #[test]
    fn enumerate_has_no_duplicates() {
        let mut v = Grid4d::enumerate(64);
        let n = v.len();
        v.sort_by_key(|g| (g.gx, g.gy, g.gz, g.gd));
        v.dedup();
        assert_eq!(v.len(), n);
    }

    #[test]
    fn coords_round_trip() {
        let g = Grid4d::new(2, 4, 2, 2);
        for rank in 0..g.gpus() {
            let (x, y, z, d) = g.coords_of(rank);
            assert_eq!(g.rank_of(x, y, z, d), rank);
        }
    }

    #[test]
    fn prefix_products() {
        let g = Grid4d::new(2, 4, 8, 16);
        assert_eq!(g.prefix(0), 1);
        assert_eq!(g.prefix(1), 2);
        assert_eq!(g.prefix(2), 8);
        assert_eq!(g.prefix(3), 64);
    }

    #[test]
    fn swap_xy_is_involutive() {
        let g = Grid4d::new(2, 8, 4, 1);
        assert_eq!(g.swap_xy().swap_xy(), g);
        assert_eq!(g.swap_xy(), Grid4d::new(8, 2, 4, 1));
    }

    #[test]
    fn groups_partition_the_world() {
        let g = Grid4d::new(2, 2, 4, 2);
        for level in 0..4 {
            let groups = g.groups_at_level(level);
            let mut seen: Vec<usize> = groups.concat();
            seen.sort_unstable();
            assert_eq!(seen, (0..g.gpus()).collect::<Vec<_>>(), "level {level}");
        }
    }

    #[test]
    fn enumerate_handles_non_powers_of_two() {
        // 6 = 2·3: ordered factorizations into 4 parts = 4 (placements of
        // the 2) × 4 (placements of the 3) = 16.
        let v = Grid4d::enumerate(6);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|g| g.gpus() == 6));
    }
}
