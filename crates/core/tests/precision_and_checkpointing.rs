//! Tests for the two Section VI-A training-regime features: bf16 mixed
//! precision and activation checkpointing.

use axonn_collectives::RingCostModel;
use axonn_core::{
    Activation, GridTopology, NetConfig, Network4d, OverlapConfig, Precision, SerialMlp,
};
use axonn_exec::{run_spmd, run_spmd_timed};
use axonn_tensor::Matrix;
use std::sync::Arc;

const DIMS: [usize; 4] = [16, 32, 32, 16];
const SEED: u64 = 31;

fn batch() -> (Matrix, Matrix) {
    (
        Matrix::random(16, DIMS[0], 1.0, 7),
        Matrix::random(16, DIMS[3], 1.0, 8),
    )
}

fn run(gx: usize, gy: usize, gz: usize, gd: usize, cfg: NetConfig, steps: usize) -> Vec<f32> {
    let out = run_spmd(gx * gy * gz * gd, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut net = Network4d::with_config(comm, grid, &DIMS, Activation::Gelu, SEED, cfg);
        let (x, t) = batch();
        (0..steps)
            .map(|_| net.train_step(&x, &t, 0.01))
            .collect::<Vec<f32>>()
    });
    out.into_iter().next().unwrap()
}

#[test]
fn checkpointing_is_numerically_identical() {
    // Recomputing activations repeats the exact same float operations, so
    // losses must match bit-for-bit.
    let plain = run(
        2,
        2,
        2,
        1,
        NetConfig {
            overlap: OverlapConfig::all(),
            ..Default::default()
        },
        4,
    );
    let ckpt = run(
        2,
        2,
        2,
        1,
        NetConfig {
            overlap: OverlapConfig::all(),
            activation_checkpointing: true,
            ..Default::default()
        },
        4,
    );
    assert_eq!(plain, ckpt);
}

#[test]
fn checkpointing_costs_extra_virtual_time() {
    let cost = Arc::new(RingCostModel::new(1e9, 1e8));
    let time_of = |ckpt: bool| -> f64 {
        let cost = cost.clone();
        let times = run_spmd_timed(8, cost, move |comm| {
            let grid = GridTopology::new(2, 1, 4, 1, comm.rank());
            let mut net = Network4d::with_config(
                comm,
                grid,
                &DIMS,
                Activation::Gelu,
                SEED,
                NetConfig {
                    activation_checkpointing: ckpt,
                    ..Default::default()
                },
            );
            let (x, t) = batch();
            net.train_step(&x, &t, 0.01);
            net.comm().now()
        });
        times.into_iter().fold(0.0, f64::max)
    };
    let plain = time_of(false);
    let ckpt = time_of(true);
    assert!(
        ckpt > plain,
        "checkpointing should pay recompute time: {ckpt} vs {plain}"
    );
}

#[test]
fn bf16_mixed_precision_tracks_f32_training() {
    let f32_losses = run(2, 1, 2, 1, NetConfig::default(), 6);
    let bf16_losses = run(
        2,
        1,
        2,
        1,
        NetConfig {
            precision: Precision::Bf16Mixed,
            ..Default::default()
        },
        6,
    );
    // Same trajectory within bf16 rounding (relative ~1%).
    for (a, b) in f32_losses.iter().zip(&bf16_losses) {
        let rel = (a - b).abs() / a.max(1e-3);
        assert!(rel < 0.05, "f32 {a} vs bf16 {b}");
    }
    // And it actually learns.
    assert!(bf16_losses.last().unwrap() < &bf16_losses[0]);
    // But it is not bit-identical (the rounding really happened).
    assert_ne!(f32_losses, bf16_losses);
}

#[test]
fn bf16_parallel_matches_bf16_expectations_across_grids() {
    // Mixed precision must behave the same on different grids (the
    // rounding points are the same logical tensors).
    let a = run(
        2,
        1,
        1,
        1,
        NetConfig {
            precision: Precision::Bf16Mixed,
            ..Default::default()
        },
        3,
    );
    let b = run(
        1,
        1,
        2,
        1,
        NetConfig {
            precision: Precision::Bf16Mixed,
            ..Default::default()
        },
        3,
    );
    for (x, y) in a.iter().zip(&b) {
        let rel = (x - y).abs() / x.max(1e-3);
        assert!(rel < 0.02, "grid-dependent bf16 drift: {x} vs {y}");
    }
}

#[test]
fn serial_reference_still_matched_with_all_features_on() {
    let (x, t) = batch();
    let mut serial = SerialMlp::new(&DIMS, Activation::Gelu, SEED);
    let s: Vec<f32> = (0..4).map(|_| serial.train_step(&x, &t, 0.01)).collect();
    let p = run(
        2,
        2,
        1,
        2,
        NetConfig {
            overlap: OverlapConfig::all(),
            kernel_tuning: true,
            activation_checkpointing: true,
            ..Default::default()
        },
        4,
    );
    for (a, b) in s.iter().zip(&p) {
        let rel = (a - b).abs() / a.max(1e-3);
        assert!(rel < 2e-3, "serial {a} vs full-featured parallel {b}");
    }
}
