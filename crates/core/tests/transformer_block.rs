//! The 4D-parallel transformer block against a serial reference:
//! identical seeds, identical math, every legal grid.

use axonn_core::{
    block_weight, distribute_input, distribute_output, GridTopology, KernelTuner, OverlapConfig,
    ParallelTransformerBlock,
};
use axonn_exec::run_spmd;
use axonn_tensor::{gemm, MatMode, Matrix};

const HIDDEN: usize = 16;
const HEADS: usize = 4;
const SEQ: usize = 4;
const SEED: u64 = 77;

// ---------- serial reference ----------

struct SerialBlock {
    gain1: Vec<f32>,
    bias1: Vec<f32>,
    gain2: Vec<f32>,
    bias2: Vec<f32>,
    qkv: Matrix,
    proj: Matrix,
    fc1: Matrix,
    fc2: Matrix,
}

fn layernorm(x: &Matrix, gain: &[f32], bias: &[f32]) -> Matrix {
    let (rows, h) = x.shape();
    let mut out = Matrix::zeros(rows, h);
    for r in 0..rows {
        let row = x.row(r);
        let mean: f32 = row.iter().sum::<f32>() / h as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / h as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        let o = out.row_mut(r);
        for c in 0..h {
            o[c] = (row[c] - mean) * inv * gain[c] + bias[c];
        }
    }
    out
}

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044715 * x * x * x)).tanh())
}

fn attention(qkv: &Matrix, heads: usize, seq: usize) -> Matrix {
    let (rows, width) = qkv.shape();
    let hd = width / (3 * heads);
    let b = rows / seq;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut out = Matrix::zeros(rows, heads * hd);
    for s in 0..b {
        for head in 0..heads {
            let off = head * 3 * hd;
            let mut q = Matrix::zeros(seq, hd);
            let mut k = Matrix::zeros(seq, hd);
            let mut v = Matrix::zeros(seq, hd);
            for t in 0..seq {
                let row = qkv.row(s * seq + t);
                q.row_mut(t).copy_from_slice(&row[off..off + hd]);
                k.row_mut(t).copy_from_slice(&row[off + hd..off + 2 * hd]);
                v.row_mut(t)
                    .copy_from_slice(&row[off + 2 * hd..off + 3 * hd]);
            }
            let mut scores = gemm(MatMode::NT, &q, &k);
            scores.scale(scale);
            let mut p = Matrix::zeros(seq, seq);
            for i in 0..seq {
                let srow = scores.row(i);
                let maxv = srow[..=i].iter().cloned().fold(f32::MIN, f32::max);
                let denom: f32 = srow[..=i].iter().map(|&x| (x - maxv).exp()).sum();
                for j in 0..=i {
                    p[(i, j)] = (srow[j] - maxv).exp() / denom;
                }
            }
            let o = gemm(MatMode::NN, &p, &v);
            for t in 0..seq {
                out.row_mut(s * seq + t)[head * hd..(head + 1) * hd].copy_from_slice(o.row(t));
            }
        }
    }
    out
}

impl SerialBlock {
    fn new() -> Self {
        SerialBlock {
            gain1: vec![1.0; HIDDEN],
            bias1: vec![0.0; HIDDEN],
            gain2: vec![1.0; HIDDEN],
            bias2: vec![0.0; HIDDEN],
            qkv: block_weight(HIDDEN, 3 * HIDDEN, SEED, 1),
            proj: block_weight(HIDDEN, HIDDEN, SEED, 2),
            fc1: block_weight(HIDDEN, 4 * HIDDEN, SEED, 3),
            fc2: block_weight(4 * HIDDEN, HIDDEN, SEED, 4),
        }
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        let n1 = layernorm(x, &self.gain1, &self.bias1);
        let qkv = gemm(MatMode::NN, &n1, &self.qkv);
        let attn = attention(&qkv, HEADS, SEQ);
        let mut h = gemm(MatMode::NN, &attn, &self.proj);
        h.add_assign(x);
        let n2 = layernorm(&h, &self.gain2, &self.bias2);
        let mut a = gemm(MatMode::NN, &n2, &self.fc1);
        a.map_inplace(gelu);
        let mut out = gemm(MatMode::NN, &a, &self.fc2);
        out.add_assign(&h);
        out
    }
}

// ---------- helpers ----------

/// Global batch: 4 sequences of SEQ tokens.
fn batch() -> Matrix {
    Matrix::random(4 * SEQ, HIDDEN, 0.8, 900)
}

fn parallel_forward(gx: usize, gy: usize, gz: usize, gd: usize) -> Vec<(Matrix, Matrix)> {
    // Returns (local output, expected local slice of serial output).
    let serial_out = SerialBlock::new().forward(&batch());
    run_spmd(gx * gy * gz * gd, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut block = ParallelTransformerBlock::new(&grid, HIDDEN, HEADS, SEQ, SEED, 0);
        let x_local = distribute_input(&batch(), &grid, false);
        let out = block.forward(&comm, &grid, &x_local);
        // Block output columns split like a *transposed* layer's output
        // (fc2 is transposed): cols over gy, replicated over gx.
        let expect = distribute_output(&serial_out, &grid, true);
        (out, expect)
    })
}

// ---------- tests ----------

#[test]
fn serial_block_is_causal() {
    let b = SerialBlock::new();
    let x1 = batch();
    let mut x2 = x1.clone();
    for c in 0..HIDDEN {
        x2[(SEQ - 1, c)] += 1.0; // last token of the first sequence
    }
    let y1 = b.forward(&x1);
    let y2 = b.forward(&x2);
    for t in 0..SEQ - 1 {
        for c in 0..HIDDEN {
            assert!((y1[(t, c)] - y2[(t, c)]).abs() < 1e-6, "future leak at {t}");
        }
    }
}

#[test]
fn forward_matches_serial_on_trivial_grid() {
    for (out, expect) in parallel_forward(1, 1, 1, 1) {
        assert!(
            out.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    }
}

#[test]
fn forward_matches_serial_on_x_split() {
    // Heads split across X (2 heads per rank).
    for (out, expect) in parallel_forward(2, 1, 1, 1) {
        assert!(
            out.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    }
}

#[test]
fn forward_matches_serial_on_y_split() {
    for (out, expect) in parallel_forward(1, 2, 1, 1) {
        assert!(
            out.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    }
}

#[test]
fn forward_matches_serial_on_z_split() {
    for (out, expect) in parallel_forward(1, 1, 2, 1) {
        assert!(
            out.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    }
}

#[test]
fn forward_matches_serial_on_data_split() {
    for (out, expect) in parallel_forward(1, 1, 1, 2) {
        assert!(
            out.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    }
}

#[test]
fn forward_matches_serial_on_full_4d_grid() {
    for (out, expect) in parallel_forward(2, 2, 2, 2) {
        assert!(
            out.approx_eq(&expect, 1e-4),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    }
}

#[test]
fn backward_gradients_match_finite_differences() {
    // End-to-end gradient check of the parallel block on a 2x2x1x1 grid:
    // loss = weighted sum of outputs; compare dŴ for a probe weight
    // against central differences of the serial block.
    let wts: Vec<f32> = (0..4 * SEQ * HIDDEN)
        .map(|i| ((i * 37 % 19) as f32 - 9.0) / 9.0)
        .collect();

    // Serial loss as a function of one perturbed qkv weight element.
    let loss_with_qkv_delta = |delta: f32| -> f32 {
        let mut b = SerialBlock::new();
        b.qkv[(1, 2)] += delta;
        let out = b.forward(&batch());
        out.as_slice().iter().zip(&wts).map(|(a, w)| a * w).sum()
    };

    // Parallel gradient for the same element.
    let wts2 = wts.clone();
    let grads = run_spmd(4, move |comm| {
        let grid = GridTopology::new(2, 2, 1, 1, comm.rank());
        let mut block = ParallelTransformerBlock::new(&grid, HIDDEN, HEADS, SEQ, SEED, 0);
        let mut tuner = KernelTuner::new(false);
        let x_local = distribute_input(&batch(), &grid, false);
        let out = block.forward(&comm, &grid, &x_local);
        // Local slice of the global dL/dout.
        let full_d = Matrix::from_vec(4 * SEQ, HIDDEN, wts2.clone());
        let d_local = distribute_output(&full_d, &grid, true);
        let _ = out;
        let (_, pending) =
            block.backward(&comm, &grid, &d_local, OverlapConfig::default(), &mut tuner);
        assert!(pending.is_empty());
        // Reassemble the full qkv gradient.
        block.qkv.grad_shard().clone()
    });
    // Locate element (1, 2) of the global qkv weight: with gy=2 row
    // blocks of 8 and gx=2 col blocks of 24, (1,2) sits in row-block 0,
    // col-block 0 (head-major layout is only a column *interpretation*).
    // That block belongs to ranks with y=0, x=0 → rank 0 (gz=1).
    let g = &grads[0];
    let analytic = g[(1, 2)];
    let h = 1e-2;
    let fd = (loss_with_qkv_delta(h) - loss_with_qkv_delta(-h)) / (2.0 * h);
    assert!(
        (analytic - fd).abs() < 5e-2 * (1.0 + fd.abs()),
        "analytic {analytic} vs fd {fd}"
    );
}

#[test]
fn training_reduces_loss_on_all_grids() {
    // A few SGD steps on sum-of-squares toward a fixed target must reduce
    // the loss identically across grids.
    let target = Matrix::random(4 * SEQ, HIDDEN, 0.5, 901);
    let mut reference: Option<Vec<f32>> = None;
    for (gx, gy, gz, gd) in [(1, 1, 1, 1), (2, 2, 1, 1), (2, 1, 2, 1), (1, 2, 1, 2)] {
        let t2 = target.clone();
        let losses = run_spmd(gx * gy * gz * gd, move |comm| {
            let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
            let mut block = ParallelTransformerBlock::new(&grid, HIDDEN, HEADS, SEQ, SEED, 0);
            let mut tuner = KernelTuner::new(false);
            let world = axonn_collectives::ProcessGroup::new((0..grid.total_ranks()).collect());
            let mut out_losses = Vec::new();
            for _ in 0..3 {
                let x_local = distribute_input(&batch(), &grid, false);
                let out = block.forward(&comm, &grid, &x_local);
                let t_local = distribute_output(&t2, &grid, true);
                let mut d = out;
                d.sub_assign(&t_local);
                let local: f32 = d.as_slice().iter().map(|v| 0.5 * v * v).sum();
                let mut buf = vec![local];
                comm.all_reduce(&world, &mut buf);
                out_losses.push(buf[0] / grid.row_parts(true) as f32);
                let (_, pending) =
                    block.backward(&comm, &grid, &d, OverlapConfig::all(), &mut tuner);
                for p in pending {
                    let (id, grad) = p.wait();
                    // Map back: qkv=0, proj=1, fc1=2, fc2=3.
                    let layers = block.fc_layers_mut();
                    let idx = layers.iter().position(|l| l.layer_id == id).unwrap();
                    layers[idx].accumulate_grad(grad);
                }
                // Data-parallel sync.
                let dg = grid.data_group().clone();
                let mut grads: Vec<&mut Matrix> = Vec::new();
                let layers = block.fc_layers_mut();
                for l in layers {
                    grads.push(l.grad_shard_mut());
                }
                axonn_core::dataparallel::sync_gradients(&comm, &dg, &mut grads);
                block.sync_norm_grads(&comm, &grid);
                block.apply_sgd(0.005);
            }
            out_losses
        });
        let l0 = &losses[0];
        assert!(
            l0.last().unwrap() < &l0[0],
            "grid {gx}x{gy}x{gz}x{gd}: loss did not decrease: {l0:?}"
        );
        match &reference {
            None => reference = Some(l0.clone()),
            Some(r) => {
                for (a, b) in r.iter().zip(l0) {
                    assert!(
                        ((a - b) / a).abs() < 2e-3,
                        "grid {gx}x{gy}x{gz}x{gd}: losses diverged: {a} vs {b}"
                    );
                }
            }
        }
    }
}
