//! Property tests for the 4D engine: random legal grids and layer sizes
//! must always reproduce the serial reference, and the grid topology
//! invariants must hold for arbitrary shapes.

use axonn_core::{Activation, GridTopology, Network4d, OverlapConfig, SerialMlp};
use axonn_exec::run_spmd;
use axonn_tensor::Matrix;
use proptest::prelude::*;

/// A random legal (grid, dims) pair: dimensions are multiples of what the
/// grid requires, grids stay small enough for threads.
fn legal_case() -> impl Strategy<Value = ((usize, usize, usize, usize), Vec<usize>, u64)> {
    let grid = prop_oneof![
        Just((1usize, 1usize, 1usize, 1usize)),
        Just((2, 1, 1, 1)),
        Just((1, 2, 1, 1)),
        Just((1, 1, 2, 1)),
        Just((1, 1, 1, 2)),
        Just((2, 2, 1, 1)),
        Just((2, 1, 2, 1)),
        Just((1, 2, 2, 1)),
        Just((2, 1, 1, 2)),
        Just((1, 1, 2, 2)),
        Just((2, 2, 2, 1)),
    ];
    (grid, 1usize..4, 1usize..5, 0u64..500).prop_map(|(g, n_layers, width_mult, seed)| {
        let (gx, gy, gz, _gd) = g;
        // Every feature dim must divide by max(gx,gy)*gz; batch by gz*gd.
        let unit = gx.max(gy) * gz * 2;
        let dims: Vec<usize> = (0..=n_layers)
            .map(|i| unit * (width_mult + i % 2))
            .collect();
        (g, dims, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_grids_match_serial(case in legal_case()) {
        let ((gx, gy, gz, gd), dims, seed) = case;
        let batch_rows = gz * gd * 4;
        let x = Matrix::random(batch_rows, dims[0], 1.0, seed + 10_000);
        let t = Matrix::random(batch_rows, *dims.last().unwrap(), 1.0, seed + 10_001);

        let mut serial = SerialMlp::new(&dims, Activation::Gelu, seed);
        let s_losses: Vec<f32> = (0..3).map(|_| serial.train_step(&x, &t, 0.01)).collect();

        let dims2 = dims.clone();
        let x2 = x.clone();
        let t2 = t.clone();
        let out = run_spmd(gx * gy * gz * gd, move |comm| {
            let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
            let mut net = Network4d::new(
                comm,
                grid,
                &dims2,
                Activation::Gelu,
                seed,
                OverlapConfig::all(),
                false,
            );
            (0..3).map(|_| net.train_step(&x2, &t2, 0.01)).collect::<Vec<f32>>()
        });
        for (s, p) in s_losses.iter().zip(&out[0]) {
            let rel = (s - p).abs() / s.abs().max(1e-3);
            prop_assert!(
                rel < 5e-3,
                "grid {gx}x{gy}x{gz}x{gd} dims {dims:?}: serial {s} vs parallel {p}"
            );
        }
    }

    #[test]
    fn topology_groups_partition_and_intersect_correctly(
        gx in 1usize..4, gy in 1usize..4, gz in 1usize..4, gd in 1usize..3
    ) {
        let total = gx * gy * gz * gd;
        for rank in 0..total {
            let t = GridTopology::new(gx, gy, gz, gd, rank);
            // Sizes.
            prop_assert_eq!(t.x_group().size(), gx);
            prop_assert_eq!(t.y_group().size(), gy);
            prop_assert_eq!(t.z_group().size(), gz);
            prop_assert_eq!(t.data_group().size(), gd);
            // Any two of this rank's groups intersect exactly in itself.
            let groups = [t.x_group(), t.y_group(), t.z_group(), t.data_group()];
            for (i, a) in groups.iter().enumerate() {
                for b in groups.iter().skip(i + 1) {
                    let common: Vec<usize> = a
                        .ranks()
                        .iter()
                        .filter(|r| b.contains(**r))
                        .copied()
                        .collect();
                    prop_assert_eq!(&common, &vec![rank]);
                }
            }
            // Coordinates recompose the rank.
            let (x, y, z, d) = t.coords;
            prop_assert_eq!(x + gx * (y + gy * (z + gz * d)), rank);
        }
    }
}
