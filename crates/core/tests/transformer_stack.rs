//! End-to-end parallel GPT (embedding → blocks → head → vocab-parallel
//! cross-entropy) against a serial reference with identical seeds.

use axonn_collectives::ProcessGroup;
use axonn_core::{
    block_weight, vocab_parallel_cross_entropy, GridTopology, OverlapConfig, TransformerStack,
};
use axonn_exec::run_spmd;
use axonn_tensor::{gemm, MatMode, Matrix};

const VOCAB: usize = 16;
const HIDDEN: usize = 16;
const HEADS: usize = 4;
const SEQ: usize = 4;
const LAYERS: usize = 2;
const SEED: u64 = 314;

fn global_batch() -> (Vec<usize>, Vec<usize>) {
    // 4 sequences of SEQ tokens; next-token targets.
    let tokens: Vec<usize> = (0..4 * SEQ).map(|i| (i * 7 + 3) % VOCAB).collect();
    let targets: Vec<usize> = (0..4 * SEQ).map(|i| (i * 5 + 1) % VOCAB).collect();
    (tokens, targets)
}

// --- serial reference (mirrors the parallel construction seed-for-seed) ---

mod serial {
    use super::*;

    pub fn layernorm(x: &Matrix) -> Matrix {
        let (rows, h) = x.shape();
        let mut out = Matrix::zeros(rows, h);
        for r in 0..rows {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / h as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / h as f32;
            let inv = 1.0 / (var + 1e-5).sqrt();
            for c in 0..h {
                out[(r, c)] = (row[c] - mean) * inv;
            }
        }
        out
    }

    pub fn gelu(x: f32) -> f32 {
        0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044715 * x * x * x)).tanh())
    }

    pub fn attention(qkv: &Matrix) -> Matrix {
        let (rows, width) = qkv.shape();
        let hd = width / (3 * HEADS);
        let b = rows / SEQ;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut out = Matrix::zeros(rows, HEADS * hd);
        for s in 0..b {
            for head in 0..HEADS {
                let off = head * 3 * hd;
                let mut q = Matrix::zeros(SEQ, hd);
                let mut k = Matrix::zeros(SEQ, hd);
                let mut v = Matrix::zeros(SEQ, hd);
                for t in 0..SEQ {
                    let row = qkv.row(s * SEQ + t);
                    q.row_mut(t).copy_from_slice(&row[off..off + hd]);
                    k.row_mut(t).copy_from_slice(&row[off + hd..off + 2 * hd]);
                    v.row_mut(t)
                        .copy_from_slice(&row[off + 2 * hd..off + 3 * hd]);
                }
                let mut scores = gemm(MatMode::NT, &q, &k);
                scores.scale(scale);
                let mut p = Matrix::zeros(SEQ, SEQ);
                for i in 0..SEQ {
                    let srow = scores.row(i);
                    let maxv = srow[..=i].iter().cloned().fold(f32::MIN, f32::max);
                    let denom: f32 = srow[..=i].iter().map(|&x| (x - maxv).exp()).sum();
                    for j in 0..=i {
                        p[(i, j)] = (srow[j] - maxv).exp() / denom;
                    }
                }
                let o = gemm(MatMode::NN, &p, &v);
                for t in 0..SEQ {
                    out.row_mut(s * SEQ + t)[head * hd..(head + 1) * hd].copy_from_slice(o.row(t));
                }
            }
        }
        out
    }

    /// Serial forward pass producing the logits and the mean CE loss.
    pub fn forward_loss(tokens: &[usize], targets: &[usize]) -> f32 {
        let emb_table = block_weight(VOCAB, HIDDEN, SEED, 90);
        let mut x = Matrix::zeros(tokens.len(), HIDDEN);
        for (i, &t) in tokens.iter().enumerate() {
            x.row_mut(i).copy_from_slice(emb_table.row(t));
        }
        for layer in 0..LAYERS {
            let s = SEED.wrapping_add(1 + layer as u64);
            let qkv_w = block_weight(HIDDEN, 3 * HIDDEN, s, 1);
            let proj_w = block_weight(HIDDEN, HIDDEN, s, 2);
            let fc1_w = block_weight(HIDDEN, 4 * HIDDEN, s, 3);
            let fc2_w = block_weight(4 * HIDDEN, HIDDEN, s, 4);
            let n1 = layernorm(&x);
            let qkv = gemm(MatMode::NN, &n1, &qkv_w);
            let attn = attention(&qkv);
            let mut h = gemm(MatMode::NN, &attn, &proj_w);
            h.add_assign(&x);
            let n2 = layernorm(&h);
            let mut a = gemm(MatMode::NN, &n2, &fc1_w);
            a.map_inplace(gelu);
            let mut out = gemm(MatMode::NN, &a, &fc2_w);
            out.add_assign(&h);
            x = out;
        }
        let x = layernorm(&x);
        let head_w = block_weight(HIDDEN, VOCAB, SEED, 91);
        let logits = gemm(MatMode::NN, &x, &head_w);
        // Mean cross-entropy.
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            let row = logits.row(r);
            let m = row.iter().cloned().fold(f32::MIN, f32::max);
            let denom: f32 = row.iter().map(|&v| (v - m).exp()).sum();
            loss += -(row[t] - m - denom.ln()) / targets.len() as f32;
        }
        loss
    }
}

fn parallel_losses(gx: usize, gy: usize, gz: usize, gd: usize, steps: usize) -> Vec<f32> {
    let out = run_spmd(gx * gy * gz * gd, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut stack = TransformerStack::new(
            &grid,
            VOCAB,
            HIDDEN,
            HEADS,
            LAYERS,
            SEQ,
            SEED,
            OverlapConfig::all(),
        );
        let (tokens, targets) = global_batch();
        (0..steps)
            .map(|_| stack.train_step(&comm, &grid, &tokens, &targets, 0.01))
            .collect::<Vec<f32>>()
    });
    // Every rank must report the same losses.
    for r in &out[1..] {
        for (a, b) in out[0].iter().zip(r) {
            assert!((a - b).abs() < 1e-4, "ranks disagree: {a} vs {b}");
        }
    }
    out.into_iter().next().unwrap()
}

#[test]
fn first_loss_matches_serial_reference_on_all_grids() {
    let (tokens, targets) = global_batch();
    let serial = serial::forward_loss(&tokens, &targets);
    for (gx, gy, gz, gd) in [
        (1, 1, 1, 1),
        (2, 1, 1, 1),
        (1, 2, 1, 1),
        (1, 1, 2, 1),
        (1, 1, 1, 2),
        (2, 2, 1, 1),
        (2, 2, 2, 1),
        (2, 1, 2, 2),
    ] {
        let p = parallel_losses(gx, gy, gz, gd, 1)[0];
        let rel = ((p - serial) / serial).abs();
        assert!(
            rel < 2e-3,
            "grid {gx}x{gy}x{gz}x{gd}: serial {serial} vs parallel {p}"
        );
    }
}

#[test]
fn training_trajectories_agree_across_grids() {
    let reference = parallel_losses(1, 1, 1, 1, 4);
    assert!(
        reference.last().unwrap() < &reference[0],
        "loss should decrease: {reference:?}"
    );
    for (gx, gy, gz, gd) in [(2, 1, 1, 1), (1, 1, 2, 1), (2, 2, 1, 1), (1, 2, 1, 2)] {
        let losses = parallel_losses(gx, gy, gz, gd, 4);
        for (a, b) in reference.iter().zip(&losses) {
            let rel = ((a - b) / a).abs();
            assert!(rel < 5e-3, "grid {gx}x{gy}x{gz}x{gd} diverged: {a} vs {b}");
        }
    }
}

#[test]
fn vocab_parallel_ce_matches_direct_computation() {
    // 2-way vocab split: reconstructed loss/gradient equals a direct
    // full-vocab computation.
    let rows = 3;
    let full = Matrix::random(rows, VOCAB, 2.0, 9);
    let targets = [1usize, 9, 14];
    // Direct.
    let mut direct_loss = 0.0;
    for (r, &t) in targets.iter().enumerate() {
        let row = full.row(r);
        let m = row.iter().cloned().fold(f32::MIN, f32::max);
        let denom: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        direct_loss += -(row[t] - m - denom.ln()) / rows as f32;
    }
    // Parallel over 2 ranks.
    let full2 = full.clone();
    let out = run_spmd(2, move |comm| {
        let g = ProcessGroup::new(vec![0, 1]);
        let half = VOCAB / 2;
        let me = comm.rank();
        let local = Matrix::from_fn(rows, half, |r, c| full2[(r, me * half + c)]);
        let ce = vocab_parallel_cross_entropy(&comm, &g, me, &local, &targets, rows);
        (ce.loss, ce.d_logits_local)
    });
    for (loss, _) in &out {
        assert!((loss - direct_loss).abs() < 1e-4, "{loss} vs {direct_loss}");
    }
    // Gradient slices reassemble to softmax - onehot, scaled by 1/rows.
    for (r, &t) in targets.iter().enumerate() {
        let row = full.row(r);
        let m = row.iter().cloned().fold(f32::MIN, f32::max);
        let denom: f32 = row.iter().map(|&v| (v - m).exp()).sum();
        for (c, &logit) in row.iter().enumerate().take(VOCAB) {
            let p = (logit - m).exp() / denom;
            let expect = (p - if c == t { 1.0 } else { 0.0 }) / rows as f32;
            let half = VOCAB / 2;
            let got = if c < half {
                out[0].1[(r, c)]
            } else {
                out[1].1[(r, c - half)]
            };
            assert!((got - expect).abs() < 1e-5, "({r},{c}): {got} vs {expect}");
        }
    }
}
