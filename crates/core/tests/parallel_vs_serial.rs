//! The correctness core of the reproduction: for every legal 4D grid, the
//! parallel network must reproduce the serial reference — same losses,
//! same final weights — and the overlap optimizations must change timing
//! only, never numerics.

use axonn_core::{Activation, GridTopology, Network4d, OverlapConfig, SerialMlp};
use axonn_exec::run_spmd;
use axonn_tensor::Matrix;

const DIMS: [usize; 4] = [16, 32, 16, 16];
const SEED: u64 = 42;
const BATCH: usize = 16;
const LR: f32 = 0.01;
const STEPS: usize = 5;

fn global_batch() -> (Matrix, Matrix) {
    let x = Matrix::random(BATCH, DIMS[0], 1.0, 1000);
    let t = Matrix::random(BATCH, DIMS[DIMS.len() - 1], 1.0, 1001);
    (x, t)
}

fn serial_run() -> (Vec<f32>, Vec<Matrix>) {
    let (x, t) = global_batch();
    let mut net = SerialMlp::new(&DIMS, Activation::Gelu, SEED);
    let losses = (0..STEPS).map(|_| net.train_step(&x, &t, LR)).collect();
    (losses, net.weights)
}

fn parallel_run(
    gx: usize,
    gy: usize,
    gz: usize,
    gd: usize,
    overlap: OverlapConfig,
    tuning: bool,
) -> (Vec<f32>, Vec<Matrix>) {
    let world = gx * gy * gz * gd;
    let mut results = run_spmd(world, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let mut net = Network4d::new(comm, grid, &DIMS, Activation::Gelu, SEED, overlap, tuning);
        let (x, t) = global_batch();
        let losses: Vec<f32> = (0..STEPS).map(|_| net.train_step(&x, &t, LR)).collect();
        let weights = net.gather_full_weights();
        (losses, weights)
    });
    // All ranks must agree on the gathered weights.
    let (losses0, weights0) = results.remove(0);
    for (losses, weights) in &results {
        assert_eq!(losses, &losses0, "ranks disagree on losses");
        for (a, b) in weights.iter().zip(&weights0) {
            assert!(a.approx_eq(b, 1e-6), "ranks disagree on gathered weights");
        }
    }
    (losses0, weights0)
}

fn assert_matches_serial(gx: usize, gy: usize, gz: usize, gd: usize) {
    let (s_losses, s_weights) = serial_run();
    let (p_losses, p_weights) = parallel_run(gx, gy, gz, gd, OverlapConfig::default(), false);
    for (i, (s, p)) in s_losses.iter().zip(&p_losses).enumerate() {
        let rel = (s - p).abs() / s.max(1e-6);
        assert!(
            rel < 2e-3,
            "grid {gx}x{gy}x{gz}x{gd} step {i}: serial loss {s} vs parallel {p}"
        );
    }
    for (i, (s, p)) in s_weights.iter().zip(&p_weights).enumerate() {
        assert!(
            s.approx_eq(p, 2e-3),
            "grid {gx}x{gy}x{gz}x{gd} layer {i}: weights diverged (max diff {})",
            s.max_abs_diff(p)
        );
    }
}

#[test]
fn trivial_grid_matches_serial() {
    assert_matches_serial(1, 1, 1, 1);
}

#[test]
fn x_only_matches_serial_megatron_reduction() {
    // G_x-only + the transpose scheme is exactly Megatron-style 1D TP.
    assert_matches_serial(2, 1, 1, 1);
    assert_matches_serial(4, 1, 1, 1);
}

#[test]
fn y_only_matches_serial() {
    assert_matches_serial(1, 2, 1, 1);
    assert_matches_serial(1, 4, 1, 1);
}

#[test]
fn z_only_matches_serial_fsdp_reduction() {
    // G_z-only is exactly FSDP/ZeRO-3: weights fully sharded, gathered
    // on demand, gradients reduce-scattered.
    assert_matches_serial(1, 1, 2, 1);
    assert_matches_serial(1, 1, 4, 1);
}

#[test]
fn data_only_matches_serial() {
    assert_matches_serial(1, 1, 1, 2);
    assert_matches_serial(1, 1, 1, 4);
}

#[test]
fn hybrid_z_data_matches_serial_hsdp_reduction() {
    // Z + data together is hybrid sharded data parallelism (ZeRO++).
    assert_matches_serial(1, 1, 2, 2);
}

#[test]
fn full_4d_grid_matches_serial() {
    assert_matches_serial(2, 2, 2, 2);
}

#[test]
fn asymmetric_grids_match_serial() {
    assert_matches_serial(4, 2, 1, 1);
    assert_matches_serial(2, 1, 4, 1);
    assert_matches_serial(1, 2, 2, 2);
}

#[test]
fn overlap_changes_nothing_numerically() {
    // Same ring algorithms in the same order: async vs blocking must be
    // bit-identical.
    let base = parallel_run(2, 2, 2, 1, OverlapConfig::default(), false);
    let all = parallel_run(2, 2, 2, 1, OverlapConfig::all(), false);
    assert_eq!(base.0, all.0, "losses differ under overlap");
    for (a, b) in base.1.iter().zip(&all.1) {
        assert_eq!(a, b, "weights differ under overlap");
    }
}

#[test]
fn kernel_tuning_changes_nothing_numerically_beyond_rounding() {
    let base = parallel_run(2, 2, 1, 1, OverlapConfig::all(), false);
    let tuned = parallel_run(2, 2, 1, 1, OverlapConfig::all(), true);
    for (a, b) in base.0.iter().zip(&tuned.0) {
        let rel = (a - b).abs() / a.max(1e-6);
        assert!(rel < 1e-3, "tuned loss {b} vs untuned {a}");
    }
    for (a, b) in base.1.iter().zip(&tuned.1) {
        assert!(a.approx_eq(b, 1e-3), "tuned weights diverged");
    }
}

#[test]
fn parallel_training_is_deterministic() {
    let a = parallel_run(2, 2, 1, 1, OverlapConfig::all(), false);
    let b = parallel_run(2, 2, 1, 1, OverlapConfig::all(), false);
    assert_eq!(a.0, b.0);
    for (wa, wb) in a.1.iter().zip(&b.1) {
        assert_eq!(wa, wb);
    }
}
