//! The bucketed + ZeRO-1-sharded gradient pipeline must be **bitwise**
//! identical to the seed's per-tensor path — for every data-parallel
//! width, every bucket geometry (boundaries splitting a tensor, a final
//! partial bucket), and uneven tensor sizes. This holds because both
//! modes fold the data-group sums in canonical group order and apply the
//! same `p += (-lr)·g` update expression; the property test here is the
//! contract that keeps the oracle meaningful.

use axonn_core::{
    Activation, GradSyncMode, GridTopology, NetConfig, Network4d, OverlapConfig, TransformerStack,
};
use axonn_exec::run_spmd;
use axonn_tensor::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random batch.
fn batch(rows: usize, cols: usize, salt: u64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(salt);
            ((x >> 33) % 1000) as f32 / 500.0 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Train `steps` steps of the MLP on a (gx, gy, gz, gd) grid under the
/// given sync mode; return every rank's (weight-bits, loss-bits).
fn run_mlp(
    grid_dims: (usize, usize, usize, usize),
    dims: Vec<usize>,
    mode: GradSyncMode,
    bucket_elems: usize,
    steps: usize,
) -> Vec<(Vec<Vec<u32>>, Vec<u32>)> {
    let (gx, gy, gz, gd) = grid_dims;
    let world = gx * gy * gz * gd;
    let rows = 4 * gd * gz;
    run_spmd(world, move |comm| {
        let grid = GridTopology::new(gx, gy, gz, gd, comm.rank());
        let cfg = NetConfig {
            overlap: OverlapConfig::all(),
            grad_sync: mode,
            grad_bucket_elems: bucket_elems,
            ..NetConfig::default()
        };
        let mut net = Network4d::with_config(comm, grid, &dims, Activation::Relu, 7, cfg);
        let mut losses = Vec::new();
        for s in 0..steps {
            let x = batch(rows, dims[0], 11 + s as u64);
            let t = batch(rows, *dims.last().unwrap(), 23 + s as u64);
            losses.push(net.train_step(&x, &t, 0.01).to_bits());
        }
        let weights: Vec<Vec<u32>> = net
            .weight_shards()
            .iter()
            .map(|w| w.as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        (weights, losses)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// G_data ∈ {1, 2, 4} × uneven layer sizes × bucket capacities small
    /// enough that buckets split tensors mid-way and the last bucket is
    /// partial: weights and losses match the oracle bit for bit.
    #[test]
    fn bucketed_sync_matches_per_tensor_oracle_bitwise(
        gd_pow in 0usize..3,
        hidden in 3usize..14,
        bucket_elems in 3usize..96,
    ) {
        let gd = 1usize << gd_pow;
        // Uneven dims: tensor sizes 5*h, h*7, 7*3 — none a multiple of
        // the other, so bucket boundaries land mid-tensor.
        let dims = vec![5, hidden, 7, 3];
        let bucketed = run_mlp((1, 1, 1, gd), dims.clone(), GradSyncMode::Bucketed, bucket_elems, 3);
        let oracle = run_mlp((1, 1, 1, gd), dims, GradSyncMode::PerTensor, bucket_elems, 3);
        prop_assert_eq!(bucketed, oracle);
    }
}

/// The same contract on a grid that exercises the intra-layer dimensions
/// too (Z reduce-scatters feeding the buckets, uneven shard sizes).
#[test]
fn bucketed_matches_oracle_on_mixed_grids() {
    for (grid, dims, bucket) in [
        ((1, 1, 2, 2), vec![8, 12, 8], 10),
        ((2, 1, 1, 2), vec![8, 8, 8, 8], 7),
        ((1, 2, 2, 1), vec![8, 8, 8], 5),
    ] {
        let bucketed = run_mlp(grid, dims.clone(), GradSyncMode::Bucketed, bucket, 2);
        let oracle = run_mlp(grid, dims.clone(), GradSyncMode::PerTensor, bucket, 2);
        assert_eq!(bucketed, oracle, "grid {grid:?} dims {dims:?}");
    }
}

/// Full-stack contract: the GPT's mixed buckets (FC shards, LayerNorm
/// gains/biases, the embedding table) reduce and update bit-identically
/// to the per-tensor path.
#[test]
fn transformer_stack_bucketed_matches_oracle_bitwise() {
    let run = |mode: GradSyncMode, bucket_elems: usize| {
        run_spmd(4, move |comm| {
            let grid = GridTopology::new(1, 2, 1, 2, comm.rank());
            let mut stack = TransformerStack::new(&grid, 8, 8, 2, 2, 4, 3, OverlapConfig::all());
            stack.set_grad_sync(mode);
            stack.set_grad_bucket_elems(bucket_elems);
            let tokens: Vec<usize> = (0..16).map(|i| (i * 5 + 1) % 8).collect();
            let targets: Vec<usize> = (0..16).map(|i| (i * 3 + 2) % 8).collect();
            let mut losses = Vec::new();
            for _ in 0..2 {
                losses.push(
                    stack
                        .train_step(&comm, &grid, &tokens, &targets, 0.05)
                        .to_bits(),
                );
            }
            let mut bits: Vec<Vec<u32>> = Vec::new();
            let grab = |m: &Matrix| {
                m.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u32>>()
            };
            bits.push(grab(&stack.emb.table));
            for b in &stack.blocks {
                bits.push(grab(b.qkv.weight_shard()));
                bits.push(grab(b.proj.weight_shard()));
                bits.push(grab(b.fc1.weight_shard()));
                bits.push(grab(b.fc2.weight_shard()));
                bits.push(grab(&b.ln1.gain));
                bits.push(grab(&b.ln1.bias));
                bits.push(grab(&b.ln2.gain));
                bits.push(grab(&b.ln2.bias));
            }
            bits.push(grab(&stack.final_ln.gain));
            bits.push(grab(&stack.final_ln.bias));
            bits.push(grab(stack.head.weight_shard()));
            (bits, losses)
        })
    };
    for bucket_elems in [6usize, 17, 4096] {
        assert_eq!(
            run(GradSyncMode::Bucketed, bucket_elems),
            run(GradSyncMode::PerTensor, bucket_elems),
            "bucket_elems {bucket_elems}"
        );
    }
}
