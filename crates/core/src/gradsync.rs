//! Overlapped bucketed gradient synchronisation with a ZeRO-1 sharded
//! optimizer step — the data-parallel tail of every training step.
//!
//! The seed engine ended backward serially: wait every deferred Z
//! reduce-scatter, then one giant *blocking* data-parallel all-reduce,
//! then a replicated SGD update on every rank. This module replaces that
//! tail with a pipeline in the spirit of the asynchronous AxoNN
//! framework (arXiv:2110.13005) and the optimizer-state sharding the
//! 4D-hybrid paper (arXiv:2305.13525) adopts:
//!
//! 1. gradients are fed in reverse-backward order into fixed-size
//!    **buckets**; a full bucket immediately issues a non-blocking
//!    data-parallel reduce-scatter, overlapping with the remaining ORS
//!    waits and with earlier buckets' traffic;
//! 2. each data-parallel rank updates only its `1/G_data` slice of each
//!    bucket (`p += (-lr)·g`, the exact expression of `Matrix::axpy`),
//!    eliminating the replicated optimizer work;
//! 3. updated slices return via non-blocking all-gather while later
//!    buckets are still reducing.
//!
//! Bit-identity with the per-tensor oracle ([`GradSyncMode::PerTensor`])
//! holds for *any* bucket geometry because the data-group reduction uses
//! the canonical-order reduce-scatter (`Comm::reduce_scatter_linear` /
//! its async twin): every element is summed in fixed group-position
//! order, independent of where a tensor lands inside a bucket. The
//! oracle's data-group reductions use the same canonical order, so the
//! two modes produce identical weights and the oracle stays a bitwise
//! regression check for the pipeline.

use axonn_collectives::{AsyncHandle, AsyncOp, Comm, ProcessGroup};
use std::ops::Range;

/// How the data-parallel gradient phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradSyncMode {
    /// Bucketed non-blocking reduce-scatter + sharded update +
    /// non-blocking all-gather (the production path).
    #[default]
    Bucketed,
    /// The seed's serial per-tensor path: blocking canonical-order
    /// all-reduce per flat gradient bucket, replicated SGD on every
    /// rank. Kept as the bit-identity oracle for the pipeline.
    PerTensor,
}

/// Default bucket capacity in elements (128 KiB of f32) — small enough
/// that several buckets are in flight for the bench shapes, large enough
/// that per-collective latency amortises.
pub const DEFAULT_BUCKET_ELEMS: usize = 32 * 1024;

/// Uniform mutable view over a model's heterogeneous parameter tensors,
/// addressed by the same tensor ids the gradients were
/// [`push`](GradSyncPipeline::push)ed under.
pub trait ParamStore {
    /// Copy `param[range]` of `tensor` into `dst` (`dst.len() == range.len()`).
    fn read(&self, tensor: usize, range: Range<usize>, dst: &mut [f32]);
    /// Overwrite `param[range]` of `tensor` from `src`.
    fn write(&mut self, tensor: usize, range: Range<usize>, src: &[f32]);
}

/// One tensor's (partial) residence inside a bucket.
#[derive(Debug, Clone)]
struct BucketEntry {
    tensor: usize,
    tensor_off: usize,
    bucket_off: usize,
    len: usize,
}

/// A sealed bucket whose data-parallel reduce-scatter is in flight
/// (or, for a size-1 group, whose gradients simply stayed local).
struct InflightBucket {
    entries: Vec<BucketEntry>,
    /// Bucket length padded to a multiple of the group size; pad
    /// elements carry gradient 0 and are discarded on scatter-back.
    padded: usize,
    rs: Option<AsyncHandle>,
    local: Option<Vec<f32>>,
}

/// The reverse-backward-order gradient bucketizer + ZeRO-1 step.
///
/// Usage per training step: [`push`](Self::push) each tensor's fully
/// Z-reduced gradient as it resolves (reverse backward order),
/// [`flush`](Self::flush) the final partial bucket, then
/// [`step`](Self::step) to run the sharded update and scatter the
/// updated parameters back. Gradient accumulators are untouched; the
/// caller zeroes them after `step` (as `apply_sgd` used to).
pub struct GradSyncPipeline {
    comm: Comm,
    group: ProcessGroup,
    bucket_elems: usize,
    cur: Vec<f32>,
    cur_entries: Vec<BucketEntry>,
    inflight: Vec<InflightBucket>,
}

impl GradSyncPipeline {
    pub fn new(comm: Comm, group: ProcessGroup, bucket_elems: usize) -> Self {
        assert!(bucket_elems > 0, "bucket capacity must be positive");
        GradSyncPipeline {
            comm,
            group,
            bucket_elems,
            cur: Vec::new(),
            cur_entries: Vec::new(),
            inflight: Vec::new(),
        }
    }

    /// Feed one tensor's gradient into the bucketizer. A tensor larger
    /// than the remaining bucket space is split across buckets; every
    /// bucket that fills issues its non-blocking data-parallel
    /// reduce-scatter immediately.
    pub fn push(&mut self, tensor: usize, grad: &[f32]) {
        let mut off = 0;
        while off < grad.len() {
            let space = self.bucket_elems - self.cur.len();
            let take = space.min(grad.len() - off);
            self.cur_entries.push(BucketEntry {
                tensor,
                tensor_off: off,
                bucket_off: self.cur.len(),
                len: take,
            });
            self.cur.extend_from_slice(&grad[off..off + take]);
            off += take;
            if self.cur.len() == self.bucket_elems {
                self.seal();
            }
        }
    }

    /// Seal the final partial bucket (no-op when empty).
    pub fn flush(&mut self) {
        if !self.cur.is_empty() {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let g = self.group.size();
        let padded = self.cur.len().div_ceil(g) * g;
        self.cur.resize(padded, 0.0);
        let entries = std::mem::take(&mut self.cur_entries);
        let data = std::mem::take(&mut self.cur);
        let (rs, local) = if g > 1 {
            // Build the pooled payload first so its buffer id is known,
            // then annotate the schedule stream: the bucket-buffer write
            // (the bucket's last main-context mutation) must
            // happen-before the reduce-scatter's overlap window — the
            // verifier's race detector proves exactly that ordering.
            let payload = self.comm.pooled_payload(&data);
            self.comm
                .record_buf_write(payload.buffer_id(), "bucket_grads");
            // Marker consumed by axonn-verify's leak lint: every sealed
            // bucket must be followed by its linear reduce-scatter.
            self.comm.record_schedule_marker("bucket_seal");
            (
                Some(
                    self.comm
                        .start_async(&self.group, AsyncOp::ReduceScatterLinear(payload)),
                ),
                None,
            )
        } else {
            (None, Some(data))
        };
        self.inflight.push(InflightBucket {
            entries,
            padded,
            rs,
            local,
        });
    }

    /// Number of buckets sealed so far (diagnostics / tests).
    pub fn buckets(&self) -> usize {
        self.inflight.len()
    }

    /// The ZeRO-1 sharded step. For each bucket, in issue order: wait
    /// its reduce-scatter, update this rank's `1/G_data` parameter slice
    /// with `p += (-lr)·g`, and issue the non-blocking all-gather of the
    /// updated slice — later buckets' reduce-scatters keep streaming
    /// underneath. A second sweep waits each all-gather and scatters the
    /// updated bucket back to the parameter tensors.
    pub fn step(mut self, lr: f32, store: &mut impl ParamStore) {
        self.flush();
        let GradSyncPipeline {
            comm,
            group,
            inflight,
            ..
        } = self;
        let g = group.size();
        let pos = group.position_of(comm.rank());
        enum Updated {
            Gather(AsyncHandle),
            Local(Vec<f32>),
        }
        let mut waiting: Vec<(Vec<BucketEntry>, usize, Updated)> = Vec::new();
        for bucket in inflight {
            let shard = bucket.padded / g;
            let grad = match bucket.rs {
                Some(h) => h.wait(),
                None => bucket.local.expect("local bucket data"),
            };
            debug_assert_eq!(grad.len(), shard);
            // This rank's slice of the parameters, padded region zero.
            let mut upd = vec![0.0f32; shard];
            read_params(store, &bucket.entries, pos * shard, &mut upd);
            for (u, &gv) in upd.iter_mut().zip(&grad) {
                *u += -lr * gv;
            }
            let updated = if g > 1 {
                // Same annotation discipline as `seal`: the updated
                // shard's last write precedes the all-gather issue.
                let payload = comm.pooled_payload(&upd);
                comm.record_buf_write(payload.buffer_id(), "zero1_update");
                Updated::Gather(comm.start_async(&group, AsyncOp::AllGather(payload)))
            } else {
                Updated::Local(upd)
            };
            waiting.push((bucket.entries, bucket.padded, updated));
        }
        for (entries, padded, updated) in waiting {
            let full = match updated {
                Updated::Gather(h) => h.wait(),
                Updated::Local(v) => v,
            };
            debug_assert_eq!(full.len(), padded);
            for e in &entries {
                store.write(
                    e.tensor,
                    e.tensor_off..e.tensor_off + e.len,
                    &full[e.bucket_off..e.bucket_off + e.len],
                );
            }
        }
    }
}

/// Fill `dst` — covering bucket positions `[lo, lo + dst.len())` — with
/// the parameter values behind each overlapping entry. Positions outside
/// every entry (the padding tail) stay zero.
fn read_params(store: &impl ParamStore, entries: &[BucketEntry], lo: usize, dst: &mut [f32]) {
    let hi = lo + dst.len();
    for e in entries {
        let s = e.bucket_off.max(lo);
        let t = (e.bucket_off + e.len).min(hi);
        if s < t {
            let from = e.tensor_off + (s - e.bucket_off);
            store.read(e.tensor, from..from + (t - s), &mut dst[s - lo..t - lo]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_exec::run_spmd;

    /// Plain Vec-of-Vec parameter set for tests.
    struct VecStore(Vec<Vec<f32>>);

    impl ParamStore for VecStore {
        fn read(&self, tensor: usize, range: Range<usize>, dst: &mut [f32]) {
            dst.copy_from_slice(&self.0[tensor][range]);
        }
        fn write(&mut self, tensor: usize, range: Range<usize>, src: &[f32]) {
            self.0[tensor][range].copy_from_slice(src);
        }
    }

    fn tensor(rank: usize, id: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((rank * 131 + id * 17 + i * 3) % 19) as f32 - 9.0)
            .collect()
    }

    /// The oracle: canonical-order all-reduce + replicated axpy.
    fn oracle(comm: &Comm, group: &ProcessGroup, rank: usize, lens: &[usize], lr: f32) -> VecStore {
        let mut store = VecStore(lens.iter().map(|&l| vec![0.25f32; l]).collect());
        for (id, &len) in lens.iter().enumerate() {
            let mut g = tensor(rank, id, len);
            comm.all_reduce_linear(group, &mut g);
            for (p, gv) in store.0[id].iter_mut().zip(&g) {
                *p += -lr * gv;
            }
        }
        store
    }

    #[test]
    fn pipeline_matches_oracle_bitwise_across_bucket_sizes() {
        // Tensor lengths chosen so buckets split one tensor mid-way and
        // the final bucket is partial.
        let lens = [7usize, 12, 3, 9];
        for world in [1usize, 2, 4] {
            for bucket_elems in [5usize, 8, 64] {
                let lens_v = lens.to_vec();
                let out = run_spmd(world, move |c| {
                    let group = ProcessGroup::new((0..world).collect());
                    let rank = c.rank();
                    let mut store = VecStore(lens_v.iter().map(|&l| vec![0.25f32; l]).collect());
                    let mut pipe = GradSyncPipeline::new(c.clone(), group.clone(), bucket_elems);
                    for (id, &len) in lens_v.iter().enumerate() {
                        pipe.push(id, &tensor(rank, id, len));
                    }
                    pipe.step(0.1, &mut store);
                    let expect = oracle(&c, &group, rank, &lens_v, 0.1);
                    (store.0, expect.0)
                });
                for (got, expect) in out {
                    for (a, b) in got.iter().zip(&expect) {
                        let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                        let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(a_bits, b_bits, "world {world} bucket {bucket_elems}");
                    }
                }
            }
        }
    }

    #[test]
    fn bucket_count_reflects_capacity() {
        let out = run_spmd(1, |c| {
            let mut pipe = GradSyncPipeline::new(c.clone(), ProcessGroup::solo(0), 4);
            pipe.push(0, &[1.0; 10]);
            pipe.flush();
            pipe.buckets()
        });
        assert_eq!(out[0], 3, "10 elements over capacity-4 buckets");
    }
}
