//! Automated BLAS kernel tuning (Section V-C).
//!
//! The weight-gradient product `Iᵀ·dO` defaults to the TN kernel. Before
//! the blocked rewrite of `axonn-tensor` that kernel was always a
//! stride-`m` column walk; now the packed TN kernel turns the walk into
//! a transpose-pack, and the naive walk survives as a selectable tier —
//! so the tuner faces a genuine three-way decision (packed TN vs naive
//! TN vs explicit-transpose + NN), just as the paper's tuner did against
//! rocBLAS on Frontier. During the first batch the tuner times every
//! strategy for each layer's product with real wall-clock measurements —
//! exactly the paper's procedure — and locks in the fastest for the
//! remaining iterations.

use axonn_tensor::{gemm, gemm_tn_naive, MatMode, Matrix};
use std::collections::HashMap;
use std::time::Instant;

/// How to compute `Iᵀ·dO` for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwStrategy {
    /// Call the blocked TN kernel (transpose-packs `I` into the reused
    /// thread-local pack buffer).
    PackedTn,
    /// Call the naive TN kernel: the unblocked stride-`m` column walk —
    /// the "bad kernel" the paper's tuner learned to avoid.
    NaiveTn,
    /// Explicitly transpose `I` into a fresh matrix, then call the NN
    /// kernel — the rewrite that gave the paper its ~8× matmul speedup
    /// on GPT-320B.
    TransposeNn,
}

impl DwStrategy {
    /// The trace-facing mode label for the dW GEMM under this strategy.
    pub fn mode_label(self) -> &'static str {
        match self {
            DwStrategy::PackedTn => "TN",
            DwStrategy::NaiveTn => "TN(naive)",
            DwStrategy::TransposeNn => "TN->NN",
        }
    }
}

/// One tuning measurement: what was timed and what won. Drained by the
/// instrumentation right after the call that locked the choice in, so
/// the decision lands in the trace at the point it was made.
#[derive(Debug, Clone, Copy)]
pub struct TuningOutcome {
    pub layer_id: usize,
    pub strategy: DwStrategy,
    /// Measured wall time of the blocked (packed) TN kernel (seconds).
    pub direct_seconds: f64,
    /// Measured wall time of the naive column-strided TN kernel.
    pub naive_seconds: f64,
    /// Measured wall time of the transpose + NN reroute (seconds).
    pub reroute_seconds: f64,
}

/// Per-layer kernel choices, learned on the first batch.
#[derive(Debug)]
pub struct KernelTuner {
    enabled: bool,
    choices: HashMap<usize, DwStrategy>,
    last_outcome: Option<TuningOutcome>,
}

impl KernelTuner {
    pub fn new(enabled: bool) -> Self {
        KernelTuner {
            enabled,
            choices: HashMap::new(),
            last_outcome: None,
        }
    }

    /// The measurement recorded by the most recent tuning decision, if
    /// one was made since the last call. Consuming it keeps one trace
    /// event per decision.
    pub fn take_last_outcome(&mut self) -> Option<TuningOutcome> {
        self.last_outcome.take()
    }

    /// The strategy locked in for `layer_id`, if tuned already.
    pub fn choice(&self, layer_id: usize) -> Option<DwStrategy> {
        self.choices.get(&layer_id).copied()
    }

    /// Compute `Iᵀ·dO`. Untuned mode always calls the blocked TN kernel
    /// (the framework default). With tuning enabled, the first call for
    /// each layer times all three strategies and records the winner.
    pub fn dw_gemm(&mut self, layer_id: usize, i_local: &Matrix, d_o: &Matrix) -> Matrix {
        if !self.enabled {
            return gemm(MatMode::TN, i_local, d_o);
        }
        match self.choices.get(&layer_id) {
            Some(DwStrategy::PackedTn) => gemm(MatMode::TN, i_local, d_o),
            Some(DwStrategy::NaiveTn) => gemm_tn_naive(i_local, d_o),
            Some(DwStrategy::TransposeNn) => {
                let it = i_local.transposed();
                gemm(MatMode::NN, &it, d_o)
            }
            None => {
                let t0 = Instant::now();
                let packed = gemm(MatMode::TN, i_local, d_o);
                let t_packed = t0.elapsed();

                let t1 = Instant::now();
                let naive = gemm_tn_naive(i_local, d_o);
                let t_naive = t1.elapsed();

                let t2 = Instant::now();
                let it = i_local.transposed();
                let rerouted = gemm(MatMode::NN, &it, d_o);
                let t_reroute = t2.elapsed();

                // All three tiers are bitwise identical to the reference
                // oracle, so the candidates must agree exactly.
                debug_assert!(
                    packed == naive && packed == rerouted,
                    "tuning strategies disagree numerically"
                );
                let mut strategy = DwStrategy::PackedTn;
                let mut best = t_packed;
                if t_naive < best {
                    strategy = DwStrategy::NaiveTn;
                    best = t_naive;
                }
                if t_reroute < best {
                    strategy = DwStrategy::TransposeNn;
                }
                self.choices.insert(layer_id, strategy);
                self.last_outcome = Some(TuningOutcome {
                    layer_id,
                    strategy,
                    direct_seconds: t_packed.as_secs_f64(),
                    naive_seconds: t_naive.as_secs_f64(),
                    reroute_seconds: t_reroute.as_secs_f64(),
                });
                // All candidates are bitwise equal; return any.
                match strategy {
                    DwStrategy::PackedTn => packed,
                    DwStrategy::NaiveTn => naive,
                    DwStrategy::TransposeNn => rerouted,
                }
            }
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn tuned_layers(&self) -> usize {
        self.choices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_tensor::gemm_reference;

    #[test]
    fn disabled_tuner_uses_tn_and_records_nothing() {
        let mut t = KernelTuner::new(false);
        let i = Matrix::random(32, 16, 1.0, 1);
        let d = Matrix::random(32, 24, 1.0, 2);
        let out = t.dw_gemm(0, &i, &d);
        assert!(out.approx_eq(&gemm_reference(MatMode::TN, &i, &d), 1e-4));
        assert_eq!(t.tuned_layers(), 0);
        assert_eq!(t.choice(0), None);
    }

    #[test]
    fn tuning_records_a_choice_and_stays_correct() {
        let mut t = KernelTuner::new(true);
        let i = Matrix::random(64, 48, 1.0, 3);
        let d = Matrix::random(64, 56, 1.0, 4);
        let first = t.dw_gemm(7, &i, &d);
        assert_eq!(t.tuned_layers(), 1);
        assert!(t.choice(7).is_some());
        let outcome = t.take_last_outcome().expect("decision just made");
        assert_eq!(outcome.layer_id, 7);
        assert_eq!(outcome.strategy, t.choice(7).unwrap());
        assert!(outcome.direct_seconds >= 0.0 && outcome.reroute_seconds >= 0.0);
        assert!(outcome.naive_seconds >= 0.0);
        let second = t.dw_gemm(7, &i, &d);
        assert!(
            t.take_last_outcome().is_none(),
            "tuned call decides nothing"
        );
        // Every strategy is bitwise identical to the reference, so the
        // tuned call reproduces the first result exactly.
        assert_eq!(first, second);
        assert_eq!(first, gemm_reference(MatMode::TN, &i, &d));
    }

    #[test]
    fn large_contracted_dim_avoids_the_naive_walk() {
        // The naive TN kernel walks A with stride m; for a big product
        // either the packed TN kernel or the NN reroute must beat it, as
        // the paper's tuner found on Frontier.
        let mut t = KernelTuner::new(true);
        let i = Matrix::random(768, 512, 1.0, 5);
        let d = Matrix::random(768, 512, 1.0, 6);
        let _ = t.dw_gemm(0, &i, &d);
        assert_ne!(
            t.choice(0),
            Some(DwStrategy::NaiveTn),
            "expected a blocked strategy to beat the naive TN walk"
        );
        let outcome = t.take_last_outcome().expect("decision just made");
        assert!(
            outcome.naive_seconds > outcome.direct_seconds.min(outcome.reroute_seconds),
            "naive walk should be the slowest tier at this size"
        );
    }

    #[test]
    fn strategy_labels_are_stable() {
        assert_eq!(DwStrategy::PackedTn.mode_label(), "TN");
        assert_eq!(DwStrategy::NaiveTn.mode_label(), "TN(naive)");
        assert_eq!(DwStrategy::TransposeNn.mode_label(), "TN->NN");
    }

    #[test]
    fn distinct_layers_tuned_independently() {
        let mut t = KernelTuner::new(true);
        let i = Matrix::random(32, 16, 1.0, 7);
        let d = Matrix::random(32, 8, 1.0, 8);
        let _ = t.dw_gemm(0, &i, &d);
        let _ = t.dw_gemm(1, &i, &d);
        assert_eq!(t.tuned_layers(), 2);
    }
}
