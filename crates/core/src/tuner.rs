//! Automated BLAS kernel tuning (Section V-C).
//!
//! The weight-gradient product `Iᵀ·dO` defaults to the TN kernel, which
//! on some platforms (rocBLAS on Frontier, and our deliberately naive TN
//! path in `axonn-tensor`) is far slower than NN. During the first batch
//! the tuner times every strategy for each layer's product with real
//! wall-clock measurements — exactly the paper's procedure — and locks in
//! the fastest for the remaining iterations.

use axonn_tensor::{gemm, MatMode, Matrix};
use std::collections::HashMap;
use std::time::Instant;

/// How to compute `Iᵀ·dO` for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwStrategy {
    /// Call the TN kernel directly.
    DirectTn,
    /// Explicitly transpose `I`, then call the NN kernel — the rewrite
    /// that gave the paper its ~8× matmul speedup on GPT-320B.
    TransposeNn,
}

/// One tuning measurement: what was timed and what won. Drained by the
/// instrumentation right after the call that locked the choice in, so
/// the decision lands in the trace at the point it was made.
#[derive(Debug, Clone, Copy)]
pub struct TuningOutcome {
    pub layer_id: usize,
    pub strategy: DwStrategy,
    /// Measured wall time of the direct TN kernel (seconds).
    pub direct_seconds: f64,
    /// Measured wall time of the transpose + NN reroute (seconds).
    pub reroute_seconds: f64,
}

/// Per-layer kernel choices, learned on the first batch.
#[derive(Debug)]
pub struct KernelTuner {
    enabled: bool,
    choices: HashMap<usize, DwStrategy>,
    last_outcome: Option<TuningOutcome>,
}

impl KernelTuner {
    pub fn new(enabled: bool) -> Self {
        KernelTuner {
            enabled,
            choices: HashMap::new(),
            last_outcome: None,
        }
    }

    /// The measurement recorded by the most recent tuning decision, if
    /// one was made since the last call. Consuming it keeps one trace
    /// event per decision.
    pub fn take_last_outcome(&mut self) -> Option<TuningOutcome> {
        self.last_outcome.take()
    }

    /// The strategy locked in for `layer_id`, if tuned already.
    pub fn choice(&self, layer_id: usize) -> Option<DwStrategy> {
        self.choices.get(&layer_id).copied()
    }

    /// Compute `Iᵀ·dO`. Untuned mode always calls the TN kernel (the
    /// framework default the paper starts from). With tuning enabled, the
    /// first call for each layer times both strategies and records the
    /// winner.
    pub fn dw_gemm(&mut self, layer_id: usize, i_local: &Matrix, d_o: &Matrix) -> Matrix {
        if !self.enabled {
            return gemm(MatMode::TN, i_local, d_o);
        }
        match self.choices.get(&layer_id) {
            Some(DwStrategy::DirectTn) => gemm(MatMode::TN, i_local, d_o),
            Some(DwStrategy::TransposeNn) => {
                let it = i_local.transposed();
                gemm(MatMode::NN, &it, d_o)
            }
            None => {
                let t0 = Instant::now();
                let direct = gemm(MatMode::TN, i_local, d_o);
                let t_direct = t0.elapsed();

                let t1 = Instant::now();
                let it = i_local.transposed();
                let rerouted = gemm(MatMode::NN, &it, d_o);
                let t_reroute = t1.elapsed();

                debug_assert!(
                    direct.approx_eq(&rerouted, 1e-4),
                    "tuning strategies disagree numerically"
                );
                let strategy = if t_reroute < t_direct {
                    DwStrategy::TransposeNn
                } else {
                    DwStrategy::DirectTn
                };
                self.choices.insert(layer_id, strategy);
                self.last_outcome = Some(TuningOutcome {
                    layer_id,
                    strategy,
                    direct_seconds: t_direct.as_secs_f64(),
                    reroute_seconds: t_reroute.as_secs_f64(),
                });
                // Return either result; they are numerically equal up to
                // summation order.
                if strategy == DwStrategy::TransposeNn {
                    rerouted
                } else {
                    direct
                }
            }
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn tuned_layers(&self) -> usize {
        self.choices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_tensor::gemm_reference;

    #[test]
    fn disabled_tuner_uses_tn_and_records_nothing() {
        let mut t = KernelTuner::new(false);
        let i = Matrix::random(32, 16, 1.0, 1);
        let d = Matrix::random(32, 24, 1.0, 2);
        let out = t.dw_gemm(0, &i, &d);
        assert!(out.approx_eq(&gemm_reference(MatMode::TN, &i, &d), 1e-4));
        assert_eq!(t.tuned_layers(), 0);
        assert_eq!(t.choice(0), None);
    }

    #[test]
    fn tuning_records_a_choice_and_stays_correct() {
        let mut t = KernelTuner::new(true);
        let i = Matrix::random(64, 48, 1.0, 3);
        let d = Matrix::random(64, 56, 1.0, 4);
        let first = t.dw_gemm(7, &i, &d);
        assert_eq!(t.tuned_layers(), 1);
        assert!(t.choice(7).is_some());
        let outcome = t.take_last_outcome().expect("decision just made");
        assert_eq!(outcome.layer_id, 7);
        assert_eq!(outcome.strategy, t.choice(7).unwrap());
        assert!(outcome.direct_seconds >= 0.0 && outcome.reroute_seconds >= 0.0);
        let second = t.dw_gemm(7, &i, &d);
        assert!(
            t.take_last_outcome().is_none(),
            "tuned call decides nothing"
        );
        assert!(first.approx_eq(&second, 1e-4));
        assert!(first.approx_eq(&gemm_reference(MatMode::TN, &i, &d), 1e-3));
    }

    #[test]
    fn large_contracted_dim_prefers_transpose_nn() {
        // Our TN kernel walks A with stride m; for a big product the
        // transpose+NN reroute should win, as on Frontier.
        let mut t = KernelTuner::new(true);
        let i = Matrix::random(768, 512, 1.0, 5);
        let d = Matrix::random(768, 512, 1.0, 6);
        let _ = t.dw_gemm(0, &i, &d);
        assert_eq!(
            t.choice(0),
            Some(DwStrategy::TransposeNn),
            "expected the NN reroute to beat the naive TN kernel"
        );
    }

    #[test]
    fn distinct_layers_tuned_independently() {
        let mut t = KernelTuner::new(true);
        let i = Matrix::random(32, 16, 1.0, 7);
        let d = Matrix::random(32, 8, 1.0, 8);
        let _ = t.dw_gemm(0, &i, &d);
        let _ = t.dw_gemm(1, &i, &d);
        assert_eq!(t.tuned_layers(), 2);
    }
}
