//! The AxoNN 4D hybrid parallel training engine — the paper's primary
//! contribution, executed for real.
//!
//! A world of ranks (threads, via `axonn-exec`) is organised into the
//! `G_x × G_y × G_z × G_data` virtual grid of Section V-A. Every
//! fully-connected layer runs Algorithm 1 verbatim:
//!
//! ```text
//! forward:   W  = all-gather_z(Ŵ)          (line 2)
//!            Ô  = I · W                     (line 3)
//!            O  = all-reduce_y(Ô)           (line 4)
//! backward:  dI = all-reduce_x(dO · Wᵀ)     (lines 11-12)
//!            dŴ = reduce-scatter_z(Iᵀ · dO) (lines 13-14)
//! ```
//!
//! with the weight-"transpose" scheme for alternating layers, data
//! parallelism across `G_data` replicas, the OAR / ORS / OAG overlap
//! optimizations built on non-blocking collectives, and the first-batch
//! BLAS kernel auto-tuner of Section V-C. Correctness is established by
//! exact comparison against a serial reference network; timing comes from
//! the virtual clocks of `axonn-collectives`.

pub mod dataparallel;
pub mod gradsync;
pub mod grid;
pub mod layer;
pub mod network;
pub mod schedule;
pub mod stack;
pub mod transformer;
pub mod tuner;

pub use gradsync::{GradSyncMode, GradSyncPipeline, ParamStore, DEFAULT_BUCKET_ELEMS};
pub use grid::GridTopology;
pub use layer::{OverlapConfig, ParallelLinear, PendingGrad, Precision};
pub use network::{
    distribute_input, distribute_output, Activation, NetConfig, Network4d, SerialMlp,
};
pub use schedule::{
    default_mlp_shape, default_transformer_shape, extract_mlp_schedules,
    extract_transformer_schedules, mlp_grid_fits, transformer_grid_fits, TransformerShape,
};
pub use stack::{vocab_parallel_cross_entropy, ParallelEmbedding, TransformerStack, VocabCeResult};
pub use transformer::{block_weight, ParallelLayerNorm, ParallelTransformerBlock};
pub use tuner::{DwStrategy, KernelTuner};
