//! A fully-connected layer parallelized with Algorithm 1.
//!
//! The global weight `W` is `k × n`. Its rows are divided across the
//! row group (Y normally, X for "transposed" layers), its columns across
//! the col group (X / Y), and the resulting block is *further sharded*
//! along Z — the paper's memory optimization over Agarwal's original
//! algorithm, which replicated `W` along Z. The local shard `Ŵ` is
//! therefore `((k / g_in) / G_z) × (n / g_out)`.
//!
//! Input activations `I` arrive as the `(m / G_z) × (k / g_in)` block for
//! this rank's (z, row) coordinates, replicated across the col group;
//! outputs leave as `(m / G_z) × (n / g_out)` blocks replicated across
//! the row group — which is exactly the distribution the *next* layer
//! (with swapped X/Y roles) expects as input.

use crate::grid::GridTopology;
use crate::tuner::{DwStrategy, KernelTuner};
use axonn_collectives::{AsyncHandle, Comm};
use axonn_tensor::{
    block_of, gemm_into_stats, pack_geometry, shard_rows, BlockSpec, GemmStats, MatMode, Matrix,
};
use axonn_trace::{EventDetail, Stream};

/// Wall-clock timestamp for trace edges; 0 when tracing is off (the
/// value is never recorded in that case).
fn wall_now(comm: &Comm) -> u64 {
    comm.tracer().map_or(0, |t| t.now_ns())
}

/// Record a compute-stream GEMM span whose start edges (`t0`, `wall0`)
/// were captured before the product ran; end edges are read now. `stats`
/// carries the blocked engine's pack accounting into the span.
fn record_gemm(comm: &Comm, t0: f64, wall0: u64, mode: &'static str, flops: f64, stats: GemmStats) {
    if let Some(t) = comm.tracer() {
        t.record(
            Stream::Compute,
            t0,
            comm.now(),
            wall0,
            t.now_ns(),
            t.layer(),
            EventDetail::Gemm {
                mode,
                flops,
                packed_bytes: stats.packed_bytes,
                panels: stats.panels,
            },
        );
    }
}

/// Allocate-and-multiply returning the pack stats alongside the product.
fn gemm_with_stats(mode: MatMode, a: &Matrix, b: &Matrix) -> (Matrix, GemmStats) {
    let (m, n) = mode.output_shape(a.shape(), b.shape());
    let mut c = Matrix::zeros(m, n);
    let stats = gemm_into_stats(mode, a, b, &mut c);
    (c, stats)
}

/// Which of the Section V-D overlap optimizations are active.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapConfig {
    /// OAR: overlap the backward all-reduce of `dI` with the `dŴ` GEMM.
    pub oar: bool,
    /// ORS: defer weight-gradient reduce-scatters to the end of backward.
    pub ors: bool,
    /// OAG: prefetch the next layer's weight all-gather during compute.
    pub oag: bool,
}

impl OverlapConfig {
    pub fn all() -> Self {
        OverlapConfig {
            oar: true,
            ors: true,
            oag: true,
        }
    }
}

/// Numeric regime of the training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Pure f32 everywhere (bit-comparable to the serial reference).
    #[default]
    F32,
    /// The paper's mixed precision (Section VI-A): GEMM operands rounded
    /// to the bf16 grid, f32 accumulation, f32 master weights.
    Bf16Mixed,
}

/// A deferred weight-gradient reduce-scatter (ORS): waited on at the end
/// of the backward pass, immediately before the data-parallel phase.
pub struct PendingGrad {
    pub layer_id: usize,
    handle: AsyncHandle,
    rows: usize,
    cols: usize,
}

impl PendingGrad {
    /// Wait for the reduce-scatter and return this rank's gradient shard.
    pub fn wait(self) -> (usize, Matrix) {
        let data = self.handle.wait();
        (self.layer_id, Matrix::from_vec(self.rows, self.cols, data))
    }
}

/// One FC layer under Algorithm 1 on a specific rank.
pub struct ParallelLinear {
    pub layer_id: usize,
    /// Global weight rows (input features).
    pub k: usize,
    /// Global weight columns (output features).
    pub n: usize,
    /// Whether this layer uses the swapped X/Y roles (Section V-A).
    pub transposed: bool,
    w_shard: Matrix,
    grad_shard: Matrix,
    cached_i: Option<Matrix>,
    cached_w: Option<Matrix>,
    prefetch: Option<AsyncHandle>,
}

impl ParallelLinear {
    /// Extract this rank's shard from the (deterministically constructed)
    /// full weight matrix. Every rank builds the same `full_w` from the
    /// same seed, so no broadcast is needed — mirroring seeded
    /// initialization in real frameworks.
    pub fn from_full_weight(
        grid: &GridTopology,
        layer_id: usize,
        full_w: &Matrix,
        transposed: bool,
    ) -> Self {
        let (k, n) = full_w.shape();
        let g_in = grid.row_parts(transposed);
        let g_out = grid.col_parts(transposed);
        assert_eq!(
            k % g_in,
            0,
            "layer {layer_id}: k={k} not divisible by row parts {g_in}"
        );
        assert_eq!(
            n % g_out,
            0,
            "layer {layer_id}: n={n} not divisible by col parts {g_out}"
        );
        assert_eq!(
            (k / g_in) % grid.gz,
            0,
            "layer {layer_id}: row block {} not divisible by Gz={}",
            k / g_in,
            grid.gz
        );
        let block = block_of(
            full_w,
            BlockSpec::new(
                g_in,
                g_out,
                grid.row_index(transposed),
                grid.col_index(transposed),
            ),
        );
        let w_shard = shard_rows(&block, grid.gz, grid.coords.2);
        let grad_shard = Matrix::zeros(w_shard.rows(), w_shard.cols());
        ParallelLinear {
            layer_id,
            k,
            n,
            transposed,
            w_shard,
            grad_shard,
            cached_i: None,
            cached_w: None,
            prefetch: None,
        }
    }

    /// Shape of the input block this rank consumes for `m_local` rows.
    pub fn local_input_cols(&self, grid: &GridTopology) -> usize {
        self.k / grid.row_parts(self.transposed)
    }

    /// Shape of the output block this rank produces.
    pub fn local_output_cols(&self, grid: &GridTopology) -> usize {
        self.n / grid.col_parts(self.transposed)
    }

    pub fn weight_shard(&self) -> &Matrix {
        &self.w_shard
    }

    pub fn grad_shard(&self) -> &Matrix {
        &self.grad_shard
    }

    /// Mutable weight access for the ZeRO-1 sharded optimizer step,
    /// which writes updated slices back instead of calling `apply_sgd`.
    pub fn weight_shard_mut(&mut self) -> &mut Matrix {
        &mut self.w_shard
    }

    /// OAG: issue the asynchronous weight all-gather for this layer now
    /// (line 2 of Algorithm 1, prefetched in topological order).
    pub fn start_weight_gather(&mut self, comm: &Comm, grid: &GridTopology) {
        if self.prefetch.is_none() {
            // Scope the issue event to this layer so the overlap report
            // attributes the hidden all-gather time correctly.
            if let Some(t) = comm.tracer() {
                t.set_layer(Some(self.layer_id));
            }
            self.prefetch = Some(comm.iall_gather_pooled(grid.z_group(), self.w_shard.as_slice()));
            if let Some(t) = comm.tracer() {
                t.set_layer(None);
            }
        }
    }

    /// Obtain the gathered `W` block — from the prefetch handle if one is
    /// in flight, otherwise with a blocking all-gather.
    fn gathered_weight(&mut self, comm: &Comm, grid: &GridTopology) -> Matrix {
        let rows = (self.k / grid.row_parts(self.transposed)).max(1);
        let cols = self.n / grid.col_parts(self.transposed);
        let data = match self.prefetch.take() {
            Some(h) => h.wait(),
            None => comm.all_gather(grid.z_group(), self.w_shard.as_slice()),
        };
        Matrix::from_vec(rows, cols, data)
    }

    /// Forward pass (Algorithm 1 lines 1–7). `i_local` is the
    /// `(m/G_z) × (k/g_in)` input block; returns the `(m/G_z) × (n/g_out)`
    /// output block. Caches `I` and the gathered `W` for backward.
    pub fn forward(
        &mut self,
        comm: &Comm,
        grid: &GridTopology,
        i_local: Matrix,
        precision: Precision,
    ) -> Matrix {
        assert_eq!(
            i_local.cols(),
            self.local_input_cols(grid),
            "layer {}: input block has wrong width",
            self.layer_id
        );
        let span = comm.tracer().and_then(|t| {
            t.set_layer(Some(self.layer_id));
            t.open_span(
                Stream::Compute,
                comm.now(),
                EventDetail::LayerFwd {
                    layer: self.layer_id,
                },
            )
        });
        let mut w = self.gathered_weight(comm, grid);
        let i_local = match precision {
            Precision::F32 => i_local,
            Precision::Bf16Mixed => {
                // Round operands onto the bf16 grid once; the rounded
                // copies are what the backward pass reuses, exactly like
                // bf16 weights/activations on a GPU.
                w.round_bf16();
                let mut i = i_local;
                i.round_bf16();
                i
            }
        };
        let t0 = comm.now();
        let wall0 = wall_now(comm);
        let (o_partial, stats) = gemm_with_stats(MatMode::NN, &i_local, &w);
        let flops = 2.0 * i_local.rows() as f64 * w.rows() as f64 * w.cols() as f64;
        comm.advance_compute(flops);
        record_gemm(comm, t0, wall0, "NN", flops, stats);
        let mut o = o_partial.into_vec();
        comm.all_reduce(grid.row_group(self.transposed), &mut o);
        let out = Matrix::from_vec(i_local.rows(), self.local_output_cols(grid), o);
        self.cached_i = Some(i_local);
        self.cached_w = Some(w);
        if let Some(t) = comm.tracer() {
            t.close_span(span, comm.now());
            t.set_layer(None);
        }
        out
    }

    /// Re-run the forward computation from the cached inputs without
    /// consuming them — activation checkpointing's recompute step
    /// (Section VI-A: "we turn on activation checkpointing"). Costs one
    /// GEMM plus one output all-reduce, exactly like the real thing.
    pub fn recompute_output(&mut self, comm: &Comm, grid: &GridTopology) -> Matrix {
        let i_local = self
            .cached_i
            .as_ref()
            .expect("recompute without cached input");
        let w = self
            .cached_w
            .as_ref()
            .expect("recompute without cached weight");
        if let Some(t) = comm.tracer() {
            t.set_layer(Some(self.layer_id));
        }
        let t0 = comm.now();
        let wall0 = wall_now(comm);
        let (o_partial, stats) = gemm_with_stats(MatMode::NN, i_local, w);
        let flops = 2.0 * i_local.rows() as f64 * w.rows() as f64 * w.cols() as f64;
        comm.advance_compute(flops);
        record_gemm(comm, t0, wall0, "NN", flops, stats);
        let mut o = o_partial.into_vec();
        comm.all_reduce(grid.row_group(self.transposed), &mut o);
        if let Some(t) = comm.tracer() {
            t.set_layer(None);
        }
        Matrix::from_vec(i_local.rows(), self.local_output_cols(grid), o)
    }

    /// Backward pass (Algorithm 1 lines 9–16). Returns the input-gradient
    /// block and, under ORS, the pending weight-gradient reduce-scatter
    /// (otherwise the gradient is accumulated into the layer immediately).
    pub fn backward(
        &mut self,
        comm: &Comm,
        grid: &GridTopology,
        d_o: &Matrix,
        overlap: OverlapConfig,
        tuner: &mut KernelTuner,
        precision: Precision,
    ) -> (Matrix, Option<PendingGrad>) {
        let i_local = self
            .cached_i
            .take()
            .expect("backward called without a cached forward");
        let w = self
            .cached_w
            .take()
            .expect("backward called without a cached weight");
        assert_eq!(d_o.shape(), (i_local.rows(), w.cols()), "dO shape mismatch");
        let d_o = match precision {
            Precision::F32 => d_o.clone(),
            Precision::Bf16Mixed => d_o.to_bf16(),
        };
        let d_o = &d_o;
        let span = comm.tracer().and_then(|t| {
            t.set_layer(Some(self.layer_id));
            t.open_span(
                Stream::Compute,
                comm.now(),
                EventDetail::LayerBwd {
                    layer: self.layer_id,
                },
            )
        });

        // Line 11: dÎ = dO · Wᵀ.
        let t0 = comm.now();
        let wall0 = wall_now(comm);
        let (d_i_partial, stats) = gemm_with_stats(MatMode::NT, d_o, &w);
        let flops = 2.0 * d_o.rows() as f64 * d_o.cols() as f64 * w.rows() as f64;
        comm.advance_compute(flops);
        record_gemm(comm, t0, wall0, "NT", flops, stats);

        // Line 12: all-reduce across the col group — asynchronously under
        // OAR, overlapped with the dŴ GEMM below.
        let col_group = grid.col_group(self.transposed).clone();
        let (mut d_i_buf, ar_handle) = if overlap.oar && col_group.size() > 1 {
            (
                None,
                Some(comm.iall_reduce(&col_group, d_i_partial.into_vec())),
            )
        } else {
            let mut buf = d_i_partial.into_vec();
            comm.all_reduce(&col_group, &mut buf);
            (Some(buf), None)
        };

        // Line 13: dŴ = Iᵀ · dO (via the kernel tuner).
        let t0 = comm.now();
        let wall0 = wall_now(comm);
        let d_w = tuner.dw_gemm(self.layer_id, &i_local, d_o);
        let flops = 2.0 * i_local.rows() as f64 * i_local.cols() as f64 * d_o.cols() as f64;
        comm.advance_compute(flops);
        // Pack traffic of the strategy the tuner executed: the packed TN
        // kernel transpose-packs A, the NN reroute packs B panels only,
        // and the naive walk packs nothing.
        let strategy = tuner.choice(self.layer_id).unwrap_or(DwStrategy::PackedTn);
        let (dw_m, dw_k, dw_n) = (i_local.cols(), i_local.rows(), d_o.cols());
        let (panels, packed_bytes) = match strategy {
            DwStrategy::PackedTn => pack_geometry(MatMode::TN, dw_m, dw_k, dw_n),
            DwStrategy::NaiveTn => (0, 0),
            DwStrategy::TransposeNn => pack_geometry(MatMode::NN, dw_m, dw_k, dw_n),
        };
        record_gemm(
            comm,
            t0,
            wall0,
            strategy.mode_label(),
            flops,
            GemmStats {
                packed_bytes,
                panels,
                simd: false,
            },
        );
        if let Some(t) = comm.tracer() {
            if let Some(o) = tuner.take_last_outcome() {
                t.mark(
                    Stream::Compute,
                    comm.now(),
                    EventDetail::TunerDecision {
                        layer: o.layer_id,
                        choice: match o.strategy {
                            DwStrategy::PackedTn => "packed_tn",
                            DwStrategy::NaiveTn => "naive_tn",
                            DwStrategy::TransposeNn => "transpose_nn",
                        },
                        direct_seconds: o.direct_seconds,
                        naive_seconds: o.naive_seconds,
                        reroute_seconds: o.reroute_seconds,
                    },
                );
            }
        }

        if let Some(h) = ar_handle {
            d_i_buf = Some(h.wait());
        }
        let d_i = Matrix::from_vec(
            i_local.rows(),
            i_local.cols(),
            d_i_buf.expect("input gradient buffer"),
        );

        // Line 14: reduce-scatter of dŴ across Z.
        let pending = if overlap.ors {
            let handle = comm.ireduce_scatter(grid.z_group(), d_w.into_vec());
            Some(PendingGrad {
                layer_id: self.layer_id,
                handle,
                rows: self.w_shard.rows(),
                cols: self.w_shard.cols(),
            })
        } else {
            let shard = comm.reduce_scatter(grid.z_group(), d_w.as_slice());
            self.accumulate_grad(Matrix::from_vec(
                self.w_shard.rows(),
                self.w_shard.cols(),
                shard,
            ));
            None
        };
        if let Some(t) = comm.tracer() {
            t.close_span(span, comm.now());
            t.set_layer(None);
        }
        (d_i, pending)
    }

    /// Add a resolved gradient shard (from a [`PendingGrad`] or a
    /// blocking reduce-scatter) into the layer's accumulator.
    pub fn accumulate_grad(&mut self, grad: Matrix) {
        assert_eq!(
            grad.shape(),
            self.grad_shard.shape(),
            "gradient shape mismatch"
        );
        self.grad_shard.add_assign(&grad);
    }

    /// Mutable access for the data-parallel gradient synchronisation.
    pub fn grad_shard_mut(&mut self) -> &mut Matrix {
        &mut self.grad_shard
    }

    /// SGD update: `Ŵ -= lr · dŴ`, then clear the accumulator.
    pub fn apply_sgd(&mut self, lr: f32) {
        self.w_shard.axpy(-lr, &self.grad_shard);
        self.grad_shard.scale(0.0);
    }

    /// Reassemble the full `k × n` weight from all ranks' shards
    /// (test/checkpoint helper; collective over the whole tensor-parallel
    /// group).
    pub fn gather_full_weight(&self, comm: &Comm, grid: &GridTopology) -> Matrix {
        // Gather over Z to rebuild this rank's (row, col) block …
        let data = comm.all_gather(grid.z_group(), self.w_shard.as_slice());
        let g_in = grid.row_parts(self.transposed);
        let g_out = grid.col_parts(self.transposed);
        let block = Matrix::from_vec(self.k / g_in, self.n / g_out, data);
        // … then exchange blocks across rows and columns. Column first.
        let row_data = comm.all_gather(grid.col_group(self.transposed), block.as_slice());
        let col_blocks: Vec<Matrix> = (0..g_out)
            .map(|i| {
                Matrix::from_vec(
                    self.k / g_in,
                    self.n / g_out,
                    row_data[i * block.len()..(i + 1) * block.len()].to_vec(),
                )
            })
            .collect();
        let row_band = axonn_tensor::concat_cols(&col_blocks);
        let all_data = comm.all_gather(grid.row_group(self.transposed), row_band.as_slice());
        let bands: Vec<Matrix> = (0..g_in)
            .map(|j| {
                Matrix::from_vec(
                    self.k / g_in,
                    self.n,
                    all_data[j * row_band.len()..(j + 1) * row_band.len()].to_vec(),
                )
            })
            .collect();
        axonn_tensor::concat_rows(&bands)
    }
}
