//! Data-parallel gradient synchronisation: the fourth dimension.
//!
//! After every batch, each model replica's gradients are summed across
//! the `G_data` groups with a single bucketed all-reduce (Section V-A:
//! "all groups have to synchronize their weights by issuing all-reduces
//! on their gradients after every batch").

use axonn_collectives::{Comm, ProcessGroup};
use axonn_tensor::Matrix;

/// Sum the given gradient shards across the data-parallel group in one
/// flat bucket (fewer, larger messages — the standard DDP optimization).
///
/// The reduction runs as an explicit canonical-order reduce-scatter +
/// all-gather straight off the pre-padded flat bucket: no internal work
/// buffer (`all_reduce` would copy the bucket again before padding), and
/// wire hops ride pooled payload slabs. Canonical (group-position) fold
/// order also makes the result layout-independent — the property the
/// bucketed gradient pipeline's bit-identity oracle relies on.
pub fn sync_gradients(comm: &Comm, group: &ProcessGroup, grads: &mut [&mut Matrix]) {
    let g = group.size();
    if g <= 1 || grads.is_empty() {
        return;
    }
    let total: usize = grads.iter().map(|m| m.len()).sum();
    let padded = total.div_ceil(g) * g;
    let mut bucket = Vec::with_capacity(padded);
    for m in grads.iter() {
        bucket.extend_from_slice(m.as_slice());
    }
    bucket.resize(padded, 0.0);
    let mine = comm.reduce_scatter_linear(group, &bucket);
    let full = comm.all_gather(group, &mine);
    let mut off = 0;
    for m in grads.iter_mut() {
        let n = m.len();
        m.as_mut_slice().copy_from_slice(&full[off..off + n]);
        off += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_exec::run_spmd;

    #[test]
    fn bucketed_sync_sums_across_replicas() {
        let out = run_spmd(4, |c| {
            let g = ProcessGroup::new(vec![0, 1, 2, 3]);
            let mut a = Matrix::full(2, 2, c.rank() as f32);
            let mut b = Matrix::full(1, 3, 1.0);
            sync_gradients(&c, &g, &mut [&mut a, &mut b]);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, Matrix::full(2, 2, 6.0));
            assert_eq!(b, Matrix::full(1, 3, 4.0));
        }
    }

    #[test]
    fn solo_group_is_noop() {
        let out = run_spmd(1, |c| {
            let g = ProcessGroup::solo(0);
            let mut a = Matrix::full(2, 2, 3.0);
            sync_gradients(&c, &g, &mut [&mut a]);
            a
        });
        assert_eq!(out[0], Matrix::full(2, 2, 3.0));
    }
}
