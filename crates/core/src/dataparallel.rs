//! Data-parallel gradient synchronisation: the fourth dimension.
//!
//! After every batch, each model replica's gradients are summed across
//! the `G_data` groups with a single bucketed all-reduce (Section V-A:
//! "all groups have to synchronize their weights by issuing all-reduces
//! on their gradients after every batch").

use axonn_collectives::{Comm, ProcessGroup};
use axonn_tensor::Matrix;

/// Sum the given gradient shards across the data-parallel group in one
/// flat bucket (fewer, larger messages — the standard DDP optimization).
pub fn sync_gradients(comm: &Comm, group: &ProcessGroup, grads: &mut [&mut Matrix]) {
    if group.size() <= 1 || grads.is_empty() {
        return;
    }
    let total: usize = grads.iter().map(|g| g.len()).sum();
    let mut bucket = Vec::with_capacity(total);
    for g in grads.iter() {
        bucket.extend_from_slice(g.as_slice());
    }
    comm.all_reduce(group, &mut bucket);
    let mut off = 0;
    for g in grads.iter_mut() {
        let n = g.len();
        g.as_mut_slice().copy_from_slice(&bucket[off..off + n]);
        off += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_exec::run_spmd;

    #[test]
    fn bucketed_sync_sums_across_replicas() {
        let out = run_spmd(4, |c| {
            let g = ProcessGroup::new(vec![0, 1, 2, 3]);
            let mut a = Matrix::full(2, 2, c.rank() as f32);
            let mut b = Matrix::full(1, 3, 1.0);
            sync_gradients(&c, &g, &mut [&mut a, &mut b]);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, Matrix::full(2, 2, 6.0));
            assert_eq!(b, Matrix::full(1, 3, 4.0));
        }
    }

    #[test]
    fn solo_group_is_noop() {
        let out = run_spmd(1, |c| {
            let g = ProcessGroup::solo(0);
            let mut a = Matrix::full(2, 2, 3.0);
            sync_gradients(&c, &g, &mut [&mut a]);
            a
        });
        assert_eq!(out[0], Matrix::full(2, 2, 3.0));
    }
}
