//! The 4D virtual grid from a rank's point of view: its coordinates and
//! the four process groups it belongs to.
//!
//! Ranks are laid out hierarchically — X fastest-varying, then Y, then Z,
//! then data — matching the Section V-B example (8 GPUs, all dims 2:
//! X groups (0,1),(2,3),…; Y groups (0,2),(1,3),…).

use axonn_collectives::ProcessGroup;

/// A rank's view of the `G_x × G_y × G_z × G_data` grid.
#[derive(Debug, Clone)]
pub struct GridTopology {
    pub gx: usize,
    pub gy: usize,
    pub gz: usize,
    pub gd: usize,
    pub rank: usize,
    /// Coordinates (x, y, z, d) of this rank.
    pub coords: (usize, usize, usize, usize),
    x_group: ProcessGroup,
    y_group: ProcessGroup,
    z_group: ProcessGroup,
    data_group: ProcessGroup,
}

impl GridTopology {
    /// Build the topology for `rank` in a world of exactly
    /// `gx·gy·gz·gd` ranks.
    pub fn new(gx: usize, gy: usize, gz: usize, gd: usize, rank: usize) -> Self {
        let total = gx * gy * gz * gd;
        assert!(rank < total, "rank {rank} outside {total}-GPU grid");
        let x = rank % gx;
        let y = (rank / gx) % gy;
        let z = (rank / (gx * gy)) % gz;
        let d = rank / (gx * gy * gz);

        let rank_of = |x: usize, y: usize, z: usize, d: usize| x + gx * (y + gy * (z + gz * d));
        let x_group = ProcessGroup::new((0..gx).map(|i| rank_of(i, y, z, d)).collect());
        let y_group = ProcessGroup::new((0..gy).map(|j| rank_of(x, j, z, d)).collect());
        let z_group = ProcessGroup::new((0..gz).map(|k| rank_of(x, y, k, d)).collect());
        let data_group = ProcessGroup::new((0..gd).map(|r| rank_of(x, y, z, r)).collect());

        GridTopology {
            gx,
            gy,
            gz,
            gd,
            rank,
            coords: (x, y, z, d),
            x_group,
            y_group,
            z_group,
            data_group,
        }
    }

    pub fn total_ranks(&self) -> usize {
        self.gx * self.gy * self.gz * self.gd
    }

    pub fn tensor_parallel(&self) -> usize {
        self.gx * self.gy * self.gz
    }

    pub fn x_group(&self) -> &ProcessGroup {
        &self.x_group
    }

    pub fn y_group(&self) -> &ProcessGroup {
        &self.y_group
    }

    pub fn z_group(&self) -> &ProcessGroup {
        &self.z_group
    }

    pub fn data_group(&self) -> &ProcessGroup {
        &self.data_group
    }

    /// The group that divides weight *rows* (`k`): Y for normal layers,
    /// X for transposed ones.
    pub fn row_group(&self, transposed: bool) -> &ProcessGroup {
        if transposed {
            &self.x_group
        } else {
            &self.y_group
        }
    }

    /// The group that divides weight *columns* (`n`): X for normal
    /// layers, Y for transposed ones.
    pub fn col_group(&self, transposed: bool) -> &ProcessGroup {
        if transposed {
            &self.y_group
        } else {
            &self.x_group
        }
    }

    /// This rank's block index along weight rows for a layer.
    pub fn row_index(&self, transposed: bool) -> usize {
        if transposed {
            self.coords.0
        } else {
            self.coords.1
        }
    }

    /// This rank's block index along weight columns for a layer.
    pub fn col_index(&self, transposed: bool) -> usize {
        if transposed {
            self.coords.1
        } else {
            self.coords.0
        }
    }

    /// Number of row blocks (`g_in`) for a layer.
    pub fn row_parts(&self, transposed: bool) -> usize {
        if transposed {
            self.gx
        } else {
            self.gy
        }
    }

    /// Number of column blocks (`g_out`) for a layer.
    pub fn col_parts(&self, transposed: bool) -> usize {
        if transposed {
            self.gy
        } else {
            self.gx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // 8 GPUs, 2x2x2x1: rank 5 has coords (1, 0, 1, 0).
        let t = GridTopology::new(2, 2, 2, 1, 5);
        assert_eq!(t.coords, (1, 0, 1, 0));
        assert_eq!(t.x_group().ranks(), &[4, 5]);
        assert_eq!(t.y_group().ranks(), &[5, 7]);
        assert_eq!(t.z_group().ranks(), &[1, 5]);
        assert_eq!(t.data_group().ranks(), &[5]);
    }

    #[test]
    fn groups_contain_self() {
        for rank in 0..16 {
            let t = GridTopology::new(2, 2, 2, 2, rank);
            assert!(t.x_group().contains(rank));
            assert!(t.y_group().contains(rank));
            assert!(t.z_group().contains(rank));
            assert!(t.data_group().contains(rank));
        }
    }

    #[test]
    fn transposed_roles_swap() {
        let t = GridTopology::new(4, 2, 1, 1, 5); // coords (1, 1, 0, 0)
        assert_eq!(t.row_parts(false), 2);
        assert_eq!(t.row_parts(true), 4);
        assert_eq!(t.row_group(false).ranks(), t.y_group().ranks());
        assert_eq!(t.row_group(true).ranks(), t.x_group().ranks());
        assert_eq!(t.row_index(false), 1);
        assert_eq!(t.col_index(true), 1);
    }

    #[test]
    fn group_positions_match_coords() {
        // A rank's position in each group equals its coordinate there —
        // needed for block ownership in collectives.
        for rank in 0..24 {
            let t = GridTopology::new(2, 3, 2, 2, rank);
            let (x, y, z, d) = t.coords;
            assert_eq!(t.x_group().position_of(rank), x);
            assert_eq!(t.y_group().position_of(rank), y);
            assert_eq!(t.z_group().position_of(rank), z);
            assert_eq!(t.data_group().position_of(rank), d);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_world_rank_panics() {
        let _ = GridTopology::new(2, 2, 1, 1, 4);
    }
}
