//! A 4D-parallel transformer block, built from Algorithm-1 FC layers.
//!
//! The paper parallelizes GPT training by running every fully-connected
//! layer (QKV, attention projection, the two MLP matrices) under
//! Algorithm 1, with the attention *core* (scores, softmax, weighted
//! values) computed locally: heads are divided by the QKV layer's column
//! split and token rows are divided at sequence boundaries by the Z/data
//! split, so softmax(QKᵀ)·V touches only rank-local data — exactly why
//! Section V-A can "focus on parallelizing FC layers".
//!
//! Layout invariants (see `layer.rs` for the FC block distributions):
//!
//! * activations enter a block as `(m/G_z) × (h/g)` column slices,
//!   replicated across the complementary tensor group;
//! * the QKV weight is stored *head-major* — per head `[Q | K | V]`
//!   columns — so an X-column block is a set of whole heads;
//! * LayerNorm statistics are formed with a row-group all-reduce of
//!   per-row partial sums (sequence-parallel layernorm);
//! * the four FC layers alternate normal/transposed (QKV, proj, fc1,
//!   fc2), which makes every residual connection line up without data
//!   movement.

use crate::grid::GridTopology;
use crate::layer::{OverlapConfig, ParallelLinear, PendingGrad, Precision};
use crate::network::Activation;
use crate::tuner::KernelTuner;
use axonn_collectives::Comm;
use axonn_tensor::{gemm, MatMode, Matrix};

/// Sequence-parallel LayerNorm: features are column-split across the
/// `row group`, rows are local; statistics are all-reduced across the
/// row group.
pub struct ParallelLayerNorm {
    /// This rank's slice of the per-feature gain (initialised to 1).
    pub gain: Matrix,
    /// This rank's slice of the per-feature bias (initialised to 0).
    pub bias: Matrix,
    pub gain_grad: Matrix,
    pub bias_grad: Matrix,
    /// Global feature width.
    pub width: usize,
    /// Whether the *following* FC layer is transposed — determines which
    /// group the features are split over.
    pub transposed: bool,
    eps: f32,
    cache: Option<(Matrix, Vec<f32>, Vec<f32>)>, // x_local, mean, inv_std
}

impl ParallelLayerNorm {
    pub fn new(grid: &GridTopology, width: usize, transposed: bool) -> Self {
        let parts = grid.row_parts(transposed);
        assert_eq!(width % parts, 0, "layernorm width must divide row parts");
        let local = width / parts;
        ParallelLayerNorm {
            gain: Matrix::full(1, local, 1.0),
            bias: Matrix::zeros(1, local),
            gain_grad: Matrix::zeros(1, local),
            bias_grad: Matrix::zeros(1, local),
            width,
            transposed,
            eps: 1e-5,
            cache: None,
        }
    }

    pub fn forward(&mut self, comm: &Comm, grid: &GridTopology, x: &Matrix) -> Matrix {
        let (rows, local) = x.shape();
        assert_eq!(local, self.gain.cols(), "layernorm slice width mismatch");
        // Partial sums and sums of squares per row, reduced across the
        // row group (one fused buffer: [sums..., sumsqs...]).
        let mut stats = vec![0.0f32; 2 * rows];
        for r in 0..rows {
            let row = x.row(r);
            stats[r] = row.iter().sum();
            stats[rows + r] = row.iter().map(|v| v * v).sum();
        }
        comm.all_reduce(grid.row_group(self.transposed), &mut stats);
        let h = self.width as f32;
        let mut out = Matrix::zeros(rows, local);
        let mut means = Vec::with_capacity(rows);
        let mut inv_stds = Vec::with_capacity(rows);
        for r in 0..rows {
            let mean = stats[r] / h;
            let var = stats[rows + r] / h - mean * mean;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            let xr = x.row(r);
            let or = out.row_mut(r);
            for c in 0..local {
                or[c] =
                    (xr[c] - mean) * inv_std * self.gain.as_slice()[c] + self.bias.as_slice()[c];
            }
            means.push(mean);
            inv_stds.push(inv_std);
        }
        self.cache = Some((x.clone(), means, inv_stds));
        out
    }

    pub fn backward(&mut self, comm: &Comm, grid: &GridTopology, dy: &Matrix) -> Matrix {
        let (x, means, inv_stds) = self
            .cache
            .take()
            .expect("layernorm backward before forward");
        let (rows, local) = x.shape();
        let h = self.width as f32;
        // Cross-feature reductions: Σ dnorm and Σ dnorm·norm per row,
        // partial locally then all-reduced across the row group.
        let mut red = vec![0.0f32; 2 * rows];
        let gains = self.gain.as_slice().to_vec();
        for r in 0..rows {
            let xr = x.row(r);
            let dyr = dy.row(r);
            let (mean, inv_std) = (means[r], inv_stds[r]);
            for c in 0..local {
                let norm = (xr[c] - mean) * inv_std;
                let dnorm = dyr[c] * gains[c];
                red[r] += dnorm;
                red[rows + r] += dnorm * norm;
                self.gain_grad.as_mut_slice()[c] += dyr[c] * norm;
                self.bias_grad.as_mut_slice()[c] += dyr[c];
            }
        }
        comm.all_reduce(grid.row_group(self.transposed), &mut red);
        let mut dx = Matrix::zeros(rows, local);
        for r in 0..rows {
            let xr = x.row(r);
            let dyr = dy.row(r);
            let (mean, inv_std) = (means[r], inv_stds[r]);
            let dr = dx.row_mut(r);
            for c in 0..local {
                let norm = (xr[c] - mean) * inv_std;
                let dnorm = dyr[c] * gains[c];
                dr[c] = inv_std * (dnorm - red[r] / h - norm * red[rows + r] / h);
            }
        }
        dx
    }

    /// Gain/bias gradients are summed over local rows; rows are split
    /// over Z (and data), so finish the reduction across those groups.
    ///
    /// The data stage uses the canonical-order all-reduce so the result
    /// is bitwise comparable with the bucketed gradient pipeline, which
    /// reduces these tensors inside mixed buckets.
    pub fn sync_param_grads(&mut self, comm: &Comm, grid: &GridTopology) {
        let mut buf = self.fused_grads();
        comm.all_reduce(grid.z_group(), &mut buf);
        comm.all_reduce_linear(grid.data_group(), &mut buf);
        self.split_grads(&buf);
    }

    /// Z-group-only gradient reduction: used by the bucketed pipeline,
    /// which takes over the data-parallel stage (and the update) itself.
    pub fn sync_param_grads_z(&mut self, comm: &Comm, grid: &GridTopology) {
        let mut buf = self.fused_grads();
        comm.all_reduce(grid.z_group(), &mut buf);
        self.split_grads(&buf);
    }

    fn fused_grads(&self) -> Vec<f32> {
        let mut buf = self.gain_grad.as_slice().to_vec();
        buf.extend_from_slice(self.bias_grad.as_slice());
        buf
    }

    fn split_grads(&mut self, buf: &[f32]) {
        let local = self.gain.cols();
        self.gain_grad = Matrix::from_vec(1, local, buf[..local].to_vec());
        self.bias_grad = Matrix::from_vec(1, local, buf[local..].to_vec());
    }

    pub fn apply_sgd(&mut self, lr: f32) {
        self.gain.axpy(-lr, &self.gain_grad);
        self.bias.axpy(-lr, &self.bias_grad);
        self.gain_grad.scale(0.0);
        self.bias_grad.scale(0.0);
    }
}

/// The local attention core: causal softmax attention over this rank's
/// sequences and heads. No communication — the layout guarantees
/// locality.
struct AttentionCore {
    seq_len: usize,
    head_dim: usize,
    cache: Option<Vec<(Matrix, Matrix, Matrix, Matrix)>>, // per (seq, head): Q, K, V, P
}

impl AttentionCore {
    fn new(seq_len: usize, head_dim: usize) -> Self {
        AttentionCore {
            seq_len,
            head_dim,
            cache: None,
        }
    }

    /// `qkv` is `(B_local·T) × (heads_local·3·hd)`, head-major. Returns
    /// `(B_local·T) × (heads_local·hd)`.
    fn forward(&mut self, qkv: &Matrix) -> Matrix {
        let (rows, width) = qkv.shape();
        let t = self.seq_len;
        let hd = self.head_dim;
        assert_eq!(rows % t, 0, "rows must be whole sequences");
        assert_eq!(width % (3 * hd), 0, "width must be whole heads");
        let b = rows / t;
        let heads = width / (3 * hd);
        let scale = 1.0 / (hd as f32).sqrt();
        let mut out = Matrix::zeros(rows, heads * hd);
        let mut cache = Vec::with_capacity(b * heads);
        for s in 0..b {
            for head in 0..heads {
                let off = head * 3 * hd;
                let mut q = Matrix::zeros(t, hd);
                let mut k = Matrix::zeros(t, hd);
                let mut v = Matrix::zeros(t, hd);
                for ti in 0..t {
                    let row = qkv.row(s * t + ti);
                    q.row_mut(ti).copy_from_slice(&row[off..off + hd]);
                    k.row_mut(ti).copy_from_slice(&row[off + hd..off + 2 * hd]);
                    v.row_mut(ti)
                        .copy_from_slice(&row[off + 2 * hd..off + 3 * hd]);
                }
                let mut scores = gemm(MatMode::NT, &q, &k);
                scores.scale(scale);
                let mut p = Matrix::zeros(t, t);
                for i in 0..t {
                    let srow = scores.row(i);
                    let maxv = srow[..=i].iter().cloned().fold(f32::MIN, f32::max);
                    let denom: f32 = srow[..=i].iter().map(|&x| (x - maxv).exp()).sum();
                    let prow = p.row_mut(i);
                    for j in 0..=i {
                        prow[j] = (srow[j] - maxv).exp() / denom;
                    }
                }
                let o = gemm(MatMode::NN, &p, &v);
                for ti in 0..t {
                    out.row_mut(s * t + ti)[head * hd..(head + 1) * hd].copy_from_slice(o.row(ti));
                }
                cache.push((q, k, v, p));
            }
        }
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("attention backward before forward");
        let (rows, width) = d_out.shape();
        let t = self.seq_len;
        let hd = self.head_dim;
        let b = rows / t;
        let heads = width / hd;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut d_qkv = Matrix::zeros(rows, heads * 3 * hd);
        for s in 0..b {
            for head in 0..heads {
                let (q, k, v, p) = &cache[s * heads + head];
                let mut d_o = Matrix::zeros(t, hd);
                for ti in 0..t {
                    d_o.row_mut(ti)
                        .copy_from_slice(&d_out.row(s * t + ti)[head * hd..(head + 1) * hd]);
                }
                let d_v = gemm(MatMode::TN, p, &d_o);
                let d_p = gemm(MatMode::NT, &d_o, v);
                let mut d_s = Matrix::zeros(t, t);
                for i in 0..t {
                    let prow = p.row(i);
                    let dprow = d_p.row(i);
                    let dot: f32 = (0..=i).map(|j| prow[j] * dprow[j]).sum();
                    let dsrow = d_s.row_mut(i);
                    for j in 0..=i {
                        dsrow[j] = prow[j] * (dprow[j] - dot) * scale;
                    }
                }
                let d_q = gemm(MatMode::NN, &d_s, k);
                let d_k = gemm(MatMode::TN, &d_s, q);
                let off = head * 3 * hd;
                for ti in 0..t {
                    let dst = d_qkv.row_mut(s * t + ti);
                    dst[off..off + hd].copy_from_slice(d_q.row(ti));
                    dst[off + hd..off + 2 * hd].copy_from_slice(d_k.row(ti));
                    dst[off + 2 * hd..off + 3 * hd].copy_from_slice(d_v.row(ti));
                }
            }
        }
        d_qkv
    }
}

/// A full pre-LN transformer block under the 4D algorithm:
/// `x + proj(attn(qkv(ln1(x))))`, then `h + fc2(gelu(fc1(ln2(h))))`.
pub struct ParallelTransformerBlock {
    pub ln1: ParallelLayerNorm,
    pub qkv: ParallelLinear,
    core: AttentionCore,
    pub proj: ParallelLinear,
    pub ln2: ParallelLayerNorm,
    pub fc1: ParallelLinear,
    pub fc2: ParallelLinear,
    pub n_heads: usize,
    pub seq_len: usize,
    /// Pre-GELU activations cached for the backward pass (the FC layers
    /// cache their own operands per Algorithm 1).
    cached_fc1_pre: Option<Matrix>,
}

/// Deterministic seeded weight shared with the serial reference.
pub fn block_weight(rows: usize, cols: usize, seed: u64, which: u64) -> Matrix {
    let scale = 1.0 / (rows as f32).sqrt();
    Matrix::random(
        rows,
        cols,
        scale,
        seed.wrapping_add(which.wrapping_mul(6151)),
    )
}

impl ParallelTransformerBlock {
    /// Build the block for this rank. Requires:
    /// * `hidden % (max(gx,gy) · gz) == 0` (FC divisibility),
    /// * `n_heads % gx == 0` (whole heads per QKV column block),
    /// * batch rows split at sequence boundaries (checked in `forward`).
    pub fn new(
        grid: &GridTopology,
        hidden: usize,
        n_heads: usize,
        seq_len: usize,
        seed: u64,
        layer_base: usize,
    ) -> Self {
        assert_eq!(hidden % n_heads, 0, "hidden must divide into heads");
        assert_eq!(
            n_heads % grid.col_parts(false),
            0,
            "heads ({n_heads}) must divide by the QKV column split ({})",
            grid.col_parts(false)
        );
        let qkv_w = block_weight(hidden, 3 * hidden, seed, 1);
        let proj_w = block_weight(hidden, hidden, seed, 2);
        let fc1_w = block_weight(hidden, 4 * hidden, seed, 3);
        let fc2_w = block_weight(4 * hidden, hidden, seed, 4);
        ParallelTransformerBlock {
            ln1: ParallelLayerNorm::new(grid, hidden, false),
            qkv: ParallelLinear::from_full_weight(grid, layer_base, &qkv_w, false),
            core: AttentionCore::new(seq_len, hidden / n_heads),
            proj: ParallelLinear::from_full_weight(grid, layer_base + 1, &proj_w, true),
            ln2: ParallelLayerNorm::new(grid, hidden, false),
            fc1: ParallelLinear::from_full_weight(grid, layer_base + 2, &fc1_w, false),
            fc2: ParallelLinear::from_full_weight(grid, layer_base + 3, &fc2_w, true),
            n_heads,
            seq_len,
            cached_fc1_pre: None,
        }
    }

    /// Forward: `x_local` is `(m/G_z) × (hidden/gy)`, sequence-aligned.
    pub fn forward(&mut self, comm: &Comm, grid: &GridTopology, x_local: &Matrix) -> Matrix {
        assert_eq!(
            x_local.rows() % self.seq_len,
            0,
            "local rows must be whole sequences (split batch by gd*gz at sequence boundaries)"
        );
        let n1 = self.ln1.forward(comm, grid, x_local);
        let qkv_out = self.qkv.forward(comm, grid, n1, Precision::F32);
        let attn = self.core.forward(&qkv_out);
        let proj_out = self.proj.forward(comm, grid, attn, Precision::F32);
        let mut h = proj_out;
        h.add_assign(x_local);

        let n2 = self.ln2.forward(comm, grid, &h);
        let fc1_pre = self.fc1.forward(comm, grid, n2, Precision::F32);
        let mut act = fc1_pre.clone();
        Activation::Gelu.apply(&mut act);
        let fc2_out = self.fc2.forward(comm, grid, act, Precision::F32);
        let mut out = fc2_out;
        out.add_assign(&h);

        self.cached_fc1_pre = Some(fc1_pre);
        out
    }

    /// Backward; returns `dx` and any deferred reduce-scatters (ORS).
    pub fn backward(
        &mut self,
        comm: &Comm,
        grid: &GridTopology,
        d_out: &Matrix,
        overlap: OverlapConfig,
        tuner: &mut KernelTuner,
    ) -> (Matrix, Vec<PendingGrad>) {
        let fc1_pre = self
            .cached_fc1_pre
            .take()
            .expect("block backward before forward");
        let mut pending = Vec::new();
        let mut push = |p: Option<PendingGrad>| {
            if let Some(p) = p {
                pending.push(p);
            }
        };

        // MLP half: out = h + fc2(gelu(fc1(ln2(h)))).
        let (mut d_act, p) = self
            .fc2
            .backward(comm, grid, d_out, overlap, tuner, Precision::F32);
        push(p);
        Activation::Gelu.backprop(&fc1_pre, &mut d_act);
        let (d_n2, p) = self
            .fc1
            .backward(comm, grid, &d_act, overlap, tuner, Precision::F32);
        push(p);
        let mut d_h = self.ln2.backward(comm, grid, &d_n2);
        d_h.add_assign(d_out); // residual

        // Attention half: h = x + proj(core(qkv(ln1(x)))).
        let (d_attn, p) = self
            .proj
            .backward(comm, grid, &d_h, overlap, tuner, Precision::F32);
        push(p);
        let d_qkv = self.core.backward(&d_attn);
        let (d_n1, p) = self
            .qkv
            .backward(comm, grid, &d_qkv, overlap, tuner, Precision::F32);
        push(p);
        let mut dx = self.ln1.backward(comm, grid, &d_n1);
        dx.add_assign(&d_h); // residual
        (dx, pending)
    }

    /// FC layers of the block, for gradient sync and updates.
    pub fn fc_layers_mut(&mut self) -> [&mut ParallelLinear; 4] {
        [&mut self.qkv, &mut self.proj, &mut self.fc1, &mut self.fc2]
    }

    /// One FC layer by block-local index (0 = qkv, 1 = proj, 2 = fc1,
    /// 3 = fc2).
    pub fn fc_mut(&mut self, which: usize) -> &mut ParallelLinear {
        match which {
            0 => &mut self.qkv,
            1 => &mut self.proj,
            2 => &mut self.fc1,
            3 => &mut self.fc2,
            other => panic!("no FC layer {other} in a block"),
        }
    }

    /// Finish LayerNorm parameter-gradient reductions (call once per
    /// batch, before the optimizer step).
    pub fn sync_norm_grads(&mut self, comm: &Comm, grid: &GridTopology) {
        self.ln1.sync_param_grads(comm, grid);
        self.ln2.sync_param_grads(comm, grid);
    }

    pub fn apply_sgd(&mut self, lr: f32) {
        self.ln1.apply_sgd(lr);
        self.ln2.apply_sgd(lr);
        for l in self.fc_layers_mut() {
            l.apply_sgd(lr);
        }
    }
}
