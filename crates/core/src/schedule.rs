//! Symbolic schedule extraction: replay a full training step per rank on
//! a **dry** world ([`CommWorld::dry`]) to obtain each rank's ordered
//! stream of collective operations without moving a byte of data.
//!
//! Dry collectives return zero-filled results immediately, so every rank
//! of the world can run **serially on one thread** — no rank ever blocks
//! on a peer. The recorded [`SchedEvent`] streams are exactly what a live
//! run would issue (same groups, same element counts, same issue/wait
//! pairing), which makes them a sound input for `axonn-verify`'s
//! pre-launch certification: matching, deadlock simulation, and leak
//! lints all run before a single rank thread is spawned.
//!
//! The `default_*` helpers pick model shapes that fit *every* grid
//! `Grid4d::enumerate` can produce for a rank budget `G`: feature sizes
//! `8·G` and batch `2·G`. Any split `g ∈ {gx, gy, gz, gd}` divides `G`,
//! so `8G % g_in = 0`, and for the z-sharding `(8G / g_in) % gz = 0`
//! because `g_in · gz` divides `G` (they are factors of the same grid).
//! That lets `axonnctl verify --all-grids` sweep the whole enumeration
//! with one model shape.

use crate::network::{Activation, Network4d};
use crate::stack::TransformerStack;
use crate::{GridTopology, OverlapConfig};
use axonn_collectives::{CommWorld, SchedEvent};
use axonn_tensor::Matrix;

/// MLP shape that fits every legal grid over `world` ranks: three
/// feature dims of `8·world` and a global batch of `2·world` rows.
pub fn default_mlp_shape(world: usize) -> (Vec<usize>, usize) {
    let w = world.max(1);
    (vec![8 * w, 8 * w, 8 * w], 2 * w)
}

/// Transformer shape for schedule extraction and verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerShape {
    pub vocab: usize,
    pub hidden: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub seq_len: usize,
    /// Global number of sequences in the batch.
    pub seqs: usize,
}

/// Transformer shape that fits every legal grid over `world` ranks:
/// `hidden = vocab = 8·world`, `n_heads = world` (so any `gx | world`
/// divides the head count), two layers, and `2·world` sequences.
pub fn default_transformer_shape(world: usize) -> TransformerShape {
    let w = world.max(1);
    TransformerShape {
        vocab: 8 * w,
        hidden: 8 * w,
        n_heads: w,
        n_layers: 2,
        seq_len: 2,
        seqs: 2 * w,
    }
}

/// Whether an MLP with global feature `dims` and `batch_rows` rows can
/// run on the grid — the divisibility contract
/// `ParallelLinear::from_full_weight` asserts, mirrored here so illegal
/// configurations are rejected with a clean error instead of a panic.
/// (The same predicate guards elastic restart as
/// `axonn_ft::layout::grid_fits`.)
pub fn mlp_grid_fits(
    gx: usize,
    gy: usize,
    gz: usize,
    gd: usize,
    dims: &[usize],
    batch_rows: usize,
) -> bool {
    if !batch_rows.is_multiple_of(gd * gz) {
        return false;
    }
    (0..dims.len().saturating_sub(1)).all(|i| {
        let transposed = i % 2 == 1;
        let (g_in, g_out) = if transposed { (gx, gy) } else { (gy, gx) };
        dims[i].is_multiple_of(g_in)
            && dims[i + 1].is_multiple_of(g_out)
            && (dims[i] / g_in).is_multiple_of(gz)
    })
}

/// Whether a transformer stack with this shape can run on the grid —
/// the union of the constructor asserts in `ParallelEmbedding`,
/// `ParallelTransformerBlock`, `ParallelLayerNorm`, the vocab-parallel
/// head, and `TransformerStack::train_step`'s batch split.
pub fn transformer_grid_fits(
    gx: usize,
    gy: usize,
    gz: usize,
    gd: usize,
    shape: &TransformerShape,
) -> bool {
    let h = shape.hidden;
    shape.seqs.is_multiple_of(gd * gz)
        && h.is_multiple_of(shape.n_heads)
        && shape.n_heads.is_multiple_of(gx)
        && shape.vocab.is_multiple_of(gx)
        // Weight rows split over Y (normal layers) and X (transposed),
        // then z-sharded; layernorm and embedding ride the same splits.
        && h.is_multiple_of(gy)
        && h.is_multiple_of(gx)
        && (h / gy).is_multiple_of(gz)
        && (h / gx).is_multiple_of(gz)
}

/// Extract per-rank schedules for one MLP training step on the grid.
/// Runs every rank serially on a dry world; panics only if the shape
/// does not fit the grid (check [`mlp_grid_fits`] first).
pub fn extract_mlp_schedules(
    gx: usize,
    gy: usize,
    gz: usize,
    gd: usize,
    dims: &[usize],
    batch_rows: usize,
    overlap: OverlapConfig,
) -> Vec<Vec<SchedEvent>> {
    let world = gx * gy * gz * gd;
    let comms = CommWorld::dry(world);
    let probe = comms[0].clone();
    let x = Matrix::random(batch_rows, dims[0], 1.0, 11);
    let t = Matrix::random(batch_rows, *dims.last().expect("non-empty dims"), 1.0, 13);
    for comm in comms {
        let rank = comm.rank();
        let grid = GridTopology::new(gx, gy, gz, gd, rank);
        let mut net = Network4d::new(comm, grid, dims, Activation::Gelu, 7, overlap, false);
        net.train_step(&x, &t, 0.01);
    }
    probe
        .schedule_streams()
        .expect("dry worlds always record schedules")
}

/// Extract per-rank schedules for one transformer training step on the
/// grid (see [`extract_mlp_schedules`]).
pub fn extract_transformer_schedules(
    gx: usize,
    gy: usize,
    gz: usize,
    gd: usize,
    shape: &TransformerShape,
    overlap: OverlapConfig,
) -> Vec<Vec<SchedEvent>> {
    let world = gx * gy * gz * gd;
    let comms = CommWorld::dry(world);
    let probe = comms[0].clone();
    let n_tokens = shape.seqs * shape.seq_len;
    let tokens: Vec<usize> = (0..n_tokens).map(|i| (i * 5 + 1) % shape.vocab).collect();
    let targets: Vec<usize> = (0..n_tokens).map(|i| (i * 3 + 2) % shape.vocab).collect();
    for comm in comms {
        let rank = comm.rank();
        let grid = GridTopology::new(gx, gy, gz, gd, rank);
        let mut stack = TransformerStack::new(
            &grid,
            shape.vocab,
            shape.hidden,
            shape.n_heads,
            shape.n_layers,
            shape.seq_len,
            42,
            overlap,
        );
        stack.train_step(&comm, &grid, &tokens, &targets, 0.01);
    }
    probe
        .schedule_streams()
        .expect("dry worlds always record schedules")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shapes_fit_every_enumerable_grid() {
        for world in [1usize, 2, 4, 6, 8, 12, 16] {
            let (dims, batch) = default_mlp_shape(world);
            let tshape = default_transformer_shape(world);
            // Enumerate all factorisations world = gx*gy*gz*gd.
            for gx in 1..=world {
                if !world.is_multiple_of(gx) {
                    continue;
                }
                for gy in 1..=world / gx {
                    if !(world / gx).is_multiple_of(gy) {
                        continue;
                    }
                    for gz in 1..=world / (gx * gy) {
                        if !(world / (gx * gy)).is_multiple_of(gz) {
                            continue;
                        }
                        let gd = world / (gx * gy * gz);
                        assert!(
                            mlp_grid_fits(gx, gy, gz, gd, &dims, batch),
                            "mlp {world}: ({gx},{gy},{gz},{gd})"
                        );
                        assert!(
                            transformer_grid_fits(gx, gy, gz, gd, &tshape),
                            "transformer {world}: ({gx},{gy},{gz},{gd})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mlp_extraction_runs_serially_and_records_all_ranks() {
        let (dims, batch) = default_mlp_shape(4);
        let streams = extract_mlp_schedules(2, 1, 2, 1, &dims, batch, OverlapConfig::all());
        assert_eq!(streams.len(), 4);
        for (rank, s) in streams.iter().enumerate() {
            assert!(
                s.iter().any(|e| matches!(e, SchedEvent::Issue(_))),
                "rank {rank} recorded no collectives"
            );
        }
    }

    #[test]
    fn transformer_extraction_records_bucket_markers_with_data_parallelism() {
        let shape = default_transformer_shape(4);
        let streams = extract_transformer_schedules(1, 2, 1, 2, &shape, OverlapConfig::all());
        assert_eq!(streams.len(), 4);
        assert!(streams[0]
            .iter()
            .any(|e| matches!(e, SchedEvent::Marker { label } if *label == "bucket_seal")));
    }
}
