//! End-to-end networks: the 4D-parallel MLP and its serial reference.
//!
//! The parallel network runs the full training step of Section V-A —
//! forward through alternating normal/"transposed" FC layers, backward
//! with the overlap optimizations, deferred reduce-scatters, and the
//! data-parallel gradient all-reduce — on real data. The serial network
//! is the ground truth: for identical seeds, the parallel run must
//! reproduce its losses and weights (up to floating-point summation
//! order), for *every* legal grid. That equivalence is the correctness
//! core of the whole reproduction and is exercised heavily in tests.

use crate::dataparallel::sync_gradients;
use crate::gradsync::{GradSyncMode, GradSyncPipeline, ParamStore, DEFAULT_BUCKET_ELEMS};
use crate::grid::GridTopology;
use crate::layer::{OverlapConfig, ParallelLinear, PendingGrad, Precision};
use crate::tuner::KernelTuner;
use axonn_collectives::{Comm, ProcessGroup};
use axonn_tensor::{block_of, gemm, BlockSpec, MatMode, Matrix};

/// Elementwise nonlinearity between FC layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Identity,
    Relu,
    /// tanh-approximated GELU, as in GPT MLP blocks.
    Gelu,
}

impl Activation {
    pub fn apply(self, m: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => m.map_inplace(|x| x.max(0.0)),
            Activation::Gelu => m.map_inplace(gelu),
        }
    }

    /// Multiply `d` in place by `f'(pre)` elementwise.
    pub fn backprop(self, pre: &Matrix, d: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (dv, &p) in d.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    if p <= 0.0 {
                        *dv = 0.0;
                    }
                }
            }
            Activation::Gelu => {
                for (dv, &p) in d.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    *dv *= gelu_grad(p);
                }
            }
        }
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Deterministic weight for layer `i` of a network with feature sizes
/// `dims` — shared between the serial and parallel constructions so they
/// start bit-identical.
fn init_weight(dims: &[usize], i: usize, seed: u64) -> Matrix {
    let scale = 1.0 / (dims[i] as f32).sqrt();
    Matrix::random(
        dims[i],
        dims[i + 1],
        scale,
        seed.wrapping_add(i as u64 * 7919),
    )
}

/// The serial reference MLP: plain full-batch SGD on sum-of-squares loss.
pub struct SerialMlp {
    pub weights: Vec<Matrix>,
    act: Activation,
}

impl SerialMlp {
    pub fn new(dims: &[usize], act: Activation, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let weights = (0..dims.len() - 1)
            .map(|i| init_weight(dims, i, seed))
            .collect();
        SerialMlp { weights, act }
    }

    /// Forward pass returning the pre-activation outputs of every layer.
    fn forward_trace(&self, x: &Matrix) -> Vec<Matrix> {
        let mut pres = Vec::with_capacity(self.weights.len());
        let mut cur = x.clone();
        for (i, w) in self.weights.iter().enumerate() {
            let pre = gemm(MatMode::NN, &cur, w);
            if i + 1 < self.weights.len() {
                let mut a = pre.clone();
                self.act.apply(&mut a);
                cur = a;
            }
            pres.push(pre);
        }
        pres
    }

    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_trace(x).pop().expect("at least one layer")
    }

    /// One full-batch SGD step on `0.5·Σ(O−T)²`; returns the loss.
    pub fn train_step(&mut self, x: &Matrix, target: &Matrix, lr: f32) -> f32 {
        let pres = self.forward_trace(x);
        let out = pres.last().expect("output");
        assert_eq!(out.shape(), target.shape(), "target shape mismatch");
        let mut d = out.clone();
        d.sub_assign(target);
        let loss: f32 = d.as_slice().iter().map(|v| 0.5 * v * v).sum();

        // Inputs to each layer (post-activation of the previous one).
        let mut inputs = Vec::with_capacity(self.weights.len());
        inputs.push(x.clone());
        for pre in &pres[..pres.len() - 1] {
            let mut a = pre.clone();
            self.act.apply(&mut a);
            inputs.push(a);
        }

        let mut grads: Vec<Matrix> = Vec::with_capacity(self.weights.len());
        for i in (0..self.weights.len()).rev() {
            let dw = gemm(MatMode::TN, &inputs[i], &d);
            let mut d_in = gemm(MatMode::NT, &d, &self.weights[i]);
            if i > 0 {
                self.act.backprop(&pres[i - 1], &mut d_in);
            }
            grads.push(dw);
            d = d_in;
        }
        grads.reverse();
        for (w, g) in self.weights.iter_mut().zip(&grads) {
            w.axpy(-lr, g);
        }
        loss
    }
}

/// Distribute a global `m × f` activation matrix to this rank's input
/// block for a layer with the given transpose flag: rows split over
/// (data, Z), columns over the layer's row group.
pub fn distribute_input(full: &Matrix, grid: &GridTopology, transposed: bool) -> Matrix {
    let (_, _, z, d) = grid.coords;
    let rows = block_of(full, BlockSpec::new(grid.gd, 1, d, 0));
    let rows = block_of(&rows, BlockSpec::new(grid.gz, 1, z, 0));
    block_of(
        &rows,
        BlockSpec::new(1, grid.row_parts(transposed), 0, grid.row_index(transposed)),
    )
}

/// Distribute a global target/output matrix to this rank's *output* block
/// for a layer: rows split over (data, Z), columns over the col group.
pub fn distribute_output(full: &Matrix, grid: &GridTopology, transposed: bool) -> Matrix {
    let (_, _, z, d) = grid.coords;
    let rows = block_of(full, BlockSpec::new(grid.gd, 1, d, 0));
    let rows = block_of(&rows, BlockSpec::new(grid.gz, 1, z, 0));
    block_of(
        &rows,
        BlockSpec::new(1, grid.col_parts(transposed), 0, grid.col_index(transposed)),
    )
}

/// Engine-level options beyond the overlap set.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    pub overlap: OverlapConfig,
    /// First-batch BLAS kernel auto-tuning (Section V-C).
    pub kernel_tuning: bool,
    /// f32 or the paper's bf16 mixed precision (Section VI-A).
    pub precision: Precision,
    /// Activation checkpointing (Section VI-A): drop post-layer
    /// activations after the forward pass and recompute them during
    /// backward. Identical numerics, extra compute and output
    /// all-reduces — exactly the trade the paper makes.
    pub activation_checkpointing: bool,
    /// Data-parallel gradient phase: the overlapped bucketed pipeline
    /// with the ZeRO-1 sharded step (default) or the serial per-tensor
    /// oracle. Bit-identical to each other for every grid.
    pub grad_sync: GradSyncMode,
    /// Bucket capacity in elements for the bucketed pipeline.
    pub grad_bucket_elems: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            overlap: OverlapConfig::default(),
            kernel_tuning: false,
            precision: Precision::default(),
            activation_checkpointing: false,
            grad_sync: GradSyncMode::default(),
            grad_bucket_elems: DEFAULT_BUCKET_ELEMS,
        }
    }
}

/// The 4D-parallel MLP on one rank.
pub struct Network4d {
    comm: Comm,
    grid: GridTopology,
    layers: Vec<ParallelLinear>,
    act: Activation,
    cfg: NetConfig,
    tuner: KernelTuner,
    world: ProcessGroup,
    last_grad_sync: f64,
}

/// [`ParamStore`] over the MLP's weight shards: tensor id = layer id.
struct MlpParams<'a> {
    layers: &'a mut [ParallelLinear],
}

impl ParamStore for MlpParams<'_> {
    fn read(&self, tensor: usize, range: std::ops::Range<usize>, dst: &mut [f32]) {
        dst.copy_from_slice(&self.layers[tensor].weight_shard().as_slice()[range]);
    }
    fn write(&mut self, tensor: usize, range: std::ops::Range<usize>, src: &[f32]) {
        self.layers[tensor].weight_shard_mut().as_mut_slice()[range].copy_from_slice(src);
    }
}

impl Network4d {
    /// Build the network for this rank. `dims` are the global feature
    /// sizes (`dims.len() - 1` layers); weights are seeded identically to
    /// [`SerialMlp::new`], and layer `i` is "transposed" for odd `i`
    /// (Section V-A's alternation).
    pub fn new(
        comm: Comm,
        grid: GridTopology,
        dims: &[usize],
        act: Activation,
        seed: u64,
        overlap: OverlapConfig,
        kernel_tuning: bool,
    ) -> Self {
        Self::with_config(
            comm,
            grid,
            dims,
            act,
            seed,
            NetConfig {
                overlap,
                kernel_tuning,
                ..NetConfig::default()
            },
        )
    }

    /// Build with the full option set (precision, checkpointing, …).
    pub fn with_config(
        comm: Comm,
        grid: GridTopology,
        dims: &[usize],
        act: Activation,
        seed: u64,
        cfg: NetConfig,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let layers = (0..dims.len() - 1)
            .map(|i| {
                let full = init_weight(dims, i, seed);
                ParallelLinear::from_full_weight(&grid, i, &full, i % 2 == 1)
            })
            .collect();
        let world = ProcessGroup::new((0..grid.total_ranks()).collect());
        let tuner = KernelTuner::new(cfg.kernel_tuning);
        Network4d {
            comm,
            grid,
            layers,
            act,
            cfg,
            tuner,
            world,
            last_grad_sync: 0.0,
        }
    }

    /// Wall-clock seconds the last `train_step` spent in the ORS drain +
    /// data-parallel gradient phase (bucketed pipeline or per-tensor
    /// oracle). Bench probes read this to report the `grad_sync` phase.
    pub fn last_grad_sync_seconds(&self) -> f64 {
        self.last_grad_sync
    }

    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    pub fn grid(&self) -> &GridTopology {
        &self.grid
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward through all layers from this rank's input block; returns
    /// the local output block and (unless activation checkpointing is on)
    /// the local pre-activation cache.
    fn forward_local(&mut self, x_local: Matrix) -> (Matrix, Vec<Matrix>) {
        if self.cfg.overlap.oag {
            // OAG: enqueue every weight all-gather in topological order
            // before compute starts.
            for layer in &mut self.layers {
                layer.start_weight_gather(&self.comm, &self.grid);
            }
        }
        let n_layers = self.layers.len();
        let mut pres = Vec::with_capacity(n_layers);
        let mut cur = x_local;
        let mut out = Matrix::zeros(0, 0);
        for i in 0..n_layers {
            let pre = self.layers[i].forward(&self.comm, &self.grid, cur, self.cfg.precision);
            if i + 1 < n_layers {
                let mut a = pre.clone();
                self.act.apply(&mut a);
                cur = a;
            } else {
                cur = Matrix::zeros(0, 0);
                out = pre.clone();
            }
            if self.cfg.activation_checkpointing {
                // Keep only what Algorithm 1 caches inside the layers
                // (I and W); the pre-activation outputs are recomputed
                // during backward.
                drop(pre);
            } else {
                pres.push(pre);
            }
        }
        (out, pres)
    }

    /// Pre-activation output of layer `i`, either from the forward cache
    /// or recomputed (activation checkpointing).
    fn pre_of(&mut self, pres: &[Matrix], i: usize) -> Matrix {
        if self.cfg.activation_checkpointing {
            self.layers[i].recompute_output(&self.comm, &self.grid)
        } else {
            pres[i].clone()
        }
    }

    /// One full training step on the *global* batch: distribute, forward,
    /// loss, backward (with overlap), deferred reduce-scatters, data-
    /// parallel gradient sync, SGD update. Returns the global loss —
    /// identical (up to rounding) to [`SerialMlp::train_step`] on the
    /// same batch.
    pub fn train_step(&mut self, global_x: &Matrix, global_t: &Matrix, lr: f32) -> f32 {
        let m = global_x.rows();
        assert_eq!(
            m % (self.grid.gd * self.grid.gz),
            0,
            "batch rows {m} must divide by gd*gz = {}",
            self.grid.gd * self.grid.gz
        );
        let x_local = distribute_input(global_x, &self.grid, false);
        let (out, pres) = self.forward_local(x_local);

        let last_transposed = (self.layers.len() - 1) % 2 == 1;
        let t_local = distribute_output(global_t, &self.grid, last_transposed);
        assert_eq!(out.shape(), t_local.shape(), "local target shape mismatch");

        // Local loss; the block is replicated across the last layer's row
        // group, so the world sum over-counts by that factor.
        let mut d = out;
        d.sub_assign(&t_local);
        let local_loss: f32 = d.as_slice().iter().map(|v| 0.5 * v * v).sum();
        let mut loss_buf = vec![local_loss];
        self.comm.all_reduce(&self.world, &mut loss_buf);
        let loss = loss_buf[0] / self.grid.row_parts(last_transposed) as f32;

        // Backward with OAR / ORS (and recompute under checkpointing).
        let mut pending: Vec<PendingGrad> = Vec::new();
        let (overlap, precision) = (self.cfg.overlap, self.cfg.precision);
        for i in (0..self.layers.len()).rev() {
            let prev_pre = if i > 0 {
                Some(self.pre_of(&pres, i - 1))
            } else {
                None
            };
            let (mut d_in, p) = self.layers[i].backward(
                &self.comm,
                &self.grid,
                &d,
                overlap,
                &mut self.tuner,
                precision,
            );
            if let Some(p) = p {
                pending.push(p);
            }
            if let Some(pre) = prev_pre {
                self.act.backprop(&pre, &mut d_in);
            }
            d = d_in;
        }
        // ORS drain + data-parallel gradient phase, timed as one unit —
        // the bucketed pipeline interleaves the drain with its own
        // collectives, so the two are not separable from outside.
        let t_sync = std::time::Instant::now();
        let data_group = self.grid.data_group().clone();
        match self.cfg.grad_sync {
            GradSyncMode::Bucketed => {
                let mut pipe = GradSyncPipeline::new(
                    self.comm.clone(),
                    data_group,
                    self.cfg.grad_bucket_elems,
                );
                if pending.is_empty() {
                    // ORS off: gradients landed synchronously during
                    // backward; feed them in the same reverse-backward
                    // order the deferred path would.
                    for i in (0..self.layers.len()).rev() {
                        pipe.push(i, self.layers[i].grad_shard().as_slice());
                    }
                } else {
                    // As each deferred Z reduce-scatter resolves, its
                    // gradient goes straight into a bucket; full buckets
                    // issue their data-parallel reduce-scatter while the
                    // remaining ORS waits are still draining.
                    for p in pending {
                        let (layer_id, grad) = p.wait();
                        self.layers[layer_id].accumulate_grad(grad);
                        pipe.push(layer_id, self.layers[layer_id].grad_shard().as_slice());
                    }
                }
                pipe.step(
                    lr,
                    &mut MlpParams {
                        layers: &mut self.layers,
                    },
                );
                for layer in &mut self.layers {
                    layer.grad_shard_mut().scale(0.0);
                }
            }
            GradSyncMode::PerTensor => {
                for p in pending {
                    let (layer_id, grad) = p.wait();
                    self.layers[layer_id].accumulate_grad(grad);
                }
                let mut grads: Vec<&mut Matrix> =
                    self.layers.iter_mut().map(|l| l.grad_shard_mut()).collect();
                sync_gradients(&self.comm, &data_group, &mut grads);
                for layer in &mut self.layers {
                    layer.apply_sgd(lr);
                }
            }
        }
        self.last_grad_sync = t_sync.elapsed().as_secs_f64();
        loss
    }

    /// Reassemble the full weights of every layer (test helper).
    pub fn gather_full_weights(&self) -> Vec<Matrix> {
        self.layers
            .iter()
            .map(|l| l.gather_full_weight(&self.comm, &self.grid))
            .collect()
    }

    /// This rank's local weight shards, one per layer, exactly as laid
    /// out by the grid (x/y tile, z-shard) — the unit of grid-sharded
    /// checkpointing in `axonn-ft`.
    pub fn weight_shards(&self) -> Vec<&Matrix> {
        self.layers.iter().map(|l| l.weight_shard()).collect()
    }

    /// Replace every layer's weights from full (global) matrices — the
    /// restore path of checkpoint/resume. Each matrix must match its
    /// layer's global `k × n` shape; slicing reuses the exact
    /// construction-time layout, so a restore is a pure copy
    /// (bit-identical weights on every rank). Gradient shards and layer
    /// caches are reset; call only at a step boundary.
    pub fn load_full_weights(&mut self, full: &[Matrix]) {
        assert_eq!(
            full.len(),
            self.layers.len(),
            "restore has {} layers, network has {}",
            full.len(),
            self.layers.len()
        );
        for (layer, w) in self.layers.iter_mut().zip(full) {
            assert_eq!(
                (layer.k, layer.n),
                w.shape(),
                "layer {} restore shape mismatch",
                layer.layer_id
            );
            *layer =
                ParallelLinear::from_full_weight(&self.grid, layer.layer_id, w, layer.transposed);
        }
    }

    /// Number of layers whose dŴ kernel the tuner has locked in.
    pub fn tuned_layers(&self) -> usize {
        self.tuner.tuned_layers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_matches_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn serial_mlp_learns_identity_map() {
        // A 1-layer linear net trained toward T = X should drive its
        // weight toward the identity.
        let mut net = SerialMlp::new(&[4, 4], Activation::Identity, 3);
        let x = Matrix::random(64, 4, 1.0, 9);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let loss = net.train_step(&x, &x, 0.01);
            assert!(loss <= last * 1.5, "loss diverged: {loss} after {last}");
            last = loss;
        }
        assert!(last < 1e-3, "final loss {last}");
        assert!(net.weights[0].approx_eq(&Matrix::eye(4), 0.05));
    }

    #[test]
    fn serial_mlp_loss_decreases_with_gelu() {
        let mut net = SerialMlp::new(&[8, 16, 8], Activation::Gelu, 4);
        let x = Matrix::random(32, 8, 1.0, 10);
        let t = Matrix::random(32, 8, 0.5, 11);
        let first = net.train_step(&x, &t, 0.005);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_step(&x, &t, 0.005);
        }
        // Random targets are not perfectly fittable; require a solid drop.
        assert!(last < 0.6 * first, "loss {first} -> {last}");
    }

    #[test]
    fn serial_gradients_match_finite_differences() {
        // Perturb one weight element and check the loss slope.
        let dims = [3, 5, 2];
        let x = Matrix::random(7, 3, 1.0, 12);
        let t = Matrix::random(7, 2, 1.0, 13);
        let base = SerialMlp::new(&dims, Activation::Gelu, 5);

        let loss_of = |net: &SerialMlp| {
            let out = net.forward(&x);
            let mut d = out;
            d.sub_assign(&t);
            d.as_slice().iter().map(|v| 0.5 * v * v).sum::<f32>()
        };

        // Analytic gradient via a tiny-lr step on a clone.
        let mut stepped = SerialMlp::new(&dims, Activation::Gelu, 5);
        let lr = 1e-6f32;
        stepped.train_step(&x, &t, lr);
        for li in 0..2 {
            let g_analytic = {
                let mut g = base.weights[li].clone();
                g.sub_assign(&stepped.weights[li]);
                g.scale(1.0 / lr);
                g
            };
            // Finite differences on a few elements.
            for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
                let h = 1e-2f32;
                let mut plus = SerialMlp::new(&dims, Activation::Gelu, 5);
                plus.weights[li][(r, c)] += h;
                let mut minus = SerialMlp::new(&dims, Activation::Gelu, 5);
                minus.weights[li][(r, c)] -= h;
                let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
                let an = g_analytic[(r, c)];
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + fd.abs().max(an.abs())),
                    "layer {li} ({r},{c}): fd {fd} vs analytic {an}"
                );
            }
        }
    }
}
