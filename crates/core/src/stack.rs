//! A complete GPT under the 4D algorithm: parallel embedding →
//! [`ParallelTransformerBlock`]s → parallel LayerNorm → vocab-parallel
//! head and cross-entropy.
//!
//! This is the "parallelizing an entire network" story of Section V-A
//! carried to a full language model on the functional plane: token rows
//! are sharded over (data, Z) at sequence boundaries, hidden features
//! over the alternating X/Y groups, and the vocabulary over the head
//! layer's column group — with the softmax computed *vocab-parallel*
//! (max and sum-exp all-reduced across the column group, the Megatron-LM
//! technique) so no rank ever materialises the full logit matrix.

use crate::gradsync::{GradSyncMode, GradSyncPipeline, ParamStore, DEFAULT_BUCKET_ELEMS};
use crate::grid::GridTopology;
use crate::layer::{OverlapConfig, ParallelLinear, PendingGrad, Precision};
use crate::transformer::{block_weight, ParallelLayerNorm, ParallelTransformerBlock};
use crate::tuner::KernelTuner;
use axonn_collectives::{Comm, ProcessGroup};
use axonn_tensor::{block_of, BlockSpec, Matrix};

/// Token embedding with the table column-sharded over the first block's
/// row group (Y): each rank holds `V × (h/gy)` and produces exactly the
/// activation slice the first block expects.
pub struct ParallelEmbedding {
    pub table: Matrix,
    pub grad: Matrix,
    pub vocab: usize,
    pub hidden: usize,
    cached_tokens: Option<Vec<usize>>,
}

impl ParallelEmbedding {
    pub fn new(grid: &GridTopology, vocab: usize, hidden: usize, seed: u64) -> Self {
        let parts = grid.row_parts(false);
        assert_eq!(hidden % parts, 0, "hidden must divide the embedding split");
        let full = block_weight(vocab, hidden, seed, 90);
        let table = block_of(&full, BlockSpec::new(1, parts, 0, grid.row_index(false)));
        let grad = Matrix::zeros(table.rows(), table.cols());
        ParallelEmbedding {
            table,
            grad,
            vocab,
            hidden,
            cached_tokens: None,
        }
    }

    /// Look up this rank's local token rows; output is
    /// `(tokens.len()) × (h/gy)`.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        let local_h = self.table.cols();
        let mut out = Matrix::zeros(tokens.len(), local_h);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.vocab, "token id {t} outside vocab {}", self.vocab);
            out.row_mut(i).copy_from_slice(self.table.row(t));
        }
        self.cached_tokens = Some(tokens.to_vec());
        out
    }

    pub fn backward(&mut self, d_out: &Matrix) {
        let tokens = self
            .cached_tokens
            .take()
            .expect("embedding backward before forward");
        for (i, &t) in tokens.iter().enumerate() {
            let g = self.grad.row_mut(t);
            for (gv, dv) in g.iter_mut().zip(d_out.row(i)) {
                *gv += dv;
            }
        }
    }

    /// Token rows are sharded over Z and data: finish the gradient
    /// reduction across those groups. The data stage folds in canonical
    /// group order so the result is bitwise comparable with the bucketed
    /// gradient pipeline.
    pub fn sync_grads(&mut self, comm: &Comm, grid: &GridTopology) {
        let mut buf = self.grad.as_slice().to_vec();
        comm.all_reduce(grid.z_group(), &mut buf);
        comm.all_reduce_linear(grid.data_group(), &mut buf);
        self.grad = Matrix::from_vec(self.grad.rows(), self.grad.cols(), buf);
    }

    /// Z-group-only gradient reduction: the bucketed pipeline performs
    /// the data-parallel stage (and the update) itself.
    pub fn sync_grads_z(&mut self, comm: &Comm, grid: &GridTopology) {
        let mut buf = self.grad.as_slice().to_vec();
        comm.all_reduce(grid.z_group(), &mut buf);
        self.grad = Matrix::from_vec(self.grad.rows(), self.grad.cols(), buf);
    }

    pub fn apply_sgd(&mut self, lr: f32) {
        self.table.axpy(-lr, &self.grad);
        self.grad.scale(0.0);
    }
}

/// Result of the vocab-parallel cross-entropy: global mean loss plus the
/// local gradient slice.
pub struct VocabCeResult {
    pub loss: f32,
    pub d_logits_local: Matrix,
}

/// Vocab-parallel mean cross-entropy over `total_rows` global rows.
///
/// `logits_local` is `(m_local × V/g)` where the vocabulary is split over
/// the head layer's column group; `targets_local` are *global* token ids
/// for this rank's rows. Row maxima and exp-sums are all-reduced across
/// the column group (Megatron-style), so the full softmax never exists on
/// one rank.
pub fn vocab_parallel_cross_entropy(
    comm: &Comm,
    group: &ProcessGroup,
    slice_index: usize,
    logits_local: &Matrix,
    targets_local: &[usize],
    total_rows: usize,
) -> VocabCeResult {
    let (rows, local_v) = logits_local.shape();
    assert_eq!(targets_local.len(), rows, "one target per local row");
    let lo = slice_index * local_v;
    let hi = lo + local_v;

    // 1. Row maxima (max all-reduce).
    let mut maxes: Vec<f32> = (0..rows)
        .map(|r| logits_local.row(r).iter().cloned().fold(f32::MIN, f32::max))
        .collect();
    comm.all_reduce_max(group, &mut maxes);

    // 2. Row exp-sums and the target logit contribution (sum all-reduce,
    // fused into one buffer).
    let mut buf = vec![0.0f32; 2 * rows];
    for r in 0..rows {
        let m = maxes[r];
        buf[r] = logits_local.row(r).iter().map(|&x| (x - m).exp()).sum();
        let t = targets_local[r];
        if t >= lo && t < hi {
            buf[rows + r] = logits_local[(r, t - lo)];
        }
    }
    comm.all_reduce(group, &mut buf);

    // 3. Loss and local gradient slice.
    let inv_n = 1.0 / total_rows as f32;
    let mut loss = 0.0f32;
    let mut d = Matrix::zeros(rows, local_v);
    for r in 0..rows {
        let m = maxes[r];
        let denom = buf[r];
        let target_logit = buf[rows + r];
        loss += -(target_logit - m - denom.ln()) * inv_n;
        let t = targets_local[r];
        let dr = d.row_mut(r);
        for (c, dv) in dr.iter_mut().enumerate() {
            let p = (logits_local[(r, c)] - m).exp() / denom;
            let onehot = if lo + c == t { 1.0 } else { 0.0 };
            *dv = (p - onehot) * inv_n;
        }
    }
    VocabCeResult {
        loss,
        d_logits_local: d,
    }
}

/// The full 4D-parallel GPT.
pub struct TransformerStack {
    pub emb: ParallelEmbedding,
    pub blocks: Vec<ParallelTransformerBlock>,
    pub final_ln: ParallelLayerNorm,
    pub head: ParallelLinear,
    pub vocab: usize,
    pub hidden: usize,
    pub seq_len: usize,
    tuner: KernelTuner,
    overlap: OverlapConfig,
    world: ProcessGroup,
    grad_sync: GradSyncMode,
    grad_bucket_elems: usize,
}

/// [`ParamStore`] over every parameter tensor of the stack. Tensor ids,
/// with `B = blocks.len()` and `base = 4B + 1`:
///
/// - `0 .. 4B`          FC weight shards (block-major: qkv, proj, fc1, fc2),
/// - `4B`               the head weight shard,
/// - `base + 2k [+ 1]`  gain [bias] of norm `k` (`k = 2b` → `ln1` of
///   block `b`, `k = 2b + 1` → `ln2`, `k = 2B` → the final LayerNorm),
/// - `base + 4B + 2`    the embedding table shard.
struct StackParams<'a> {
    blocks: &'a mut [ParallelTransformerBlock],
    final_ln: &'a mut ParallelLayerNorm,
    head: &'a mut ParallelLinear,
    emb: &'a mut ParallelEmbedding,
}

impl StackParams<'_> {
    fn param(&self, tensor: usize) -> &Matrix {
        let nb = self.blocks.len();
        let base = 4 * nb + 1;
        if tensor < 4 * nb {
            let b = &self.blocks[tensor / 4];
            match tensor % 4 {
                0 => b.qkv.weight_shard(),
                1 => b.proj.weight_shard(),
                2 => b.fc1.weight_shard(),
                _ => b.fc2.weight_shard(),
            }
        } else if tensor == 4 * nb {
            self.head.weight_shard()
        } else if tensor < base + 2 * (2 * nb + 1) {
            let k = (tensor - base) / 2;
            let ln = if k == 2 * nb {
                &*self.final_ln
            } else if k.is_multiple_of(2) {
                &self.blocks[k / 2].ln1
            } else {
                &self.blocks[k / 2].ln2
            };
            if (tensor - base).is_multiple_of(2) {
                &ln.gain
            } else {
                &ln.bias
            }
        } else {
            debug_assert_eq!(tensor, base + 4 * nb + 2, "unknown tensor id");
            &self.emb.table
        }
    }

    fn param_mut(&mut self, tensor: usize) -> &mut Matrix {
        let nb = self.blocks.len();
        let base = 4 * nb + 1;
        if tensor < 4 * nb {
            let b = &mut self.blocks[tensor / 4];
            match tensor % 4 {
                0 => b.qkv.weight_shard_mut(),
                1 => b.proj.weight_shard_mut(),
                2 => b.fc1.weight_shard_mut(),
                _ => b.fc2.weight_shard_mut(),
            }
        } else if tensor == 4 * nb {
            self.head.weight_shard_mut()
        } else if tensor < base + 2 * (2 * nb + 1) {
            let k = (tensor - base) / 2;
            let ln = if k == 2 * nb {
                &mut *self.final_ln
            } else if k.is_multiple_of(2) {
                &mut self.blocks[k / 2].ln1
            } else {
                &mut self.blocks[k / 2].ln2
            };
            if (tensor - base).is_multiple_of(2) {
                &mut ln.gain
            } else {
                &mut ln.bias
            }
        } else {
            debug_assert_eq!(tensor, base + 4 * nb + 2, "unknown tensor id");
            &mut self.emb.table
        }
    }
}

impl ParamStore for StackParams<'_> {
    fn read(&self, tensor: usize, range: std::ops::Range<usize>, dst: &mut [f32]) {
        dst.copy_from_slice(&self.param(tensor).as_slice()[range]);
    }
    fn write(&mut self, tensor: usize, range: std::ops::Range<usize>, src: &[f32]) {
        self.param_mut(tensor).as_mut_slice()[range].copy_from_slice(src);
    }
}

impl TransformerStack {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grid: &GridTopology,
        vocab: usize,
        hidden: usize,
        n_heads: usize,
        n_layers: usize,
        seq_len: usize,
        seed: u64,
        overlap: OverlapConfig,
    ) -> Self {
        assert_eq!(
            vocab % grid.col_parts(false),
            0,
            "vocab must divide the head column split"
        );
        let blocks = (0..n_layers)
            .map(|i| {
                ParallelTransformerBlock::new(
                    grid,
                    hidden,
                    n_heads,
                    seq_len,
                    seed.wrapping_add(1 + i as u64),
                    4 * i,
                )
            })
            .collect();
        let head_w = block_weight(hidden, vocab, seed, 91);
        TransformerStack {
            emb: ParallelEmbedding::new(grid, vocab, hidden, seed),
            blocks,
            final_ln: ParallelLayerNorm::new(grid, hidden, false),
            head: ParallelLinear::from_full_weight(grid, 4 * n_layers, &head_w, false),
            vocab,
            hidden,
            seq_len,
            tuner: KernelTuner::new(false),
            overlap,
            world: ProcessGroup::new((0..grid.total_ranks()).collect()),
            grad_sync: GradSyncMode::default(),
            grad_bucket_elems: DEFAULT_BUCKET_ELEMS,
        }
    }

    /// Select the data-parallel gradient phase (bucketed pipeline vs the
    /// per-tensor oracle). Both are bit-identical for every grid.
    pub fn set_grad_sync(&mut self, mode: GradSyncMode) {
        self.grad_sync = mode;
    }

    /// Override the bucket capacity (elements) of the bucketed pipeline.
    pub fn set_grad_bucket_elems(&mut self, elems: usize) {
        self.grad_bucket_elems = elems;
    }

    /// This rank's slice of the global token list (rows split over data
    /// then Z at sequence boundaries).
    pub fn local_tokens(grid: &GridTopology, tokens: &[usize]) -> Vec<usize> {
        let per_d = tokens.len() / grid.gd;
        let per_z = per_d / grid.gz;
        let (_, _, z, d) = grid.coords;
        let start = d * per_d + z * per_z;
        tokens[start..start + per_z].to_vec()
    }

    /// One training step on the global `(tokens, targets)` batch
    /// (`B·seq_len` ids each, `B` divisible by `gd·gz`). Returns the
    /// global mean cross-entropy.
    pub fn train_step(
        &mut self,
        comm: &Comm,
        grid: &GridTopology,
        tokens: &[usize],
        targets: &[usize],
        lr: f32,
    ) -> f32 {
        assert_eq!(tokens.len(), targets.len());
        assert_eq!(tokens.len() % self.seq_len, 0, "whole sequences only");
        let seqs = tokens.len() / self.seq_len;
        assert_eq!(
            seqs % (grid.gd * grid.gz),
            0,
            "sequences must divide over gd*gz"
        );
        let my_tokens = Self::local_tokens(grid, tokens);
        let my_targets = Self::local_tokens(grid, targets);

        // Forward.
        let mut x = self.emb.forward(&my_tokens);
        for b in &mut self.blocks {
            x = b.forward(comm, grid, &x);
        }
        let x = self.final_ln.forward(comm, grid, &x);
        let logits = self.head.forward(comm, grid, x, Precision::F32);

        // Vocab-parallel loss over the head's column group.
        let col_group = grid.col_group(false).clone();
        let ce = vocab_parallel_cross_entropy(
            comm,
            &col_group,
            grid.col_index(false),
            &logits,
            &my_targets,
            tokens.len(),
        );

        // Backward.
        let mut pending: Vec<PendingGrad> = Vec::new();
        let (d_ln_in, p) = self.head.backward(
            comm,
            grid,
            &ce.d_logits_local,
            self.overlap,
            &mut self.tuner,
            Precision::F32,
        );
        if let Some(p) = p {
            pending.push(p);
        }
        let mut d = self.final_ln.backward(comm, grid, &d_ln_in);
        for b in self.blocks.iter_mut().rev() {
            let (dx, ps) = b.backward(comm, grid, &d, self.overlap, &mut self.tuner);
            pending.extend(ps);
            d = dx;
        }
        self.emb.backward(&d);

        // Deferred reduce-scatters (ORS), then gradient synchronisation.
        let dg = grid.data_group().clone();
        match self.grad_sync {
            GradSyncMode::Bucketed => {
                // Reverse-backward feed: as each tensor's Z reduction
                // resolves it goes straight into a bucket, so full
                // buckets' data-parallel reduce-scatters stream while
                // later ORS waits (and the norm/embedding Z stages) are
                // still draining. Tensor ids per [`StackParams`].
                let nb = self.blocks.len();
                let base = 4 * nb + 1;
                let mut pipe = GradSyncPipeline::new(comm.clone(), dg, self.grad_bucket_elems);
                let mut it = pending.into_iter();
                if let Some(p) = it.next() {
                    let (id, grad) = p.wait();
                    self.fc_by_id(id).accumulate_grad(grad);
                }
                pipe.push(4 * nb, self.head.grad_shard().as_slice());
                self.final_ln.sync_param_grads_z(comm, grid);
                pipe.push(base + 2 * (2 * nb), self.final_ln.gain_grad.as_slice());
                pipe.push(base + 2 * (2 * nb) + 1, self.final_ln.bias_grad.as_slice());
                for bi in (0..nb).rev() {
                    // The block's four deferred reduce-scatters resolve
                    // in backward order: fc2, fc1, proj, qkv.
                    for local in [3usize, 2, 1, 0] {
                        let id = 4 * bi + local;
                        if let Some(p) = it.next() {
                            let (pid, grad) = p.wait();
                            debug_assert_eq!(pid, id, "pending order mismatch");
                            self.fc_by_id(pid).accumulate_grad(grad);
                        }
                        pipe.push(id, self.fc_by_id(id).grad_shard().as_slice());
                    }
                    let b = &mut self.blocks[bi];
                    b.ln2.sync_param_grads_z(comm, grid);
                    b.ln1.sync_param_grads_z(comm, grid);
                    let (k1, k2) = (2 * bi, 2 * bi + 1);
                    pipe.push(base + 2 * k2, b.ln2.gain_grad.as_slice());
                    pipe.push(base + 2 * k2 + 1, b.ln2.bias_grad.as_slice());
                    pipe.push(base + 2 * k1, b.ln1.gain_grad.as_slice());
                    pipe.push(base + 2 * k1 + 1, b.ln1.bias_grad.as_slice());
                }
                self.emb.sync_grads_z(comm, grid);
                pipe.push(base + 4 * nb + 2, self.emb.grad.as_slice());
                pipe.step(
                    lr,
                    &mut StackParams {
                        blocks: &mut self.blocks,
                        final_ln: &mut self.final_ln,
                        head: &mut self.head,
                        emb: &mut self.emb,
                    },
                );
                // Zero the accumulators `apply_sgd` used to clear.
                for b in &mut self.blocks {
                    b.ln1.gain_grad.scale(0.0);
                    b.ln1.bias_grad.scale(0.0);
                    b.ln2.gain_grad.scale(0.0);
                    b.ln2.bias_grad.scale(0.0);
                    for l in b.fc_layers_mut() {
                        l.grad_shard_mut().scale(0.0);
                    }
                }
                self.final_ln.gain_grad.scale(0.0);
                self.final_ln.bias_grad.scale(0.0);
                self.head.grad_shard_mut().scale(0.0);
                self.emb.grad.scale(0.0);
            }
            GradSyncMode::PerTensor => {
                for p in pending {
                    let (id, grad) = p.wait();
                    self.fc_by_id(id).accumulate_grad(grad);
                }
                {
                    let mut grads: Vec<&mut Matrix> = Vec::new();
                    for b in &mut self.blocks {
                        for l in b.fc_layers_mut() {
                            grads.push(l.grad_shard_mut());
                        }
                    }
                    grads.push(self.head.grad_shard_mut());
                    crate::dataparallel::sync_gradients(comm, &dg, &mut grads);
                }
                for b in &mut self.blocks {
                    b.sync_norm_grads(comm, grid);
                }
                self.final_ln.sync_param_grads(comm, grid);
                self.emb.sync_grads(comm, grid);

                // Update.
                for b in &mut self.blocks {
                    b.apply_sgd(lr);
                }
                self.final_ln.apply_sgd(lr);
                self.head.apply_sgd(lr);
                self.emb.apply_sgd(lr);
            }
        }

        // Each rank's CE covered only its (Z, data) row slice (already
        // scaled by 1/total_rows); sum the distinct slices across the
        // world. Every slice is replicated gx·gy times.
        let mut total = vec![ce.loss];
        comm.all_reduce(&self.world, &mut total);
        total[0] / (grid.gx * grid.gy) as f32
    }

    fn fc_by_id(&mut self, layer_id: usize) -> &mut ParallelLinear {
        if layer_id == 4 * self.blocks.len() {
            return &mut self.head;
        }
        self.blocks[layer_id / 4].fc_mut(layer_id % 4)
    }
}
