//! Deterministic fault plans: *what goes wrong, when* — fixed up front
//! so every failure a test or experiment injects is exactly
//! reproducible.
//!
//! A [`FaultPlan`] scripts three failure modes, each keyed by the
//! supervisor's attempt index so a fault fires in the world it targets
//! and never again after the restart:
//!
//! - **kills** — rank `r` dies at the top of step `s` (panics with
//!   [`InjectedKill`], which the supervisor classifies as restartable);
//! - **drops** — the nth message on a link is lost in transit (the
//!   receiver times out into `CommError::PeerLost`);
//! - **stalls** — a link deposits extra virtual latency once (timed
//!   worlds observe a slow link, nothing fails);
//! - **wall stalls** — a link holds one delivery back in *wall* time,
//!   leaving the receiver genuinely blocked (what the straggler
//!   watchdog exists to catch).

use axonn_collectives::{DropRule, FaultConfig, InjectedKill, StallRule, WallStallRule};
use std::time::Duration;

/// A scripted rank kill: in attempt `attempt`, rank `rank` dies at the
/// top of step `step` (before computing it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillRule {
    pub attempt: u64,
    pub rank: usize,
    pub step: u64,
}

/// A deterministic schedule of injected faults for a supervised run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub kills: Vec<KillRule>,
    pub drops: Vec<(u64, DropRule)>,
    pub stalls: Vec<(u64, StallRule)>,
    pub wall_stalls: Vec<(u64, WallStallRule)>,
    /// Recv timeout installed in every attempt's transport (`None` keeps
    /// the collectives' default).
    pub recv_timeout: Option<Duration>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn kill(mut self, attempt: u64, rank: usize, step: u64) -> Self {
        self.kills.push(KillRule {
            attempt,
            rank,
            step,
        });
        self
    }

    pub fn drop_message(mut self, attempt: u64, rule: DropRule) -> Self {
        self.drops.push((attempt, rule));
        self
    }

    pub fn stall_link(mut self, attempt: u64, rule: StallRule) -> Self {
        self.stalls.push((attempt, rule));
        self
    }

    /// Hold one delivery on a link back in wall time (the receiver stays
    /// blocked in its receive for the rule's duration).
    pub fn stall_link_wall(mut self, attempt: u64, rule: WallStallRule) -> Self {
        self.wall_stalls.push((attempt, rule));
        self
    }

    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// A seeded schedule of `n_kills` kills, one per attempt: attempt `a`
    /// (for `a < n_kills`) loses a pseudo-random rank at a pseudo-random
    /// step in `1..total_steps`. Derived via SplitMix64, so the same seed
    /// always scripts the same failures.
    pub fn seeded_kills(seed: u64, world_size: usize, total_steps: u64, n_kills: usize) -> Self {
        assert!(world_size > 0 && total_steps > 1, "nothing to kill");
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut plan = FaultPlan::none();
        for attempt in 0..n_kills as u64 {
            let rank = (splitmix64(&mut state) % world_size as u64) as usize;
            let step = 1 + splitmix64(&mut state) % (total_steps - 1);
            plan = plan.kill(attempt, rank, step);
        }
        plan
    }

    /// The transport-level faults (drops, stalls, timeout) scheduled for
    /// one attempt, in [`FaultConfig`] form for `CommWorld`.
    pub fn transport_config(&self, attempt: u64) -> FaultConfig {
        let mut cfg = FaultConfig::none();
        for (a, rule) in &self.drops {
            if *a == attempt {
                cfg = cfg.with_drop(*rule);
            }
        }
        for (a, rule) in &self.stalls {
            if *a == attempt {
                cfg = cfg.with_stall(*rule);
            }
        }
        for (a, rule) in &self.wall_stalls {
            if *a == attempt {
                cfg = cfg.with_wall_stall(*rule);
            }
        }
        if let Some(t) = self.recv_timeout {
            cfg = cfg.with_recv_timeout(t);
        }
        cfg
    }

    /// Scheduled kill for `(attempt, rank, step)`, if any — the rank body
    /// calls this at every step boundary and dies here when scripted.
    ///
    /// # Panics
    /// With an [`InjectedKill`] payload when a kill matches.
    pub fn check_kill(&self, attempt: u64, rank: usize, step: u64) {
        if self
            .kills
            .iter()
            .any(|k| k.attempt == attempt && k.rank == rank && k.step == step)
        {
            std::panic::panic_any(InjectedKill { rank, step });
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_kill_fires_only_on_exact_match() {
        let plan = FaultPlan::none().kill(1, 2, 5);
        plan.check_kill(0, 2, 5); // wrong attempt
        plan.check_kill(1, 1, 5); // wrong rank
        plan.check_kill(1, 2, 4); // wrong step
        let payload = std::panic::catch_unwind(|| plan.check_kill(1, 2, 5)).unwrap_err();
        let kill = payload.downcast_ref::<InjectedKill>().unwrap();
        assert_eq!((kill.rank, kill.step), (2, 5));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded_kills(7, 4, 10, 3);
        let b = FaultPlan::seeded_kills(7, 4, 10, 3);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.kills.len(), 3);
        for (i, k) in a.kills.iter().enumerate() {
            assert_eq!(k.attempt, i as u64);
            assert!(k.rank < 4);
            assert!(k.step >= 1 && k.step < 10);
        }
        let c = FaultPlan::seeded_kills(8, 4, 10, 3);
        assert_ne!(a.kills, c.kills, "different seeds should differ");
    }

    #[test]
    fn transport_config_selects_by_attempt() {
        let plan = FaultPlan::none()
            .drop_message(
                0,
                DropRule {
                    src: 0,
                    dst: 1,
                    nth: 1,
                },
            )
            .stall_link(
                1,
                StallRule {
                    src: 1,
                    dst: 0,
                    seconds: 2.0,
                },
            )
            .with_recv_timeout(Duration::from_millis(50));
        let a0 = plan.transport_config(0);
        assert_eq!(a0.drops.len(), 1);
        assert!(a0.stalls.is_empty());
        let a1 = plan.transport_config(1);
        assert!(a1.drops.is_empty());
        assert_eq!(a1.stalls.len(), 1);
        assert_eq!(a1.recv_timeout, Some(Duration::from_millis(50)));
    }
}
