//! Grid-sharded weight layout: the pure math of slicing a full parameter
//! into per-rank shards for a [`Grid4d`] and reassembling it — including
//! for a *different* grid than the one that wrote it (resharding).
//!
//! The layout mirrors `axonn_core::ParallelLinear::from_full_weight`
//! exactly: a layer's `k × n` weight is tiled into `g_in × g_out` blocks
//! (rows over Y, columns over X for even layers; roles swapped for odd,
//! "transposed" layers — Section V-A's alternation), and each block is
//! further row-sharded `G_z` ways. Data-parallel replicas (`d > 0`) hold
//! identical copies, so reassembly only reads the `d = 0` plane.

use axonn_perfmodel::Grid4d;
use axonn_tensor::{assemble_blocks, block_of, concat_rows, shard_rows, BlockSpec, Matrix};

/// Whether layer `i` runs with the X/Y roles exchanged (odd layers do).
pub fn layer_transposed(layer_idx: usize) -> bool {
    layer_idx % 2 == 1
}

/// Number of row blocks (`g_in`) a layer's weight is split into.
pub fn row_parts(grid: &Grid4d, transposed: bool) -> usize {
    if transposed {
        grid.gx
    } else {
        grid.gy
    }
}

/// Number of column blocks (`g_out`) a layer's weight is split into.
pub fn col_parts(grid: &Grid4d, transposed: bool) -> usize {
    if transposed {
        grid.gy
    } else {
        grid.gx
    }
}

/// The shard of `full` that rank `rank` of `grid` holds for a layer with
/// the given transpose flag — bit-for-bit the matrix
/// `ParallelLinear::from_full_weight` would store on that rank.
pub fn shard_layer(full: &Matrix, grid: &Grid4d, rank: usize, transposed: bool) -> Matrix {
    let (x, y, z, _d) = grid.coords_of(rank);
    let (row_idx, col_idx) = if transposed { (x, y) } else { (y, x) };
    let block = block_of(
        full,
        BlockSpec::new(
            row_parts(grid, transposed),
            col_parts(grid, transposed),
            row_idx,
            col_idx,
        ),
    );
    shard_rows(&block, grid.gz, z)
}

/// Reassemble a full layer weight from per-rank shards. `shard_of(rank)`
/// must return the shard written by that rank; only `d = 0` ranks are
/// consulted (replicas are identical).
pub fn assemble_layer<F>(grid: &Grid4d, transposed: bool, mut shard_of: F) -> Matrix
where
    F: FnMut(usize) -> Matrix,
{
    let g_in = row_parts(grid, transposed);
    let g_out = col_parts(grid, transposed);
    let mut blocks = Vec::with_capacity(g_in * g_out);
    for row_idx in 0..g_in {
        for col_idx in 0..g_out {
            let (x, y) = if transposed {
                (row_idx, col_idx)
            } else {
                (col_idx, row_idx)
            };
            let z_shards: Vec<Matrix> = (0..grid.gz)
                .map(|z| shard_of(grid.rank_of(x, y, z, 0)))
                .collect();
            blocks.push(concat_rows(&z_shards));
        }
    }
    assemble_blocks(&blocks, g_in, g_out)
}

/// Whether `grid` can legally run an MLP with the given global feature
/// `dims` and batch size: every layer's weight must tile evenly
/// (`k % g_in`, `n % g_out`, `(k/g_in) % G_z` — the same divisibility
/// `from_full_weight` asserts) and the batch must split over
/// `G_data · G_z`.
pub fn grid_fits(grid: &Grid4d, dims: &[usize], batch_rows: usize) -> bool {
    if !batch_rows.is_multiple_of(grid.gd * grid.gz) {
        return false;
    }
    (0..dims.len().saturating_sub(1)).all(|i| {
        let t = layer_transposed(i);
        let g_in = row_parts(grid, t);
        let g_out = col_parts(grid, t);
        dims[i].is_multiple_of(g_in)
            && dims[i + 1].is_multiple_of(g_out)
            && (dims[i] / g_in).is_multiple_of(grid.gz)
    })
}

/// All grids over exactly `gpus` ranks that can resume a run with these
/// `dims` and batch size — `Grid4d::enumerate` filtered by
/// [`grid_fits`]. This is what elastic restart chooses from when the
/// surviving allocation is smaller than the original.
pub fn legal_resume_grids(dims: &[usize], batch_rows: usize, gpus: usize) -> Vec<Grid4d> {
    Grid4d::enumerate(gpus)
        .into_iter()
        .filter(|g| grid_fits(g, dims, batch_rows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_then_assemble_is_identity() {
        let full = Matrix::random(8, 12, 1.0, 7);
        for &transposed in &[false, true] {
            for grid in [
                Grid4d::new(2, 2, 1, 1),
                Grid4d::new(1, 2, 2, 1),
                Grid4d::new(2, 1, 2, 2),
                Grid4d::new(4, 1, 2, 1),
            ] {
                let shards: Vec<Matrix> = (0..grid.gpus())
                    .map(|r| shard_layer(&full, &grid, r, transposed))
                    .collect();
                let back = assemble_layer(&grid, transposed, |r| shards[r].clone());
                assert_eq!(
                    back.as_slice(),
                    full.as_slice(),
                    "grid {grid} transposed={transposed}"
                );
            }
        }
    }

    #[test]
    fn replicas_hold_identical_shards() {
        let full = Matrix::random(4, 8, 1.0, 3);
        let grid = Grid4d::new(2, 1, 1, 2);
        for r in 0..grid.gpus() {
            let (x, y, z, _d) = grid.coords_of(r);
            let d0 = grid.rank_of(x, y, z, 0);
            assert_eq!(
                shard_layer(&full, &grid, r, false).as_slice(),
                shard_layer(&full, &grid, d0, false).as_slice()
            );
        }
    }

    #[test]
    fn grid_fits_enforces_divisibility() {
        let dims = [8, 16, 8];
        assert!(grid_fits(&Grid4d::new(2, 2, 1, 1), &dims, 4));
        assert!(grid_fits(&Grid4d::new(1, 2, 2, 1), &dims, 4));
        // Batch must divide by gd*gz.
        assert!(!grid_fits(&Grid4d::new(1, 2, 2, 1), &dims, 3));
        // dims[0]=8 cannot split 16 ways along rows.
        assert!(!grid_fits(&Grid4d::new(1, 16, 1, 1), &dims, 16));
    }

    #[test]
    fn legal_resume_grids_subset_of_enumeration() {
        let grids = legal_resume_grids(&[8, 16, 8], 8, 4);
        assert!(!grids.is_empty());
        assert!(grids.iter().all(|g| g.gpus() == 4));
        assert!(grids.iter().all(|g| grid_fits(g, &[8, 16, 8], 8)));
        // An illegal shape (e.g. gy=4 with dims[0]=8 ok, but gz=4 with
        // 8/1/4 rows ok too) — spot-check that something gets filtered
        // for a small dim set.
        let tight = legal_resume_grids(&[2, 4, 2], 4, 4);
        assert!(tight.len() < Grid4d::enumerate(4).len());
    }
}
