//! Fault-tolerant training for the AxoNN reproduction (`axonn-ft`).
//!
//! Production runs on Frontier/Alps-scale machines lose nodes; the paper
//! stack's answer is sharded checkpoints plus supervised restart. This
//! crate provides the three layers of that story on top of the threaded
//! SPMD runtime:
//!
//! - [`layout`] — the pure math of grid-sharded weights: slice a full
//!   parameter into exactly the per-rank shards `Network4d` holds, and
//!   reassemble them — including for a *different* legal grid
//!   (resharding / elastic resume).
//! - [`checkpoint`] — the durable form: per-rank shard files plus a
//!   rank-0 manifest (grid shape, step, seed, per-shard FNV-1a64
//!   checksums) committed by atomic rename; loading verifies every
//!   checksum and fails loudly on corruption.
//! - [`plan`] and [`supervisor`] — deterministic fault schedules (kills,
//!   message drops, link stalls) and the checkpoint-aware training loop
//!   that runs under `axonn_exec::run_spmd_supervised`, restarting from
//!   the last manifest and recording the recovery lifecycle through
//!   `axonn-trace`.

pub mod checkpoint;
pub mod layout;
pub mod plan;
pub mod supervisor;

pub use checkpoint::{
    save_checkpoint, CheckpointStore, CkptError, Manifest, ShardEntry, ShardFile, MANIFEST_MAGIC,
    MANIFEST_VERSION, SHARD_MAGIC,
};
pub use layout::{assemble_layer, grid_fits, layer_transposed, legal_resume_grids, shard_layer};
pub use plan::{FaultPlan, KillRule};
pub use supervisor::{train_supervised, RecoveryPolicy, TrainOutcome, TrainSpec};
