//! Checkpoint-aware supervised training: run a 4D-parallel MLP in
//! checkpoint epochs under `axonn_exec::run_spmd_supervised`, restarting
//! from the latest durable manifest after every failure — on the same
//! grid, or (elastic resume) on a different legal one.
//!
//! The recovery contract, asserted by the root `fault_tolerance` tests:
//! resuming on the *same* grid is bit-identical to an uninterrupted run
//! (training is Markovian in the weights and the batch schedule, and the
//! shard/assemble path is a pure copy); resuming on a *different* grid
//! restores bit-identical weights and then diverges only by collective
//! summation order, staying within floating-point tolerance.

use crate::checkpoint::{save_checkpoint, CheckpointStore};
use crate::layout::grid_fits;
use crate::plan::FaultPlan;
use axonn_core::{Activation, GridTopology, Network4d, OverlapConfig};
use axonn_exec::{run_spmd_supervised, AttemptSpec, RecoveryLog};
use axonn_perfmodel::Grid4d;
use axonn_tensor::Matrix;
use axonn_trace::RankTrace;
use std::path::Path;
use std::sync::Arc;

/// What to train: the global model and batch schedule, independent of
/// any grid. `batch(step)` must be a pure function of the step so a
/// resumed run replays the exact batches the original would have seen.
#[derive(Clone)]
pub struct TrainSpec {
    pub dims: Vec<usize>,
    pub act: Activation,
    pub seed: u64,
    pub lr: f32,
    pub total_steps: u64,
    /// Save a checkpoint every this many steps (0 disables saving).
    pub checkpoint_every: u64,
    pub batch: Arc<dyn Fn(u64) -> (Matrix, Matrix) + Send + Sync>,
}

/// How to recover: which grid each attempt runs on, how many restarts to
/// tolerate, and which faults to inject.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Grid for attempt `a` is `grids[min(a, len-1)]` — a single entry
    /// means "always relaunch the same shape"; appending a smaller grid
    /// scripts an elastic shrink on the first restart.
    pub grids: Vec<Grid4d>,
    /// Restarts allowed beyond the first attempt.
    pub max_restarts: u64,
    pub plan: FaultPlan,
}

/// Result of a supervised training run that eventually completed.
pub struct TrainOutcome {
    /// `(step, loss)` for every step the *successful* attempt executed —
    /// starting at the resume step, not 0, when it restarted from a
    /// checkpoint.
    pub losses: Vec<(u64, f32)>,
    /// Full (gathered) weights of every layer after the last step.
    pub weights: Vec<Matrix>,
    /// Worlds launched, including the successful one.
    pub attempts: u64,
    /// The recovery lifecycle (failures, restarts, checkpoints, resumes,
    /// reshards) as a trace, exportable to Chrome trace JSON.
    pub trace: RankTrace,
}

/// Train under supervision, checkpointing to `dir` and restarting from
/// the latest manifest after every failure, per `policy`. Returns an
/// error if the policy gives up (restart budget exhausted or the
/// checkpoint store turned out to be unusable).
///
/// Kernel auto-tuning is deliberately off in the rank bodies: the tuner
/// may reroute a collective after a restart, changing summation order
/// and breaking the same-grid bit-identity contract.
pub fn train_supervised(
    spec: &TrainSpec,
    policy: &RecoveryPolicy,
    dir: impl AsRef<Path>,
) -> Result<TrainOutcome, String> {
    assert!(!policy.grids.is_empty(), "policy needs at least one grid");
    assert!(spec.dims.len() >= 2, "need at least one layer");
    let store = Arc::new(CheckpointStore::new(dir.as_ref()));
    let batch_rows = (spec.batch)(0).0.rows();
    for grid in &policy.grids {
        assert!(
            grid_fits(grid, &spec.dims, batch_rows),
            "grid {grid} cannot run dims {:?} with batch {batch_rows}",
            spec.dims
        );
    }

    let log = RecoveryLog::new();
    let mut policy_err: Option<String> = None;
    let run = run_spmd_supervised(&log, |attempt, failure| {
        if attempt > policy.max_restarts {
            policy_err = Some(format!(
                "gave up after {attempt} attempt(s); last failure: {}",
                failure.map_or_else(|| "<none>".to_string(), |f| f.to_string())
            ));
            return None;
        }
        let grid = policy.grids[(attempt as usize).min(policy.grids.len() - 1)];
        // Resume from the latest durable checkpoint, if any (a manifest
        // may also predate this process — warm starts are free).
        let (start_step, restore) = match store.latest_step() {
            Some(step) => {
                let manifest = match store.manifest(step) {
                    Ok(m) => m,
                    Err(e) => {
                        policy_err = Some(e.to_string());
                        return None;
                    }
                };
                if manifest.grid() != grid {
                    log.event("reshard", attempt, step, 0);
                }
                let full = match store.load_full_layers(&manifest) {
                    Ok(f) => f,
                    Err(e) => {
                        policy_err = Some(e.to_string());
                        return None;
                    }
                };
                log.event("resume", attempt, step, 0);
                (step, Some(Arc::new(full)))
            }
            None => (0, None),
        };

        let spec = spec.clone();
        let faults = policy.plan.transport_config(attempt);
        let plan = policy.plan.clone();
        let store = store.clone();
        let log = log.clone();
        let body = move |comm: axonn_collectives::Comm| {
            let rank = comm.rank();
            let topo = GridTopology::new(grid.gx, grid.gy, grid.gz, grid.gd, rank);
            let mut net = Network4d::new(
                comm,
                topo,
                &spec.dims,
                spec.act,
                spec.seed,
                OverlapConfig::all(),
                false, // kernel tuning off: keeps summation order stable
            );
            if let Some(full) = &restore {
                net.load_full_weights(full);
            }
            let mut losses = Vec::new();
            for step in start_step..spec.total_steps {
                plan.check_kill(attempt, rank, step);
                let (x, t) = (spec.batch)(step);
                let loss = net.train_step(&x, &t, spec.lr);
                losses.push((step, loss));
                let done = step + 1; // steps completed = resume point
                if spec.checkpoint_every > 0
                    && done % spec.checkpoint_every == 0
                    && done < spec.total_steps
                {
                    let shards = net.weight_shards();
                    save_checkpoint(
                        net.comm(),
                        &grid,
                        &store,
                        done,
                        spec.seed,
                        &spec.dims,
                        batch_rows,
                        &shards,
                    )
                    .unwrap_or_else(|e| panic!("checkpoint at step {done} failed: {e}"));
                    if rank == 0 {
                        log.event("checkpoint", attempt, done, 0);
                    }
                }
            }
            let weights = net.gather_full_weights();
            (losses, weights)
        };
        Some(AttemptSpec {
            world_size: grid.gpus(),
            faults,
            body: Arc::new(body),
        })
    });

    match run.results {
        Some(mut results) => {
            let (losses, weights) = results.swap_remove(0);
            Ok(TrainOutcome {
                losses,
                weights,
                attempts: run.attempts,
                trace: log.finish(),
            })
        }
        None => Err(policy_err.unwrap_or_else(|| "supervisor gave up".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("axonn_ft_sup_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy_spec(total_steps: u64, checkpoint_every: u64) -> TrainSpec {
        TrainSpec {
            dims: vec![8, 16, 8],
            act: Activation::Gelu,
            seed: 11,
            lr: 0.02,
            total_steps,
            checkpoint_every,
            batch: Arc::new(|step| {
                (
                    Matrix::random(4, 8, 1.0, 1000 + step),
                    Matrix::random(4, 8, 1.0, 2000 + step),
                )
            }),
        }
    }

    #[test]
    fn healthy_run_completes_in_one_attempt() {
        let dir = tmpdir("healthy");
        let out = train_supervised(
            &toy_spec(4, 2),
            &RecoveryPolicy {
                grids: vec![Grid4d::new(2, 1, 1, 1)],
                max_restarts: 0,
                plan: FaultPlan::none(),
            },
            &dir,
        )
        .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.losses.len(), 4);
        assert_eq!(out.weights.len(), 2);
        // Checkpoint at step 2 exists; the would-be step-4 save is
        // skipped (end of run).
        assert_eq!(CheckpointStore::new(&dir).latest_step(), Some(2));
        let kinds = out.trace.kind_signature();
        assert_eq!(kinds, vec!["recovery:checkpoint", "recovery:completed"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_restart_resumes_from_checkpoint() {
        let dir = tmpdir("kill");
        let out = train_supervised(
            &toy_spec(6, 2),
            &RecoveryPolicy {
                grids: vec![Grid4d::new(2, 1, 1, 1)],
                max_restarts: 1,
                plan: FaultPlan::none().kill(0, 1, 3),
            },
            &dir,
        )
        .unwrap();
        assert_eq!(out.attempts, 2);
        // Attempt 0 checkpointed after step 2 and died at step 3; the
        // relaunch resumes at step 2.
        assert_eq!(out.losses.first().map(|&(s, _)| s), Some(2));
        assert_eq!(out.losses.last().map(|&(s, _)| s), Some(5));
        let kinds = out.trace.kind_signature();
        assert_eq!(
            kinds,
            vec![
                "recovery:checkpoint",       // attempt 0, step 2
                "recovery:failure_detected", // kill at step 3
                "recovery:resume",           // from step 2
                "recovery:restart",
                "recovery:checkpoint", // attempt 1, step 4
                "recovery:completed",
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_budget_exhaustion_reports_last_failure() {
        let dir = tmpdir("budget");
        let err = train_supervised(
            &toy_spec(4, 2),
            &RecoveryPolicy {
                grids: vec![Grid4d::new(2, 1, 1, 1)],
                max_restarts: 0,
                plan: FaultPlan::none().kill(0, 0, 1),
            },
            &dir,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("gave up"), "unexpected error: {err}");
        assert!(err.contains("injected kill"), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
