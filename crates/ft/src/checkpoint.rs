//! Grid-sharded checkpoints: each rank serializes exactly its own weight
//! shards; rank 0 writes a manifest describing the grid, step, seed and
//! per-shard checksums; the loader verifies every checksum and can
//! reassemble the full parameters to reshard for a *different* legal
//! grid (elastic resume).
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! <dir>/step-00000004/shard-r0000.json   one file per rank
//! <dir>/step-00000004/manifest.json      written last, by rank 0
//! ```
//!
//! The manifest is written via temp-file + rename after every shard file
//! exists, so a `manifest.json` that parses implies a complete
//! checkpoint; a crash mid-save leaves a step directory without a
//! manifest, which [`CheckpointStore::latest_step`] simply skips.

use crate::layout::{assemble_layer, layer_transposed};
use axonn_collectives::{Comm, ProcessGroup};
use axonn_perfmodel::Grid4d;
use axonn_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

pub const MANIFEST_MAGIC: &str = "axonn-ft-checkpoint";
pub const MANIFEST_VERSION: u64 = 1;
pub const SHARD_MAGIC: &str = "axonn-ft-shard";

/// Why a checkpoint could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Filesystem-level failure (missing file, unwritable directory…).
    Io(String),
    /// The bytes were there but wrong: parse failure, bad magic/version,
    /// checksum mismatch, shape mismatch.
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(m) => write!(f, "checkpoint io error: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// One rank's entry in the manifest: its grid coordinates and the
/// FNV-1a64 digest of each layer shard it wrote (hex, since the vendored
/// JSON layer keeps integers in f64 range).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEntry {
    pub rank: u64,
    pub x: u64,
    pub y: u64,
    pub z: u64,
    pub d: u64,
    pub layer_checksums: Vec<String>,
}

/// The checkpoint manifest, written last by rank 0. Its existence (and
/// parseability) is the commit point of a save.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    pub magic: String,
    pub version: u64,
    /// Steps completed when the snapshot was taken: resuming replays
    /// steps `step..total`.
    pub step: u64,
    pub seed: u64,
    pub gx: u64,
    pub gy: u64,
    pub gz: u64,
    pub gd: u64,
    pub dims: Vec<u64>,
    pub batch_rows: u64,
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    pub fn grid(&self) -> Grid4d {
        Grid4d::new(
            self.gx as usize,
            self.gy as usize,
            self.gz as usize,
            self.gd as usize,
        )
    }

    pub fn dims_usize(&self) -> Vec<usize> {
        self.dims.iter().map(|&d| d as usize).collect()
    }
}

/// One rank's shard file: its weight shards for every layer, in layer
/// order, exactly as laid out by the grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardFile {
    pub magic: String,
    pub rank: u64,
    pub step: u64,
    pub layers: Vec<Matrix>,
}

/// A directory of step checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn step_dir(&self, step: u64) -> PathBuf {
        self.dir.join(format!("step-{step:08}"))
    }

    pub fn shard_path(&self, step: u64, rank: usize) -> PathBuf {
        self.step_dir(step).join(format!("shard-r{rank:04}.json"))
    }

    pub fn manifest_path(&self, step: u64) -> PathBuf {
        self.step_dir(step).join("manifest.json")
    }

    /// Write one rank's shard file (temp + rename). Returns the FNV-1a64
    /// digest of each layer shard, in layer order.
    pub fn save_shard(
        &self,
        step: u64,
        rank: usize,
        layers: &[&Matrix],
    ) -> Result<Vec<u64>, CkptError> {
        let dir = self.step_dir(step);
        std::fs::create_dir_all(&dir).map_err(|e| CkptError::Io(format!("mkdir {dir:?}: {e}")))?;
        let checksums: Vec<u64> = layers.iter().map(|m| m.fnv1a64()).collect();
        let file = ShardFile {
            magic: SHARD_MAGIC.to_string(),
            rank: rank as u64,
            step,
            layers: layers.iter().map(|&m| m.clone()).collect(),
        };
        write_json_atomic(&self.shard_path(step, rank), &file)?;
        Ok(checksums)
    }

    /// Write the manifest (temp + rename) — the commit point of the save.
    pub fn save_manifest(&self, manifest: &Manifest) -> Result<(), CkptError> {
        write_json_atomic(&self.manifest_path(manifest.step), manifest)
    }

    /// Read and validate the manifest of a step.
    pub fn manifest(&self, step: u64) -> Result<Manifest, CkptError> {
        let path = self.manifest_path(step);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CkptError::Io(format!("read {path:?}: {e}")))?;
        let m: Manifest = serde_json::from_str(&text)
            .map_err(|e| CkptError::Corrupt(format!("{path:?}: {e}")))?;
        if m.magic != MANIFEST_MAGIC {
            return Err(CkptError::Corrupt(format!(
                "{path:?}: bad magic {:?}",
                m.magic
            )));
        }
        if m.version != MANIFEST_VERSION {
            return Err(CkptError::Corrupt(format!(
                "{path:?}: unsupported version {}",
                m.version
            )));
        }
        if m.shards.len() != m.grid().gpus() {
            return Err(CkptError::Corrupt(format!(
                "{path:?}: {} shard entries for a {} grid",
                m.shards.len(),
                m.grid()
            )));
        }
        Ok(m)
    }

    /// The highest step with a complete (manifest-committed, parseable)
    /// checkpoint, if any. Step directories without a valid manifest —
    /// crashed mid-save — are skipped.
    pub fn latest_step(&self) -> Option<u64> {
        let entries = std::fs::read_dir(&self.dir).ok()?;
        let mut steps: Vec<u64> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let step: u64 = name.strip_prefix("step-")?.parse().ok()?;
                self.manifest(step).ok().map(|_| step)
            })
            .collect();
        steps.sort_unstable();
        steps.pop()
    }

    /// Read one rank's shard file and verify it against the manifest:
    /// magic, rank, step, layer count and every layer checksum.
    pub fn load_shard(&self, manifest: &Manifest, rank: usize) -> Result<ShardFile, CkptError> {
        let path = self.shard_path(manifest.step, rank);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CkptError::Io(format!("read {path:?}: {e}")))?;
        let shard: ShardFile = serde_json::from_str(&text)
            .map_err(|e| CkptError::Corrupt(format!("{path:?}: {e}")))?;
        if shard.magic != SHARD_MAGIC {
            return Err(CkptError::Corrupt(format!(
                "{path:?}: bad magic {:?}",
                shard.magic
            )));
        }
        if shard.rank != rank as u64 || shard.step != manifest.step {
            return Err(CkptError::Corrupt(format!(
                "{path:?}: header says rank {} step {}, expected rank {rank} step {}",
                shard.rank, shard.step, manifest.step
            )));
        }
        let entry = &manifest.shards[rank];
        if shard.layers.len() != entry.layer_checksums.len() {
            return Err(CkptError::Corrupt(format!(
                "{path:?}: {} layers, manifest lists {}",
                shard.layers.len(),
                entry.layer_checksums.len()
            )));
        }
        for (i, (m, want_hex)) in shard.layers.iter().zip(&entry.layer_checksums).enumerate() {
            let want = u64::from_str_radix(want_hex, 16).map_err(|e| {
                CkptError::Corrupt(format!("{path:?}: layer {i} checksum {want_hex:?}: {e}"))
            })?;
            let got = m.fnv1a64();
            if got != want {
                return Err(CkptError::Corrupt(format!(
                    "{path:?}: layer {i} checksum mismatch (stored {want:016x}, recomputed {got:016x})"
                )));
            }
        }
        Ok(shard)
    }

    /// Reassemble every layer's *full* weight from the `d = 0` shards of
    /// the grid that wrote the checkpoint, verifying all checksums. The
    /// result can be re-sliced for any legal grid — same or different.
    pub fn load_full_layers(&self, manifest: &Manifest) -> Result<Vec<Matrix>, CkptError> {
        let grid = manifest.grid();
        let dims = manifest.dims_usize();
        if dims.len() < 2 {
            return Err(CkptError::Corrupt(format!(
                "manifest dims {dims:?}: need at least one layer"
            )));
        }
        // Read (and verify) each d=0 rank's shard file once.
        let mut shards: Vec<Option<ShardFile>> = vec![None; grid.gpus()];
        for (rank, slot) in shards.iter_mut().enumerate() {
            let (_, _, _, d) = grid.coords_of(rank);
            if d == 0 {
                *slot = Some(self.load_shard(manifest, rank)?);
            }
        }
        let n_layers = dims.len() - 1;
        let mut full = Vec::with_capacity(n_layers);
        for layer in 0..n_layers {
            let w = assemble_layer(&grid, layer_transposed(layer), |rank| {
                shards[rank].as_ref().expect("d=0 shard loaded").layers[layer].clone()
            });
            if w.shape() != (dims[layer], dims[layer + 1]) {
                return Err(CkptError::Corrupt(format!(
                    "layer {layer}: assembled shape {:?}, manifest dims say {:?}",
                    w.shape(),
                    (dims[layer], dims[layer + 1])
                )));
            }
            full.push(w);
        }
        Ok(full)
    }
}

fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> Result<(), CkptError> {
    let text =
        serde_json::to_string(value).map_err(|e| CkptError::Corrupt(format!("serialize: {e}")))?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text).map_err(|e| CkptError::Io(format!("write {tmp:?}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| CkptError::Io(format!("rename to {path:?}: {e}")))?;
    Ok(())
}

/// Split a u64 digest into two f32 bit-patterns so checksums can ride a
/// float all-gather losslessly (no arithmetic ever touches them).
fn digest_to_f32s(c: u64) -> [f32; 2] {
    [
        f32::from_bits((c >> 32) as u32),
        f32::from_bits((c & 0xffff_ffff) as u32),
    ]
}

fn digest_from_f32s(hi: f32, lo: f32) -> u64 {
    ((hi.to_bits() as u64) << 32) | lo.to_bits() as u64
}

/// Collective checkpoint save: every rank writes its own shard file,
/// checksums are all-gathered, rank 0 writes the manifest, and a final
/// world barrier guarantees the manifest is durable before any rank
/// takes another step (rank 0 enters the barrier only after the rename).
#[allow(clippy::too_many_arguments)]
pub fn save_checkpoint(
    comm: &Comm,
    grid: &Grid4d,
    store: &CheckpointStore,
    step: u64,
    seed: u64,
    dims: &[usize],
    batch_rows: usize,
    shards: &[&Matrix],
) -> Result<(), CkptError> {
    assert_eq!(comm.world_size(), grid.gpus(), "comm world must match grid");
    let rank = comm.rank();
    let checksums = store.save_shard(step, rank, shards)?;
    let flat: Vec<f32> = checksums.iter().flat_map(|&c| digest_to_f32s(c)).collect();
    let world = ProcessGroup::new((0..comm.world_size()).collect());
    let all = comm.all_gather(&world, &flat);
    if rank == 0 {
        let per = flat.len();
        let entries = (0..comm.world_size())
            .map(|r| {
                let (x, y, z, d) = grid.coords_of(r);
                let base = r * per;
                ShardEntry {
                    rank: r as u64,
                    x: x as u64,
                    y: y as u64,
                    z: z as u64,
                    d: d as u64,
                    layer_checksums: (0..shards.len())
                        .map(|l| {
                            let c = digest_from_f32s(all[base + 2 * l], all[base + 2 * l + 1]);
                            format!("{c:016x}")
                        })
                        .collect(),
                }
            })
            .collect();
        store.save_manifest(&Manifest {
            magic: MANIFEST_MAGIC.to_string(),
            version: MANIFEST_VERSION,
            step,
            seed,
            gx: grid.gx as u64,
            gy: grid.gy as u64,
            gz: grid.gz as u64,
            gd: grid.gd as u64,
            dims: dims.iter().map(|&d| d as u64).collect(),
            batch_rows: batch_rows as u64,
            shards: entries,
        })?;
    }
    comm.barrier(&world);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::shard_layer;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("axonn_ft_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_full_checkpoint(
        store: &CheckpointStore,
        grid: &Grid4d,
        dims: &[usize],
        step: u64,
    ) -> Vec<Matrix> {
        let full: Vec<Matrix> = (0..dims.len() - 1)
            .map(|i| Matrix::random(dims[i], dims[i + 1], 1.0, 42 + i as u64))
            .collect();
        let mut entries = Vec::new();
        for rank in 0..grid.gpus() {
            let shards: Vec<Matrix> = full
                .iter()
                .enumerate()
                .map(|(i, w)| shard_layer(w, grid, rank, layer_transposed(i)))
                .collect();
            let refs: Vec<&Matrix> = shards.iter().collect();
            let sums = store.save_shard(step, rank, &refs).unwrap();
            let (x, y, z, d) = grid.coords_of(rank);
            entries.push(ShardEntry {
                rank: rank as u64,
                x: x as u64,
                y: y as u64,
                z: z as u64,
                d: d as u64,
                layer_checksums: sums.iter().map(|c| format!("{c:016x}")).collect(),
            });
        }
        store
            .save_manifest(&Manifest {
                magic: MANIFEST_MAGIC.to_string(),
                version: MANIFEST_VERSION,
                step,
                seed: 1,
                gx: grid.gx as u64,
                gy: grid.gy as u64,
                gz: grid.gz as u64,
                gd: grid.gd as u64,
                dims: dims.iter().map(|&d| d as u64).collect(),
                batch_rows: 4,
                shards: entries,
            })
            .unwrap();
        full
    }

    #[test]
    fn save_load_round_trip_reconstructs_full_weights() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir);
        let grid = Grid4d::new(2, 2, 1, 1);
        let dims = [8, 12, 8];
        let full = write_full_checkpoint(&store, &grid, &dims, 4);
        assert_eq!(store.latest_step(), Some(4));
        let manifest = store.manifest(4).unwrap();
        let back = store.load_full_layers(&manifest).unwrap();
        for (a, b) in full.iter().zip(&back) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_shard_is_detected() {
        let dir = tmpdir("bitflip");
        let store = CheckpointStore::new(&dir);
        let grid = Grid4d::new(2, 1, 1, 1);
        write_full_checkpoint(&store, &grid, &[4, 4], 2);
        // Flip a single mantissa bit of one element in rank 1's shard and
        // write the file back — the checksum must catch it.
        let path = store.shard_path(2, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut shard: ShardFile = serde_json::from_str(&text).unwrap();
        let v = shard.layers[0].as_mut_slice();
        v[0] = f32::from_bits(v[0].to_bits() ^ 1);
        std::fs::write(&path, serde_json::to_string(&shard).unwrap()).unwrap();
        let manifest = store.manifest(2).unwrap();
        let err = store.load_full_layers(&manifest).unwrap_err();
        assert!(
            matches!(&err, CkptError::Corrupt(m) if m.contains("checksum mismatch")),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_manifest_is_not_latest() {
        let dir = tmpdir("truncated");
        let store = CheckpointStore::new(&dir);
        let grid = Grid4d::new(1, 2, 1, 1);
        write_full_checkpoint(&store, &grid, &[4, 4], 2);
        write_full_checkpoint(&store, &grid, &[4, 4], 6);
        // Truncate the later manifest: the store must fall back to step 2.
        let path = store.manifest_path(6);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.latest_step(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_means_no_checkpoint() {
        let dir = tmpdir("nomanifest");
        let store = CheckpointStore::new(&dir);
        assert_eq!(store.latest_step(), None);
        // A step dir with shards but no manifest (crash mid-save).
        std::fs::create_dir_all(store.step_dir(3)).unwrap();
        assert_eq!(store.latest_step(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = tmpdir("version");
        let store = CheckpointStore::new(&dir);
        let grid = Grid4d::new(1, 1, 1, 1);
        write_full_checkpoint(&store, &grid, &[4, 4], 1);
        let path = store.manifest_path(1);
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replace("\"version\":1", "\"version\":99");
        assert_ne!(text, bumped, "version field not found to corrupt");
        std::fs::write(&path, bumped).unwrap();
        let err = store.manifest(1).unwrap_err();
        assert!(matches!(&err, CkptError::Corrupt(m) if m.contains("version")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_f32_round_trip_is_lossless() {
        for c in [
            0u64,
            1,
            u64::MAX,
            0x7fc0_0000_dead_beef,
            0xcbf2_9ce4_8422_2325,
        ] {
            let [hi, lo] = digest_to_f32s(c);
            assert_eq!(digest_from_f32s(hi, lo), c);
        }
    }
}
