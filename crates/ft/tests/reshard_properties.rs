//! Property tests for the grid-sharded layout: sharding a parameter for
//! one legal grid and resharding it for another must always reconstruct
//! the exact serial values — the invariant elastic resume rests on.

use axonn_ft::{assemble_layer, grid_fits, layer_transposed, shard_layer};
use axonn_perfmodel::Grid4d;
use axonn_tensor::Matrix;
use proptest::prelude::*;

/// A random pair of grids, both legal for random (divisible) dims: the
/// source grid writes the checkpoint, the target grid resumes it.
fn any_grid() -> impl Strategy<Value = Grid4d> {
    prop_oneof![
        Just(Grid4d::new(1, 1, 1, 1)),
        Just(Grid4d::new(2, 1, 1, 1)),
        Just(Grid4d::new(1, 2, 1, 1)),
        Just(Grid4d::new(1, 1, 2, 1)),
        Just(Grid4d::new(1, 1, 1, 2)),
        Just(Grid4d::new(2, 2, 1, 1)),
        Just(Grid4d::new(1, 2, 2, 1)),
        Just(Grid4d::new(2, 1, 2, 1)),
        Just(Grid4d::new(4, 2, 1, 1)),
        Just(Grid4d::new(2, 2, 2, 1)),
        Just(Grid4d::new(3, 2, 1, 1)),
    ]
}

fn grid_pair_case() -> impl Strategy<Value = (Grid4d, Grid4d, Vec<usize>, u64)> {
    (any_grid(), any_grid(), 1usize..4, 1usize..4, 0u64..1000).prop_map(
        |(a, b, n_layers, width, seed)| {
            // Dims divisible by every factor either grid needs:
            // 12 covers x/y splits up to 4 and 3, times gz up to 2.
            let unit = 24;
            let dims: Vec<usize> = (0..=n_layers).map(|i| unit * (width + i % 2)).collect();
            (a, b, dims, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// shard → assemble → re-shard for a different grid → assemble again
    /// reconstructs the original full parameter bit-for-bit, layer by
    /// layer (both parities).
    #[test]
    fn shard_reshard_round_trip_is_exact(case in grid_pair_case()) {
        let (src, dst, dims, seed) = case;
        let batch = 24; // divisible by any gd*gz both grids use
        prop_assert!(grid_fits(&src, &dims, batch), "src {src} should fit");
        prop_assert!(grid_fits(&dst, &dims, batch), "dst {dst} should fit");
        for layer in 0..dims.len() - 1 {
            let transposed = layer_transposed(layer);
            let full = Matrix::random(dims[layer], dims[layer + 1], 1.0, seed + layer as u64);

            // Write on `src`, assemble, reshard to `dst`, assemble again.
            let src_shards: Vec<Matrix> = (0..src.gpus())
                .map(|r| shard_layer(&full, &src, r, transposed))
                .collect();
            let assembled = assemble_layer(&src, transposed, |r| src_shards[r].clone());
            prop_assert_eq!(assembled.as_slice(), full.as_slice(),
                "src {} layer {} lost values", src, layer);

            let dst_shards: Vec<Matrix> = (0..dst.gpus())
                .map(|r| shard_layer(&assembled, &dst, r, transposed))
                .collect();
            let back = assemble_layer(&dst, transposed, |r| dst_shards[r].clone());
            prop_assert_eq!(back.as_slice(), full.as_slice(),
                "reshard {} -> {} layer {} lost values", src, dst, layer);

            // Resharding via the assembled full equals sharding the
            // original directly — the dst world sees identical bits.
            for (r, dst_shard) in dst_shards.iter().enumerate() {
                let direct = shard_layer(&full, &dst, r, transposed);
                prop_assert_eq!(
                    dst_shard.as_slice(),
                    direct.as_slice(),
                    "rank {} of {} differs from direct shard", r, dst
                );
            }
        }
    }

    /// Every shard has the block shape the grid layout promises, and the
    /// shards of one grid tile the full parameter without overlap
    /// (element counts add up).
    #[test]
    fn shards_tile_the_parameter(case in grid_pair_case()) {
        let (grid, _, dims, seed) = case;
        for layer in 0..dims.len() - 1 {
            let transposed = layer_transposed(layer);
            let (k, n) = (dims[layer], dims[layer + 1]);
            let full = Matrix::random(k, n, 1.0, seed + 31 + layer as u64);
            let g_in = if transposed { grid.gx } else { grid.gy };
            let g_out = if transposed { grid.gy } else { grid.gx };
            let mut d0_elems = 0usize;
            for r in 0..grid.gpus() {
                let s = shard_layer(&full, &grid, r, transposed);
                prop_assert_eq!(s.rows(), k / g_in / grid.gz);
                prop_assert_eq!(s.cols(), n / g_out);
                let (_, _, _, d) = grid.coords_of(r);
                if d == 0 {
                    d0_elems += s.len();
                }
            }
            prop_assert_eq!(d0_elems, k * n, "d=0 shards must tile exactly");
        }
    }
}
