//! The KV-cached decode path must be **bitwise** identical to the
//! full-forward recompute — for every model shape (heads, head width,
//! depth, window), every prompt length, and every decode depth. This
//! holds because each decode step replays the exact per-row loops of the
//! training modules (same gemm kernels, same softmax accumulation order)
//! and `gemm_nn`'s zero-skip makes causally-masked entries contribute
//! nothing to the batched P·V product; the property test here is the
//! contract that keeps the serving plane's logits trustworthy.

use axonn_lm::decode::{self, KvCache};
use axonn_lm::{AdamW, Gpt, GptModelConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    cfg: GptModelConfig,
    prompt: Vec<usize>,
    n_new: usize,
    train_steps: usize,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        0usize..3,       // head-count choice: 1, 2, 4
        0usize..2,       // head-dim choice: 4, 8
        1usize..=2,      // n_layers
        6usize..=12,     // seq_len
        5usize..=16,     // vocab
        0u64..=u64::MAX, // master seed (weights, prompt, train depth)
    )
        .prop_map(|(hc, hdc, n_layers, seq_len, vocab, seed)| {
            let n_heads = [1usize, 2, 4][hc];
            let head_dim = [4usize, 8][hdc];
            let cfg = GptModelConfig {
                vocab,
                seq_len,
                dim: n_heads * head_dim,
                n_heads,
                n_layers,
                seed,
            };
            let mut s = seed;
            let prompt_len = 1 + (splitmix(&mut s) as usize) % (seq_len - 1);
            let prompt: Vec<usize> = (0..prompt_len)
                .map(|_| (splitmix(&mut s) as usize) % vocab)
                .collect();
            let train_steps = (splitmix(&mut s) as usize) % 13;
            Case {
                n_new: seq_len - prompt_len,
                cfg,
                prompt,
                train_steps,
            }
        })
}

fn build_model(case: &Case) -> Gpt {
    let mut g = Gpt::new(case.cfg.clone());
    if case.train_steps > 0 {
        // A few optimizer steps move the weights off their init manifold
        // so the property is not an artifact of fresh-init symmetry.
        let mut opt = AdamW::new(2e-3);
        let seq: Vec<usize> = (0..case.cfg.seq_len + 1)
            .map(|i| (i * 3 + 1) % case.cfg.vocab)
            .collect();
        let n = case.cfg.seq_len;
        for _ in 0..case.train_steps {
            g.train_step(&seq[..n], &seq[1..n + 1], None, &mut opt);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prefill logits and every decode-step logits row are bitwise equal
    /// to a full forward pass over the same (unpadded) context.
    #[test]
    fn kv_decode_is_bitwise_identical_to_full_forward(case in case_strategy()) {
        let mut g = build_model(&case);
        let mut cache = KvCache::for_model(&g.cfg);
        let kv_logits = decode::prefill(&g, &case.prompt, &mut cache);
        let full = g.forward(&case.prompt);
        prop_assert_eq!(kv_logits.shape(), full.shape());
        for (i, (a, b)) in kv_logits.as_slice().iter().zip(full.as_slice()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "prefill logit {} differs", i);
        }

        // Greedy-extend through the cache; check each step's row against
        // the oracle forward over the grown context.
        let mut ctx = case.prompt.clone();
        let mut next = decode::argmax(kv_logits.row(ctx.len() - 1));
        for step in 0..case.n_new.saturating_sub(1) {
            let row = decode::decode_step(&g, next, &mut cache);
            ctx.push(next);
            let oracle = g.forward(&ctx);
            let want = oracle.row(ctx.len() - 1);
            for (j, (a, b)) in row.iter().zip(want).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {} logit {} differs (ctx len {})",
                    step,
                    j,
                    ctx.len()
                );
            }
            next = decode::argmax(&row);
        }
    }

    /// The public greedy continuation (KV-cached) emits exactly the same
    /// tokens as the seed's full-recompute continuation.
    #[test]
    fn greedy_continuation_matches_recompute_oracle(case in case_strategy()) {
        let mut g = build_model(&case);
        let kv = g.greedy_continuation(&case.prompt, case.n_new);
        let oracle = g.greedy_continuation_recompute(&case.prompt, case.n_new);
        prop_assert_eq!(kv, oracle);
    }
}
