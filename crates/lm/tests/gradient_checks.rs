//! End-to-end gradient verification of the GPT: finite differences
//! through the *whole* model (embedding → blocks → head → cross-entropy),
//! plus structural training properties over random configurations.

use axonn_lm::{cross_entropy, AdamW, Gpt, GptModelConfig};
use proptest::prelude::*;

fn toy(dim: usize, layers: usize, seed: u64) -> Gpt {
    Gpt::new(GptModelConfig {
        vocab: 11,
        seq_len: 6,
        dim,
        n_heads: 2,
        n_layers: layers,
        seed,
    })
}

/// Loss of the model on a fixed tiny batch.
fn loss_of(model: &mut Gpt, inputs: &[usize], targets: &[usize]) -> f32 {
    let logits = model.forward(inputs);
    cross_entropy(&logits, targets, None).loss
}

#[test]
fn whole_model_gradient_matches_finite_difference() {
    let inputs = [1usize, 4, 2, 9, 0, 7];
    let targets = [4usize, 2, 9, 0, 7, 3];

    // Analytic gradient via a tiny SGD-like probe: capture the gradient
    // by differencing parameters after one AdamW step is too indirect;
    // instead run forward/backward and read the gradients directly.
    let mut model = toy(8, 2, 3);
    let logits = model.forward(&inputs);
    let res = cross_entropy(&logits, &targets, None);
    model.backward(&res.d_logits);

    // Pick a handful of parameters spread across the model and compare
    // against central differences.
    let n_params = model.params_mut().len();
    let probes: Vec<(usize, usize)> = vec![
        (0, 3),            // token embedding
        (1, 0),            // position embedding
        (n_params / 2, 0), // somewhere in a block
        (n_params - 2, 1), // head weight
    ];
    let grads: Vec<f32> = probes
        .iter()
        .map(|&(pi, ei)| model.params_mut()[pi].grad.as_slice()[ei])
        .collect();

    for (probe_idx, &(pi, ei)) in probes.iter().enumerate() {
        // Embeddings are ~0.02-scale and sit under LayerNorms, so the
        // probe step must be small relative to them.
        let h = 1e-3f32;
        let mut plus = toy(8, 2, 3);
        plus.params_mut()[pi].value.as_mut_slice()[ei] += h;
        let mut minus = toy(8, 2, 3);
        minus.params_mut()[pi].value.as_mut_slice()[ei] -= h;
        let fd = (loss_of(&mut plus, &inputs, &targets) - loss_of(&mut minus, &inputs, &targets))
            / (2.0 * h);
        let an = grads[probe_idx];
        assert!(
            (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
            "param {pi}[{ei}]: fd {fd} vs analytic {an}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn training_monotonically_memorizes_one_sequence(seed in 0u64..50) {
        let mut model = toy(16, 1, seed);
        let mut opt = AdamW::new(3e-3);
        let inputs = [1usize, 4, 2, 9, 0, 7];
        let targets = [4usize, 2, 9, 0, 7, 3];
        let first = loss_of(&mut model, &inputs, &targets);
        for _ in 0..60 {
            model.train_step(&inputs, &targets, None, &mut opt);
        }
        let last = loss_of(&mut model, &inputs, &targets);
        prop_assert!(last < 0.5 * first, "loss {first} -> {last}");
    }

    #[test]
    fn masked_positions_receive_no_learning(seed in 0u64..50) {
        let mut model = toy(16, 1, seed);
        let mut opt = AdamW::new(3e-3);
        let inputs = [1usize, 4, 2, 9, 0, 7];
        let targets = [4usize, 2, 9, 0, 7, 3];
        // Only even target positions contribute to the loss.
        let mask = [true, false, true, false, true, false];
        for _ in 0..80 {
            model.train_step(&inputs, &targets, Some(&mask), &mut opt);
        }
        let logits = model.forward(&inputs);
        let seen = cross_entropy(&logits, &targets, Some(&mask)).loss;
        let inv: Vec<bool> = mask.iter().map(|b| !b).collect();
        let hidden = cross_entropy(&logits, &targets, Some(&inv)).loss;
        prop_assert!(seen < 0.3, "seen loss {seen}");
        prop_assert!(hidden > 2.0 * seen.max(0.05), "hidden {hidden} vs seen {seen}");
    }

    #[test]
    fn forward_is_pure(seed in 0u64..50, t1 in 0usize..10, t2 in 0usize..10) {
        let mut model = toy(8, 2, seed);
        let tokens = [t1, t2, 1, 0, 5, 9];
        let a = model.forward(&tokens);
        let b = model.forward(&tokens);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn greedy_continuation_is_deterministic_and_in_vocab(seed in 0u64..50) {
        let mut model = toy(8, 2, seed);
        let out1 = model.greedy_continuation(&[1, 2, 3], 3);
        let out2 = model.greedy_continuation(&[1, 2, 3], 3);
        prop_assert_eq!(&out1, &out2);
        prop_assert!(out1.iter().all(|&t| t < 11));
        prop_assert_eq!(out1.len(), 3);
    }
}
