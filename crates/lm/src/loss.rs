//! Token-maskable cross-entropy.
//!
//! The mask is the hook for the Goldfish loss (Section VIII-D): masked
//! positions are simply excluded from the loss (and hence from the
//! gradient), so the model never receives a learning signal for them.

use axonn_tensor::Matrix;

/// Loss value plus the gradient w.r.t. the logits.
pub struct CrossEntropyResult {
    /// Mean negative log-likelihood over *unmasked* positions.
    pub loss: f32,
    /// `d loss / d logits`, same shape as the logits.
    pub d_logits: Matrix,
    /// How many positions contributed.
    pub counted: usize,
}

/// Cross-entropy between `logits` (`N × V`) and `targets` (`N` ids).
/// `mask[i] == false` excludes position `i` entirely. Passing `None`
/// counts every position.
pub fn cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    mask: Option<&[bool]>,
) -> CrossEntropyResult {
    let (n, v) = logits.shape();
    assert_eq!(targets.len(), n, "one target per logit row");
    if let Some(m) = mask {
        assert_eq!(m.len(), n, "one mask bit per position");
    }
    let counted = mask.map_or(n, |m| m.iter().filter(|&&b| b).count());
    let mut d = Matrix::zeros(n, v);
    if counted == 0 {
        return CrossEntropyResult {
            loss: 0.0,
            d_logits: d,
            counted,
        };
    }
    let inv = 1.0 / counted as f32;
    let mut loss = 0.0f32;
    for i in 0..n {
        if let Some(m) = mask {
            if !m[i] {
                continue;
            }
        }
        let row = logits.row(i);
        let maxv = row.iter().cloned().fold(f32::MIN, f32::max);
        let denom: f32 = row.iter().map(|&x| (x - maxv).exp()).sum();
        let target = targets[i];
        assert!(target < v, "target id {target} outside vocab {v}");
        loss += -(row[target] - maxv - denom.ln()) * inv;
        let drow = d.row_mut(i);
        for (j, dv) in drow.iter_mut().enumerate() {
            let p = (row[j] - maxv).exp() / denom;
            *dv = (p - if j == target { 1.0 } else { 0.0 }) * inv;
        }
    }
    CrossEntropyResult {
        loss,
        d_logits: d,
        counted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Matrix::zeros(3, 8);
        let r = cross_entropy(&logits, &[0, 3, 7], None);
        assert!((r.loss - (8.0f32).ln()).abs() < 1e-5);
        assert_eq!(r.counted, 3);
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let mut logits = Matrix::zeros(2, 4);
        logits[(0, 1)] = 50.0;
        logits[(1, 2)] = 50.0;
        let r = cross_entropy(&logits, &[1, 2], None);
        assert!(r.loss < 1e-4);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::random(4, 6, 2.0, 1);
        let r = cross_entropy(&logits, &[0, 1, 2, 3], None);
        for i in 0..4 {
            let s: f32 = r.d_logits.row(i).iter().sum();
            assert!(s.abs() < 1e-5, "row {i} grad sum {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::random(3, 5, 1.0, 2);
        let targets = [2usize, 0, 4];
        let r = cross_entropy(&logits, &targets, None);
        for &(i, j) in &[(0usize, 2usize), (1, 1), (2, 4)] {
            let h = 1e-3;
            let mut lp = logits.clone();
            lp[(i, j)] += h;
            let mut lm = logits.clone();
            lm[(i, j)] -= h;
            let fd = (cross_entropy(&lp, &targets, None).loss
                - cross_entropy(&lm, &targets, None).loss)
                / (2.0 * h);
            assert!(
                (r.d_logits[(i, j)] - fd).abs() < 1e-3,
                "({i},{j}): {} vs {fd}",
                r.d_logits[(i, j)]
            );
        }
    }

    #[test]
    fn masked_positions_have_no_gradient_and_no_loss() {
        let logits = Matrix::random(4, 5, 1.0, 3);
        let targets = [0usize, 1, 2, 3];
        let mask = [true, false, true, false];
        let r = cross_entropy(&logits, &targets, Some(&mask));
        assert_eq!(r.counted, 2);
        assert!(r.d_logits.row(1).iter().all(|&g| g == 0.0));
        assert!(r.d_logits.row(3).iter().all(|&g| g == 0.0));
        assert!(r.d_logits.row(0).iter().any(|&g| g != 0.0));
        // Loss equals the unmasked-only mean.
        let full = cross_entropy(&logits, &targets, Some(&[true; 4]));
        assert!(full.loss > 0.0 && r.loss > 0.0);
    }

    #[test]
    fn all_masked_is_zero() {
        let logits = Matrix::random(2, 3, 1.0, 4);
        let r = cross_entropy(&logits, &[0, 1], Some(&[false, false]));
        assert_eq!(r.loss, 0.0);
        assert_eq!(r.counted, 0);
        assert!(r.d_logits.as_slice().iter().all(|&g| g == 0.0));
    }
}
