//! AdamW, the optimizer used for all LM training runs.

use crate::modules::Param;

/// Decoupled-weight-decay Adam (Loshchilov & Hutter).
#[derive(Debug, Clone, Copy)]
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Step counter (for bias correction).
    pub t: u32,
}

impl AdamW {
    pub fn new(lr: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 0,
        }
    }

    /// Advance the step counter (call once per batch, before updating
    /// parameters).
    pub fn next_step(&mut self) {
        self.t += 1;
    }

    /// Apply one AdamW update to a parameter and clear its gradient.
    pub fn update(&self, p: &mut Param) {
        assert!(self.t > 0, "call next_step before update");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let n = p.value.len();
        let value = p.value.as_mut_slice();
        let grad = p.grad.as_mut_slice();
        let m = p.m.as_mut_slice();
        let v = p.v.as_mut_slice();
        for i in 0..n {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            value[i] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * value[i]);
            grad[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axonn_tensor::Matrix;

    #[test]
    fn minimizes_a_quadratic() {
        // f(w) = 0.5 (w - 3)^2, grad = w - 3.
        let mut p = Param::new(Matrix::full(1, 1, 0.0));
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.0;
        for _ in 0..300 {
            p.grad.as_mut_slice()[0] = p.value.as_slice()[0] - 3.0;
            opt.next_step();
            opt.update(&mut p);
        }
        let w = p.value.as_slice()[0];
        assert!((w - 3.0).abs() < 0.05, "converged to {w}");
    }

    #[test]
    fn update_clears_gradient() {
        let mut p = Param::new(Matrix::full(2, 2, 1.0));
        p.grad = Matrix::full(2, 2, 0.5);
        let mut opt = AdamW::new(0.01);
        opt.next_step();
        opt.update(&mut p);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = Param::new(Matrix::full(1, 1, 10.0));
        let mut opt = AdamW::new(0.1);
        opt.weight_decay = 0.1;
        for _ in 0..50 {
            // Zero task gradient: only decay acts.
            opt.next_step();
            opt.update(&mut p);
        }
        assert!(p.value.as_slice()[0] < 10.0 * 0.7);
    }

    #[test]
    #[should_panic(expected = "call next_step")]
    fn update_requires_step() {
        let mut p = Param::new(Matrix::full(1, 1, 0.0));
        AdamW::new(0.1).update(&mut p);
    }
}
