//! Parameters and the basic trainable modules: Linear, LayerNorm,
//! Embedding. Every module caches what its backward pass needs and
//! accumulates gradients into its [`Param`]s.

use axonn_tensor::{gemm, MatMode, Matrix};

/// A trainable tensor with its gradient and AdamW state.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Matrix,
    pub grad: Matrix,
    /// First moment (AdamW).
    pub m: Matrix,
    /// Second moment (AdamW).
    pub v: Matrix,
}

impl Param {
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    pub fn zero_grad(&mut self) {
        self.grad.scale(0.0);
    }

    pub fn numel(&self) -> usize {
        self.value.len()
    }
}

/// Fully-connected layer `y = x·W + b`.
pub struct Linear {
    pub w: Param,
    pub b: Param,
    cached_x: Option<Matrix>,
}

impl Linear {
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let scale = 1.0 / (in_dim as f32).sqrt();
        Linear {
            w: Param::new(Matrix::random(in_dim, out_dim, scale, seed)),
            b: Param::new(Matrix::zeros(1, out_dim)),
            cached_x: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = gemm(MatMode::NN, x, &self.w.value);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(self.b.value.as_slice()) {
                *v += b;
            }
        }
        self.cached_x = Some(x.clone());
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cached_x
            .take()
            .expect("Linear backward before forward");
        let dw = gemm(MatMode::TN, &x, dy);
        self.w.grad.add_assign(&dw);
        for r in 0..dy.rows() {
            let row = dy.row(r);
            for (g, d) in self.b.grad.as_mut_slice().iter_mut().zip(row) {
                *g += d;
            }
        }
        gemm(MatMode::NT, dy, &self.w.value)
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Layer normalization with learned gain and bias, over the feature axis.
pub struct LayerNorm {
    pub gain: Param,
    pub bias: Param,
    eps: f32,
    cached: Option<(Matrix, Vec<f32>, Vec<f32>)>, // x, mean, inv_std per row
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gain: Param::new(Matrix::full(1, dim, 1.0)),
            bias: Param::new(Matrix::zeros(1, dim)),
            eps: 1e-5,
            cached: None,
        }
    }

    /// The normalization epsilon — exposed so stateless inference paths
    /// (KV-cached decode, tensor-parallel serving) reproduce `forward`
    /// bit-for-bit.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (rows, d) = x.shape();
        let mut out = Matrix::zeros(rows, d);
        let mut means = Vec::with_capacity(rows);
        let mut inv_stds = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            let orow = out.row_mut(r);
            for (c, (&xv, ov)) in row.iter().zip(orow.iter_mut()).enumerate() {
                let norm = (xv - mean) * inv_std;
                *ov = norm * self.gain.value.as_slice()[c] + self.bias.value.as_slice()[c];
            }
            means.push(mean);
            inv_stds.push(inv_std);
        }
        self.cached = Some((x.clone(), means, inv_stds));
        out
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x, means, inv_stds) = self
            .cached
            .take()
            .expect("LayerNorm backward before forward");
        let (rows, d) = x.shape();
        let mut dx = Matrix::zeros(rows, d);
        let gains = self.gain.value.as_slice().to_vec();
        for r in 0..rows {
            let xr = x.row(r);
            let dyr = dy.row(r);
            let mean = means[r];
            let inv_std = inv_stds[r];
            // dnorm = dy * gain; accumulate gain/bias grads.
            let mut dnorm = vec![0.0f32; d];
            for c in 0..d {
                let norm = (xr[c] - mean) * inv_std;
                dnorm[c] = dyr[c] * gains[c];
                self.gain.grad.as_mut_slice()[c] += dyr[c] * norm;
                self.bias.grad.as_mut_slice()[c] += dyr[c];
            }
            let sum_dnorm: f32 = dnorm.iter().sum();
            let sum_dnorm_norm: f32 = (0..d).map(|c| dnorm[c] * (xr[c] - mean) * inv_std).sum();
            let dr = dx.row_mut(r);
            for c in 0..d {
                let norm = (xr[c] - mean) * inv_std;
                dr[c] =
                    inv_std / d as f32 * (d as f32 * dnorm[c] - sum_dnorm - norm * sum_dnorm_norm);
            }
        }
        dx
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain, &mut self.bias]
    }
}

/// Token + learned positional embedding. Input is `B` sequences of `T`
/// token ids; output is a `(B·T) × d` activation matrix.
pub struct Embedding {
    pub tok: Param,
    pub pos: Param,
    pub seq_len: usize,
    cached_tokens: Option<Vec<usize>>,
}

impl Embedding {
    pub fn new(vocab: usize, seq_len: usize, dim: usize, seed: u64) -> Self {
        Embedding {
            tok: Param::new(Matrix::random(vocab, dim, 0.02, seed)),
            pos: Param::new(Matrix::random(seq_len, dim, 0.02, seed.wrapping_add(1))),
            seq_len,
            cached_tokens: None,
        }
    }

    /// `tokens.len()` must be a multiple of `seq_len` (a batch of full
    /// windows) or at most `seq_len` (a single, possibly partial,
    /// sequence — used by training on shifted pairs and by generation).
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        assert!(
            tokens.len().is_multiple_of(self.seq_len) || tokens.len() <= self.seq_len,
            "ragged token batch: {} tokens with seq_len {}",
            tokens.len(),
            self.seq_len
        );
        let d = self.tok.value.cols();
        let mut out = Matrix::zeros(tokens.len(), d);
        for (i, &t) in tokens.iter().enumerate() {
            let p = i % self.seq_len;
            let orow = out.row_mut(i);
            let trow = self.tok.value.row(t);
            let prow = self.pos.value.row(p);
            for c in 0..d {
                orow[c] = trow[c] + prow[c];
            }
        }
        self.cached_tokens = Some(tokens.to_vec());
        out
    }

    pub fn backward(&mut self, dy: &Matrix) {
        let tokens = self
            .cached_tokens
            .take()
            .expect("Embedding backward before forward");
        for (i, &t) in tokens.iter().enumerate() {
            let p = i % self.seq_len;
            let dr = dy.row(i);
            let tg = self.tok.grad.row_mut(t);
            for (g, d) in tg.iter_mut().zip(dr) {
                *g += d;
            }
            let pg = self.pos.grad.row_mut(p);
            for (g, d) in pg.iter_mut().zip(dr) {
                *g += d;
            }
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.tok, &mut self.pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_and_grad_x(f: &mut dyn FnMut(&Matrix) -> Matrix, x: &Matrix) -> f32 {
        // Simple scalar loss: sum of outputs.
        f(x).as_slice().iter().sum()
    }

    #[test]
    fn linear_forward_shapes_and_bias() {
        let mut l = Linear::new(3, 5, 1);
        l.b.value.as_mut_slice()[2] = 7.0;
        let x = Matrix::zeros(2, 3);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (2, 5));
        assert_eq!(y[(0, 2)], 7.0);
        assert_eq!(y[(1, 2)], 7.0);
    }

    #[test]
    fn linear_backward_matches_finite_difference() {
        let mut l = Linear::new(4, 3, 2);
        let x = Matrix::random(5, 4, 1.0, 3);
        // Loss = sum(y); dL/dy = ones.
        let y = l.forward(&x);
        let dy = Matrix::full(y.rows(), y.cols(), 1.0);
        let dx = l.backward(&dy);

        // Check dL/dW[0][0] by finite differences.
        let h = 1e-3;
        let mut lp = Linear::new(4, 3, 2);
        lp.w.value[(0, 0)] += h;
        let mut lm = Linear::new(4, 3, 2);
        lm.w.value[(0, 0)] -= h;
        let fp = loss_and_grad_x(&mut |x| lp.forward(x), &x);
        let fm = loss_and_grad_x(&mut |x| lm.forward(x), &x);
        let fd = (fp - fm) / (2.0 * h);
        assert!(
            (l.w.grad[(0, 0)] - fd).abs() < 1e-2,
            "{} vs {fd}",
            l.w.grad[(0, 0)]
        );

        // Check dL/dx[1][2].
        let mut xp = x.clone();
        xp[(1, 2)] += h;
        let mut xm = x.clone();
        xm[(1, 2)] -= h;
        let mut l2 = Linear::new(4, 3, 2);
        let fp = loss_and_grad_x(&mut |x| l2.forward(x), &xp);
        let mut l3 = Linear::new(4, 3, 2);
        let fm = loss_and_grad_x(&mut |x| l3.forward(x), &xm);
        let fd = (fp - fm) / (2.0 * h);
        assert!((dx[(1, 2)] - fd).abs() < 1e-2, "{} vs {fd}", dx[(1, 2)]);

        // Bias gradient = column sums of dy = number of rows.
        assert!(l.b.grad.as_slice().iter().all(|&g| (g - 5.0).abs() < 1e-5));
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(8);
        let x = Matrix::random(4, 8, 3.0, 5);
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_backward_matches_finite_difference() {
        let dim = 6;
        let x = Matrix::random(3, dim, 1.0, 7);
        // Loss: weighted sum to make gradients non-uniform.
        let wts: Vec<f32> = (0..3 * dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let loss = |m: &Matrix| -> f32 { m.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };
        let mut ln = LayerNorm::new(dim);
        let y = ln.forward(&x);
        let dy = Matrix::from_vec(3, dim, wts.clone());
        let dx = ln.backward(&dy);
        let _ = y;
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 5)] {
            let h = 1e-2;
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let mut l1 = LayerNorm::new(dim);
            let mut l2 = LayerNorm::new(dim);
            let fd = (loss(&l1.forward(&xp)) - loss(&l2.forward(&xm))) / (2.0 * h);
            assert!(
                (dx[(r, c)] - fd).abs() < 2e-2,
                "({r},{c}): analytic {} vs fd {fd}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn embedding_lookup_and_grad_accumulation() {
        let mut e = Embedding::new(10, 4, 3, 9);
        let tokens = vec![1usize, 2, 1, 3, 0, 1, 2, 3];
        let y = e.forward(&tokens);
        assert_eq!(y.shape(), (8, 3));
        // Row 0 and row 2 differ only by position embedding.
        let d0: Vec<f32> = y.row(0).to_vec();
        let d2: Vec<f32> = y.row(2).to_vec();
        let p0 = e.pos.value.row(0).to_vec();
        let p2 = e.pos.value.row(2).to_vec();
        for c in 0..3 {
            assert!(((d0[c] - p0[c]) - (d2[c] - p2[c])).abs() < 1e-6);
        }
        // Backward: token 1 appears 3 times; its grad = 3×dy-row.
        let dy = Matrix::full(8, 3, 1.0);
        e.backward(&dy);
        assert!(e.tok.grad.row(1).iter().all(|&g| (g - 3.0).abs() < 1e-6));
        assert!(e.tok.grad.row(0).iter().all(|&g| (g - 1.0).abs() < 1e-6));
        // Each position appears twice (B=2).
        assert!(e.pos.grad.row(0).iter().all(|&g| (g - 2.0).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "ragged token batch")]
    fn embedding_rejects_ragged_batches() {
        let mut e = Embedding::new(10, 4, 3, 9);
        let _ = e.forward(&[1, 2, 3, 0, 1]); // 5 tokens: neither one window nor a batch
    }

    #[test]
    fn embedding_accepts_single_short_sequence() {
        let mut e = Embedding::new(10, 4, 3, 9);
        assert_eq!(e.forward(&[1, 2, 3]).shape(), (3, 3));
    }
}
