//! Causal multi-head self-attention with a hand-written backward pass.

use crate::modules::{Linear, Param};
use axonn_tensor::{gemm, MatMode, Matrix};

/// Multi-head causal self-attention: QKV projection, per-head scaled
/// dot-product attention with a causal mask, output projection.
pub struct CausalSelfAttention {
    pub qkv: Linear,
    pub proj: Linear,
    pub n_heads: usize,
    pub seq_len: usize,
    cache: Option<AttnCache>,
}

struct AttnCache {
    /// Per (batch, head): Q, K, V (T × hd) and softmax probabilities P
    /// (T × T).
    per_head: Vec<(Matrix, Matrix, Matrix, Matrix)>,
    batch: usize,
    dim: usize,
    /// Effective window length (== seq_len for full batches, shorter for
    /// a single partial sequence).
    t_eff: usize,
}

impl CausalSelfAttention {
    pub fn new(dim: usize, n_heads: usize, seq_len: usize, seed: u64) -> Self {
        assert_eq!(dim % n_heads, 0, "dim must divide into heads");
        CausalSelfAttention {
            qkv: Linear::new(dim, 3 * dim, seed),
            proj: Linear::new(dim, dim, seed.wrapping_add(1)),
            n_heads,
            seq_len,
            cache: None,
        }
    }

    /// `x` is `(B·T) × d` for a batch of full windows, or `T' × d` for a
    /// single (possibly partial) sequence; returns the same shape.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (rows, dim) = x.shape();
        let t = if rows % self.seq_len == 0 && rows > 0 {
            self.seq_len
        } else {
            assert!(
                rows <= self.seq_len,
                "activation rows {rows} must be a multiple of seq_len {} or at most one window",
                self.seq_len
            );
            rows
        };
        let b = rows / t;
        let hd = dim / self.n_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        let qkv = self.qkv.forward(x); // (B·T) × 3d
        let mut heads_out = Matrix::zeros(rows, dim);
        let mut per_head = Vec::with_capacity(b * self.n_heads);

        for bi in 0..b {
            for h in 0..self.n_heads {
                // Slice out Q, K, V for this (batch, head).
                let mut q = Matrix::zeros(t, hd);
                let mut k = Matrix::zeros(t, hd);
                let mut v = Matrix::zeros(t, hd);
                for ti in 0..t {
                    let row = qkv.row(bi * t + ti);
                    let off = h * hd;
                    q.row_mut(ti).copy_from_slice(&row[off..off + hd]);
                    k.row_mut(ti)
                        .copy_from_slice(&row[dim + off..dim + off + hd]);
                    v.row_mut(ti)
                        .copy_from_slice(&row[2 * dim + off..2 * dim + off + hd]);
                }
                // Scores with causal mask, then softmax.
                let mut s = gemm(MatMode::NT, &q, &k);
                s.scale(scale);
                let mut p = Matrix::zeros(t, t);
                for i in 0..t {
                    let srow = s.row(i);
                    let maxv = srow[..=i].iter().cloned().fold(f32::MIN, f32::max);
                    let denom: f32 = srow[..=i].iter().map(|v| (v - maxv).exp()).sum();
                    let prow = p.row_mut(i);
                    for j in 0..=i {
                        prow[j] = (srow[j] - maxv).exp() / denom;
                    }
                }
                let o = gemm(MatMode::NN, &p, &v); // T × hd
                for ti in 0..t {
                    let dst = heads_out.row_mut(bi * t + ti);
                    dst[h * hd..(h + 1) * hd].copy_from_slice(o.row(ti));
                }
                per_head.push((q, k, v, p));
            }
        }
        self.cache = Some(AttnCache {
            per_head,
            batch: b,
            dim,
            t_eff: t,
        });
        self.proj.forward(&heads_out)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("attention backward before forward");
        let d_heads = self.proj.backward(dy); // (B·T) × d
        let t = cache.t_eff;
        let dim = cache.dim;
        let hd = dim / self.n_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        let mut d_qkv = Matrix::zeros(cache.batch * t, 3 * dim);
        for bi in 0..cache.batch {
            for h in 0..self.n_heads {
                let (q, k, v, p) = &cache.per_head[bi * self.n_heads + h];
                // dO for this head.
                let mut d_o = Matrix::zeros(t, hd);
                for ti in 0..t {
                    d_o.row_mut(ti)
                        .copy_from_slice(&d_heads.row(bi * t + ti)[h * hd..(h + 1) * hd]);
                }
                // dV = Pᵀ·dO ; dP = dO·Vᵀ.
                let d_v = gemm(MatMode::TN, p, &d_o);
                let d_p = gemm(MatMode::NT, &d_o, v);
                // Softmax backward (rows, causal support only):
                // dS_ij = P_ij (dP_ij − Σ_l dP_il P_il).
                let mut d_s = Matrix::zeros(t, t);
                for i in 0..t {
                    let prow = p.row(i);
                    let dprow = d_p.row(i);
                    let dot: f32 = (0..=i).map(|j| prow[j] * dprow[j]).sum();
                    let dsrow = d_s.row_mut(i);
                    for j in 0..=i {
                        dsrow[j] = prow[j] * (dprow[j] - dot) * scale;
                    }
                }
                // dQ = dS·K ; dK = dSᵀ·Q.
                let d_q = gemm(MatMode::NN, &d_s, k);
                let d_k = gemm(MatMode::TN, &d_s, q);
                for ti in 0..t {
                    let dst = d_qkv.row_mut(bi * t + ti);
                    let off = h * hd;
                    dst[off..off + hd].copy_from_slice(d_q.row(ti));
                    dst[dim + off..dim + off + hd].copy_from_slice(d_k.row(ti));
                    dst[2 * dim + off..2 * dim + off + hd].copy_from_slice(d_v.row(ti));
                }
            }
        }
        self.qkv.backward(&d_qkv)
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.qkv.params_mut();
        p.extend(self.proj.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causality_holds() {
        // Changing a later token must not change earlier outputs.
        let mut a = CausalSelfAttention::new(8, 2, 4, 1);
        let x1 = Matrix::random(4, 8, 1.0, 2);
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2[(3, c)] += 1.0; // perturb the last position
        }
        let mut a2 = CausalSelfAttention::new(8, 2, 4, 1);
        let y1 = a.forward(&x1);
        let y2 = a2.forward(&x2);
        for ti in 0..3 {
            for c in 0..8 {
                assert!(
                    (y1[(ti, c)] - y2[(ti, c)]).abs() < 1e-6,
                    "position {ti} leaked future information"
                );
            }
        }
        // The perturbed position itself must change.
        assert!(y1
            .row(3)
            .iter()
            .zip(y2.row(3))
            .any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn attention_rows_sum_to_one_effect() {
        // With V all-ones and zero proj bias, output before proj is all
        // ones; check shape plumbing via a 1-head case where qkv weight
        // makes V constant.
        let mut a = CausalSelfAttention::new(4, 1, 3, 3);
        let x = Matrix::random(6, 4, 1.0, 4); // B=2, T=3
        let y = a.forward(&x);
        assert_eq!(y.shape(), (6, 4));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let dim = 6;
        let t = 4;
        let x = Matrix::random(t, dim, 0.8, 5); // B=1
        let wts: Vec<f32> = (0..t * dim)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) / 8.0)
            .collect();
        let loss = |y: &Matrix| -> f32 { y.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };

        let mut attn = CausalSelfAttention::new(dim, 2, t, 6);
        let y = attn.forward(&x);
        let dy = Matrix::from_vec(t, dim, wts.clone());
        let dx = attn.backward(&dy);
        let _ = y;

        for &(r, c) in &[(0usize, 0usize), (1, 3), (3, 5)] {
            let h = 1e-2;
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let mut a1 = CausalSelfAttention::new(dim, 2, t, 6);
            let mut a2 = CausalSelfAttention::new(dim, 2, t, 6);
            let fd = (loss(&a1.forward(&xp)) - loss(&a2.forward(&xm))) / (2.0 * h);
            assert!(
                (dx[(r, c)] - fd).abs() < 3e-2 * (1.0 + fd.abs()),
                "({r},{c}): analytic {} vs fd {fd}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let dim = 4;
        let t = 3;
        let x = Matrix::random(t, dim, 0.8, 7);
        let wts: Vec<f32> = (0..t * dim).map(|i| ((i % 5) as f32 - 2.0) / 2.0).collect();
        let loss = |y: &Matrix| -> f32 { y.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };

        let mut attn = CausalSelfAttention::new(dim, 2, t, 8);
        let _ = attn.forward(&x);
        let dy = Matrix::from_vec(t, dim, wts.clone());
        let _ = attn.backward(&dy);
        let analytic = attn.qkv.w.grad[(1, 2)];

        let h = 2e-2;
        let mut ap = CausalSelfAttention::new(dim, 2, t, 8);
        ap.qkv.w.value[(1, 2)] += h;
        let mut am = CausalSelfAttention::new(dim, 2, t, 8);
        am.qkv.w.value[(1, 2)] -= h;
        let fd = (loss(&ap.forward(&x)) - loss(&am.forward(&x))) / (2.0 * h);
        assert!(
            (analytic - fd).abs() < 3e-2 * (1.0 + fd.abs()),
            "analytic {analytic} vs fd {fd}"
        );
    }
}
