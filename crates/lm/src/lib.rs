//! A small, fully-trainable GPT on CPU.
//!
//! This crate replaces the paper's LitGPT + pre-trained Llama checkpoints
//! for the memorization study (Section VIII): a decoder-only transformer
//! — token/position embeddings, pre-LN blocks with causal multi-head
//! attention and GELU MLPs, a language-model head — with hand-written
//! backward passes for every module (each verified against finite
//! differences), token-maskable cross-entropy (the hook the Goldfish loss
//! uses), AdamW, and greedy decoding for exact-match evaluation.

pub mod attention;
pub mod checkpoint;
pub mod decode;
pub mod gpt;
pub mod llama;
pub mod loss;
pub mod modules;
pub mod optim;

pub use checkpoint::Checkpoint;
pub use decode::KvCache;
pub use gpt::{Gpt, GptModelConfig};
pub use llama::{LlamaBlock, RmsNorm, Rope, SwiGluMlp};
pub use loss::{cross_entropy, CrossEntropyResult};
pub use modules::{Embedding, LayerNorm, Linear, Param};
pub use optim::AdamW;
