//! Llama-family architecture components: RMSNorm, SwiGLU MLP, and rotary
//! position embeddings (RoPE).
//!
//! The paper's memorization study runs on TinyLlama-1B, Llama-2 7B/13B/70B
//! and Llama-3.1 8B/70B/405B, whose blocks differ from GPT-2's: RMSNorm
//! instead of LayerNorm, SwiGLU instead of GELU MLPs, and rotary
//! embeddings instead of learned absolute positions. This module provides
//! those pieces (each with a hand-written backward pass, verified against
//! finite differences) plus [`LlamaBlock`] combining them, so the
//! memorization ladder can be run on architecture-faithful proxies.

use crate::attention::CausalSelfAttention;
use crate::modules::{Linear, Param};
use axonn_tensor::Matrix;

/// Root-mean-square normalization (no mean subtraction, no bias):
/// `y = x / rms(x) * gain`.
pub struct RmsNorm {
    pub gain: Param,
    eps: f32,
    cached: Option<(Matrix, Vec<f32>)>, // x, inv_rms per row
}

impl RmsNorm {
    pub fn new(dim: usize) -> Self {
        RmsNorm {
            gain: Param::new(Matrix::full(1, dim, 1.0)),
            eps: 1e-5,
            cached: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (rows, d) = x.shape();
        let mut out = Matrix::zeros(rows, d);
        let mut inv_rms = Vec::with_capacity(rows);
        let gains = self.gain.value.as_slice();
        for r in 0..rows {
            let row = x.row(r);
            let ms = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
            let ir = 1.0 / (ms + self.eps).sqrt();
            let orow = out.row_mut(r);
            for c in 0..d {
                orow[c] = row[c] * ir * gains[c];
            }
            inv_rms.push(ir);
        }
        self.cached = Some((x.clone(), inv_rms));
        out
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x, inv_rms) = self.cached.take().expect("RmsNorm backward before forward");
        let (rows, d) = x.shape();
        let gains = self.gain.value.as_slice().to_vec();
        let mut dx = Matrix::zeros(rows, d);
        for (r, &ir) in inv_rms.iter().enumerate().take(rows) {
            let xr = x.row(r);
            let dyr = dy.row(r);
            // dL/dgain_c += dy_c * x_c * ir  (per row).
            for c in 0..d {
                self.gain.grad.as_mut_slice()[c] += dyr[c] * xr[c] * ir;
            }
            // y_c = g_c * x_c * ir with ir = (mean(x²)+eps)^(-1/2):
            // dx_c = ir * g_c dy_c − ir³/d · x_c · Σ_j g_j dy_j x_j
            let dot: f32 = (0..d).map(|j| gains[j] * dyr[j] * xr[j]).sum();
            let dr = dx.row_mut(r);
            for c in 0..d {
                dr[c] = ir * gains[c] * dyr[c] - ir * ir * ir / d as f32 * xr[c] * dot;
            }
        }
        dx
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain]
    }
}

/// The SwiGLU MLP of Llama: `down( silu(gate(x)) ⊙ up(x) )`, with the
/// conventional `8d/3`-ish hidden width rounded to a multiple of 8.
pub struct SwiGluMlp {
    pub gate: Linear,
    pub up: Linear,
    pub down: Linear,
    cached: Option<(Matrix, Matrix)>, // gate pre-activation, up output
}

fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

fn silu_grad(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

/// Llama's hidden width: 2/3 · 4d, rounded up to a multiple of 8.
pub fn swiglu_hidden(dim: usize) -> usize {
    let h = 8 * dim / 3;
    h.div_ceil(8) * 8
}

impl SwiGluMlp {
    pub fn new(dim: usize, seed: u64) -> Self {
        let hidden = swiglu_hidden(dim);
        SwiGluMlp {
            gate: Linear::new(dim, hidden, seed),
            up: Linear::new(dim, hidden, seed.wrapping_add(1)),
            down: Linear::new(hidden, dim, seed.wrapping_add(2)),
            cached: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let g = self.gate.forward(x);
        let u = self.up.forward(x);
        let mut h = g.clone();
        for (hv, uv) in h.as_mut_slice().iter_mut().zip(u.as_slice()) {
            *hv = silu(*hv) * uv;
        }
        self.cached = Some((g, u));
        self.down.forward(&h)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let dh = self.down.backward(dy);
        let (g, u) = self.cached.take().expect("SwiGLU backward before forward");
        // h = silu(g) ⊙ u.
        let mut dg = dh.clone();
        let mut du = dh;
        for i in 0..dg.len() {
            let gv = g.as_slice()[i];
            let uv = u.as_slice()[i];
            let d = dg.as_slice()[i];
            dg.as_mut_slice()[i] = d * uv * silu_grad(gv);
            du.as_mut_slice()[i] = d * silu(gv);
        }
        let mut dx = self.gate.backward(&dg);
        dx.add_assign(&self.up.backward(&du));
        dx
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.gate.params_mut();
        p.extend(self.up.params_mut());
        p.extend(self.down.params_mut());
        p
    }
}

/// Rotary position embeddings: rotate pairs of feature dimensions by a
/// position-dependent angle. Applied to an activation matrix laid out as
/// `(B·T) × d` with window length `seq_len`; its exact inverse-rotation
/// backward makes it trivially gradient-correct.
pub struct Rope {
    pub seq_len: usize,
    /// Rotation angles per (position, pair).
    cos_sin: Vec<(f32, f32)>,
    dim: usize,
}

impl Rope {
    pub fn new(dim: usize, seq_len: usize) -> Self {
        assert_eq!(dim % 2, 0, "RoPE needs an even dimension");
        let half = dim / 2;
        let mut cos_sin = Vec::with_capacity(seq_len * half);
        for pos in 0..seq_len {
            for i in 0..half {
                let theta = pos as f32 / 10000f32.powf(2.0 * i as f32 / dim as f32);
                cos_sin.push((theta.cos(), theta.sin()));
            }
        }
        Rope {
            seq_len,
            cos_sin,
            dim,
        }
    }

    fn rotate(&self, x: &Matrix, sign: f32) -> Matrix {
        let (rows, d) = x.shape();
        assert_eq!(d, self.dim, "RoPE dimension mismatch");
        let half = d / 2;
        let mut out = Matrix::zeros(rows, d);
        for r in 0..rows {
            let pos = r % self.seq_len;
            let xr = x.row(r);
            let or = out.row_mut(r);
            for i in 0..half {
                let (c, s) = self.cos_sin[pos * half + i];
                let s = s * sign;
                let (a, b) = (xr[2 * i], xr[2 * i + 1]);
                or[2 * i] = a * c - b * s;
                or[2 * i + 1] = a * s + b * c;
            }
        }
        out
    }

    /// Apply the rotation.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.rotate(x, 1.0)
    }

    /// Backward = the inverse rotation (rotations are orthogonal).
    pub fn backward(&self, dy: &Matrix) -> Matrix {
        self.rotate(dy, -1.0)
    }
}

/// A Llama-style block: RMSNorm → attention (with learned positions
/// handled by the embedding in `Gpt`; here RoPE is exposed for standalone
/// use) → residual, RMSNorm → SwiGLU → residual.
pub struct LlamaBlock {
    norm1: RmsNorm,
    attn: CausalSelfAttention,
    norm2: RmsNorm,
    mlp: SwiGluMlp,
}

impl LlamaBlock {
    pub fn new(dim: usize, n_heads: usize, seq_len: usize, seed: u64) -> Self {
        LlamaBlock {
            norm1: RmsNorm::new(dim),
            attn: CausalSelfAttention::new(dim, n_heads, seq_len, seed),
            norm2: RmsNorm::new(dim),
            mlp: SwiGluMlp::new(dim, seed.wrapping_add(50)),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let n = self.norm1.forward(x);
        let mut h = self.attn.forward(&n);
        h.add_assign(x);
        let n2 = self.norm2.forward(&h);
        let mut out = self.mlp.forward(&n2);
        out.add_assign(&h);
        out
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let d_mlp_in = self.mlp.backward(dy);
        let mut dh = self.norm2.backward(&d_mlp_in);
        dh.add_assign(dy);
        let d_attn_in = self.attn.backward(&dh);
        let mut dx = self.norm1.backward(&d_attn_in);
        dx.add_assign(&dh);
        dx
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.norm1.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.norm2.params_mut());
        p.extend(self.mlp.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmsnorm_unit_rms_rows() {
        let mut n = RmsNorm::new(8);
        let x = Matrix::random(4, 8, 2.0, 1);
        let y = n.forward(&x);
        for r in 0..4 {
            let rms = (y.row(r).iter().map(|v| v * v).sum::<f32>() / 8.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "row {r} rms {rms}");
        }
    }

    #[test]
    fn rmsnorm_backward_matches_finite_difference() {
        let dim = 6;
        let x = Matrix::random(3, dim, 1.0, 2);
        let wts: Vec<f32> = (0..3 * dim)
            .map(|i| ((i * 13 % 7) as f32 - 3.0) / 3.0)
            .collect();
        let loss = |m: &Matrix| -> f32 { m.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };
        let mut n = RmsNorm::new(dim);
        let _ = n.forward(&x);
        let dy = Matrix::from_vec(3, dim, wts.clone());
        let dx = n.backward(&dy);
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 5)] {
            let h = 1e-2;
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let mut n1 = RmsNorm::new(dim);
            let mut n2 = RmsNorm::new(dim);
            let fd = (loss(&n1.forward(&xp)) - loss(&n2.forward(&xm))) / (2.0 * h);
            assert!(
                (dx[(r, c)] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "({r},{c}): {} vs {fd}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn swiglu_hidden_width_rule() {
        assert_eq!(swiglu_hidden(12), 32);
        assert_eq!(swiglu_hidden(48), 128);
        // Always a multiple of 8 and close to 8d/3.
        for d in [16usize, 64, 128, 256] {
            let h = swiglu_hidden(d);
            assert_eq!(h % 8, 0);
            assert!((h as f64) >= 8.0 * d as f64 / 3.0);
            assert!((h as f64) < 8.0 * d as f64 / 3.0 + 8.0);
        }
    }

    #[test]
    fn swiglu_backward_matches_finite_difference() {
        let dim = 6;
        let x = Matrix::random(3, dim, 0.8, 3);
        let wts: Vec<f32> = (0..3 * dim)
            .map(|i| ((i * 19 % 11) as f32 - 5.0) / 5.0)
            .collect();
        let loss = |m: &Matrix| -> f32 { m.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };
        let mut mlp = SwiGluMlp::new(dim, 9);
        let _ = mlp.forward(&x);
        let dy = Matrix::from_vec(3, dim, wts.clone());
        let dx = mlp.backward(&dy);
        for &(r, c) in &[(0usize, 1usize), (1, 4), (2, 0)] {
            let h = 1e-2;
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let mut m1 = SwiGluMlp::new(dim, 9);
            let mut m2 = SwiGluMlp::new(dim, 9);
            let fd = (loss(&m1.forward(&xp)) - loss(&m2.forward(&xm))) / (2.0 * h);
            assert!(
                (dx[(r, c)] - fd).abs() < 3e-2 * (1.0 + fd.abs()),
                "({r},{c}): {} vs {fd}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn rope_is_orthogonal() {
        // Rotation preserves norms and backward inverts forward exactly.
        let rope = Rope::new(8, 4);
        let x = Matrix::random(8, 8, 1.0, 4); // B=2, T=4
        let y = rope.forward(&x);
        for r in 0..8 {
            let nx: f32 = x.row(r).iter().map(|v| v * v).sum();
            let ny: f32 = y.row(r).iter().map(|v| v * v).sum();
            assert!((nx - ny).abs() < 1e-4, "row {r}: {nx} vs {ny}");
        }
        let back = rope.backward(&y);
        assert!(back.approx_eq(&x, 1e-5), "inverse rotation failed");
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let rope = Rope::new(6, 3);
        let x = Matrix::random(3, 6, 1.0, 5);
        let y = rope.forward(&x);
        for c in 0..6 {
            assert!(
                (y[(0, c)] - x[(0, c)]).abs() < 1e-6,
                "pos 0 must be unrotated"
            );
        }
        // Later positions rotate.
        assert!((0..6).any(|c| (y[(2, c)] - x[(2, c)]).abs() > 1e-4));
    }

    #[test]
    fn llama_block_trains() {
        use crate::loss::cross_entropy;
        use crate::optim::AdamW;
        // A single Llama block + linear head can fit a small mapping.
        let dim = 16;
        let t = 4;
        let mut block = LlamaBlock::new(dim, 2, t, 6);
        let mut head = Linear::new(dim, 5, 7);
        let mut opt = AdamW::new(3e-3);
        let x = Matrix::random(t, dim, 0.5, 8);
        let targets = [0usize, 3, 1, 4];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..80 {
            let h = block.forward(&x);
            let logits = head.forward(&h);
            let res = cross_entropy(&logits, &targets, None);
            let dh = head.backward(&res.d_logits);
            let _ = block.backward(&dh);
            opt.next_step();
            let snapshot = opt;
            for p in block.params_mut() {
                snapshot.update(p);
            }
            for p in head.params_mut() {
                snapshot.update(p);
            }
            if step == 0 {
                first = res.loss;
            }
            last = res.loss;
        }
        assert!(
            last < 0.3 * first,
            "Llama block failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn llama_block_backward_matches_finite_difference() {
        let dim = 8;
        let t = 3;
        let x = Matrix::random(t, dim, 0.5, 10);
        let wts: Vec<f32> = (0..t * dim)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0)
            .collect();
        let loss = |m: &Matrix| -> f32 { m.as_slice().iter().zip(&wts).map(|(a, b)| a * b).sum() };
        let mut b = LlamaBlock::new(dim, 2, t, 11);
        let _ = b.forward(&x);
        let dy = Matrix::from_vec(t, dim, wts.clone());
        let dx = b.backward(&dy);
        for &(r, c) in &[(0usize, 0usize), (1, 4), (2, 7)] {
            let h = 5e-3;
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let mut b1 = LlamaBlock::new(dim, 2, t, 11);
            let mut b2 = LlamaBlock::new(dim, 2, t, 11);
            let fd = (loss(&b1.forward(&xp)) - loss(&b2.forward(&xm))) / (2.0 * h);
            assert!(
                (dx[(r, c)] - fd).abs() < 5e-2 * (1.0 + fd.abs()),
                "({r},{c}): {} vs {fd}",
                dx[(r, c)]
            );
        }
    }
}
