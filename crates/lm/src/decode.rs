//! KV-cached autoregressive decoding over an immutable [`Gpt`].
//!
//! The training modules (`modules`, `attention`) take `&mut self`
//! because they cache activations for backward; inference needs neither
//! the mutation nor the caches, so this module re-implements the forward
//! math as free functions over `&Gpt` plus a per-request [`KvCache`].
//! Prefill runs the prompt in one batched pass (storing every layer's
//! K/V rows); each subsequent token then costs O(seq) attention against
//! the cached keys/values instead of the full-sequence recompute the
//! seed's `greedy_continuation` performed.
//!
//! **Bit-identity contract.** Every loop below mirrors the corresponding
//! training-module loop exactly — same `gemm` kernels, same softmax
//! accumulation order, same bias/residual element order — so the logits
//! produced here are *bitwise* equal to a full forward pass over the
//! same context (proptested in `tests/decode_oracle.rs`). The one
//! non-obvious ingredient: `gemm_nn` skips exact-zero A entries, so the
//! causal-masked zeros in the training path's T×T probability matrix
//! contribute nothing (not even `+0.0` additions) to P·V, which makes a
//! 1×(p+1) probability row reproduce row p of the batched product
//! bit-for-bit.

use crate::gpt::{gelu, Gpt, GptModelConfig};
use crate::modules::{LayerNorm, Linear};
use axonn_tensor::{gemm, MatMode, Matrix};

/// Per-request key/value cache: one K and one V matrix per (layer, head),
/// preallocated at `seq_len × head_dim`, filled up to [`KvCache::len`].
pub struct KvCache {
    /// `layers[l].0[h]` = K rows, `layers[l].1[h]` = V rows.
    layers: Vec<(Vec<Matrix>, Vec<Matrix>)>,
    len: usize,
    seq_len: usize,
    n_heads: usize,
    head_dim: usize,
}

impl KvCache {
    /// An empty cache sized for one generation window of `cfg`.
    pub fn for_model(cfg: &GptModelConfig) -> KvCache {
        Self::with_heads(
            cfg.n_layers,
            cfg.n_heads,
            cfg.seq_len,
            cfg.dim / cfg.n_heads,
        )
    }

    /// An empty cache holding `n_heads` heads per layer — the
    /// tensor-parallel decode path caches only the heads its rank owns.
    pub fn with_heads(n_layers: usize, n_heads: usize, seq_len: usize, head_dim: usize) -> KvCache {
        let layers = (0..n_layers)
            .map(|_| {
                let ks = (0..n_heads)
                    .map(|_| Matrix::zeros(seq_len, head_dim))
                    .collect();
                let vs = (0..n_heads)
                    .map(|_| Matrix::zeros(seq_len, head_dim))
                    .collect();
                (ks, vs)
            })
            .collect();
        KvCache {
            layers,
            len: 0,
            seq_len,
            n_heads,
            head_dim,
        }
    }

    /// Number of positions currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Positions the cache can still absorb before the window is full.
    pub fn remaining(&self) -> usize {
        self.seq_len - self.len
    }

    /// Resident size of the cached K/V planes plus preallocated slack —
    /// the quantity a serving scheduler budgets as a "cache slab".
    pub fn approx_bytes(&self) -> usize {
        self.layers.len() * self.n_heads * 2 * self.seq_len * self.head_dim * 4
    }

    /// Drop all cached positions (the slab stays allocated).
    pub fn reset(&mut self) {
        self.len = 0;
    }

    /// The first `len` cached K rows of `(layer, head)` as a dense
    /// matrix operand. Public for the tensor-parallel decode path, which
    /// runs the same attention loop over a partial-head cache.
    pub fn k_mat(&self, layer: usize, head: usize, len: usize) -> Matrix {
        let k = &self.layers[layer].0[head];
        Matrix::from_vec(
            len,
            self.head_dim,
            k.as_slice()[..len * self.head_dim].to_vec(),
        )
    }

    /// See [`KvCache::k_mat`].
    pub fn v_mat(&self, layer: usize, head: usize, len: usize) -> Matrix {
        let v = &self.layers[layer].1[head];
        Matrix::from_vec(
            len,
            self.head_dim,
            v.as_slice()[..len * self.head_dim].to_vec(),
        )
    }

    /// Store position `pos`'s K/V rows for `(layer, head)`.
    pub fn push_row(
        &mut self,
        layer: usize,
        head: usize,
        pos: usize,
        k_row: &[f32],
        v_row: &[f32],
    ) {
        self.layers[layer].0[head]
            .row_mut(pos)
            .copy_from_slice(k_row);
        self.layers[layer].1[head]
            .row_mut(pos)
            .copy_from_slice(v_row);
    }

    /// Mark `n` more positions as cached (after [`KvCache::push_row`]ing
    /// them for every layer and head).
    pub fn advance(&mut self, n: usize) {
        assert!(
            self.len + n <= self.seq_len,
            "cache advanced past its window"
        );
        self.len += n;
    }
}

/// `y = x·W + b` exactly as [`Linear::forward`], without caching.
pub fn linear_infer(l: &Linear, x: &Matrix) -> Matrix {
    let mut y = gemm(MatMode::NN, x, &l.w.value);
    for r in 0..y.rows() {
        let row = y.row_mut(r);
        for (v, b) in row.iter_mut().zip(l.b.value.as_slice()) {
            *v += b;
        }
    }
    y
}

/// Row-wise layer normalization exactly as [`LayerNorm::forward`].
pub fn layernorm_infer(ln: &LayerNorm, x: &Matrix) -> Matrix {
    let (rows, d) = x.shape();
    let eps = ln.eps();
    let mut out = Matrix::zeros(rows, d);
    for r in 0..rows {
        let row = x.row(r);
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv_std = 1.0 / (var + eps).sqrt();
        let orow = out.row_mut(r);
        for (c, (&xv, ov)) in row.iter().zip(orow.iter_mut()).enumerate() {
            let norm = (xv - mean) * inv_std;
            *ov = norm * ln.gain.value.as_slice()[c] + ln.bias.value.as_slice()[c];
        }
    }
    out
}

/// Token + positional embedding rows for `tokens` starting at absolute
/// position `start_pos`, exactly as `Embedding::forward` computes them
/// for the same positions.
fn embed_rows(model: &Gpt, tokens: &[usize], start_pos: usize) -> Matrix {
    let d = model.emb.tok.value.cols();
    let mut out = Matrix::zeros(tokens.len(), d);
    for (i, &t) in tokens.iter().enumerate() {
        let p = start_pos + i;
        let orow = out.row_mut(i);
        let trow = model.emb.tok.value.row(t);
        let prow = model.emb.pos.value.row(p);
        for c in 0..d {
            orow[c] = trow[c] + prow[c];
        }
    }
    out
}

/// Causal softmax over `srow[..=i]`, written into `prow` — the exact
/// per-row loop from `CausalSelfAttention::forward` (entries past `i`
/// are left at `+0.0`, which `gemm_nn` then skips).
fn causal_softmax_row(srow: &[f32], i: usize, prow: &mut [f32]) {
    let maxv = srow[..=i].iter().cloned().fold(f32::MIN, f32::max);
    let denom: f32 = srow[..=i].iter().map(|v| (v - maxv).exp()).sum();
    for j in 0..=i {
        prow[j] = (srow[j] - maxv).exp() / denom;
    }
}

/// Run the prompt through the model in one batched pass, filling `cache`
/// with every layer's K/V rows. Returns the full `prompt.len() × vocab`
/// logits matrix (row `prompt.len()-1` feeds the first sampled token).
///
/// # Panics
/// If the cache is non-empty, the prompt is empty, or it exceeds the
/// model window.
pub fn prefill(model: &Gpt, prompt: &[usize], cache: &mut KvCache) -> Matrix {
    assert!(cache.is_empty(), "prefill into a non-empty cache");
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        prompt.len() <= cache.seq_len,
        "prompt length {} exceeds seq_len {}",
        prompt.len(),
        cache.seq_len
    );
    let t = prompt.len();
    let dim = model.cfg.dim;
    let n_heads = model.cfg.n_heads;
    let hd = dim / n_heads;
    let scale = 1.0 / (hd as f32).sqrt();

    let mut x = embed_rows(model, prompt, 0);
    for (li, block) in model.blocks.iter().enumerate() {
        let normed = layernorm_infer(&block.ln1, &x);
        let qkv = linear_infer(&block.attn.qkv, &normed);
        let mut heads_out = Matrix::zeros(t, dim);
        for h in 0..n_heads {
            // Slice out Q, K, V for this head — same row copies as the
            // training module's (b=1) path.
            let mut q = Matrix::zeros(t, hd);
            let mut k = Matrix::zeros(t, hd);
            let mut v = Matrix::zeros(t, hd);
            for ti in 0..t {
                let row = qkv.row(ti);
                let off = h * hd;
                q.row_mut(ti).copy_from_slice(&row[off..off + hd]);
                k.row_mut(ti)
                    .copy_from_slice(&row[dim + off..dim + off + hd]);
                v.row_mut(ti)
                    .copy_from_slice(&row[2 * dim + off..2 * dim + off + hd]);
            }
            let mut s = gemm(MatMode::NT, &q, &k);
            s.scale(scale);
            let mut p = Matrix::zeros(t, t);
            for i in 0..t {
                causal_softmax_row(s.row(i), i, p.row_mut(i));
            }
            let o = gemm(MatMode::NN, &p, &v);
            for ti in 0..t {
                heads_out.row_mut(ti)[h * hd..(h + 1) * hd].copy_from_slice(o.row(ti));
            }
            for ti in 0..t {
                cache.push_row(li, h, ti, k.row(ti), v.row(ti));
            }
        }
        let mut hres = linear_infer(&block.attn.proj, &heads_out);
        hres.add_assign(&x);
        let normed2 = layernorm_infer(&block.ln2, &hres);
        let pre = linear_infer(&block.mlp.fc1, &normed2);
        let mut act = pre.clone();
        act.map_inplace(gelu);
        let mut out = linear_infer(&block.mlp.fc2, &act);
        out.add_assign(&hres);
        x = out;
    }
    cache.len = t;
    let x = layernorm_infer(&model.ln_f, &x);
    linear_infer(&model.head, &x)
}

/// Feed one token at the cache's current position and return its logits
/// row (`vocab` floats). Attention runs against the cached K/V only —
/// O(cache.len) per layer instead of a full-window recompute.
///
/// # Panics
/// If the cache is empty (prefill first) or the window is full.
pub fn decode_step(model: &Gpt, token: usize, cache: &mut KvCache) -> Vec<f32> {
    assert!(!cache.is_empty(), "decode_step before prefill");
    assert!(cache.remaining() > 0, "generation window exceeds seq_len");
    let pos = cache.len;
    let dim = model.cfg.dim;
    let n_heads = model.cfg.n_heads;
    let hd = dim / n_heads;
    let scale = 1.0 / (hd as f32).sqrt();

    let mut x = embed_rows(model, &[token], pos);
    for (li, block) in model.blocks.iter().enumerate() {
        let normed = layernorm_infer(&block.ln1, &x);
        let qkv = linear_infer(&block.attn.qkv, &normed);
        let mut heads_out = Matrix::zeros(1, dim);
        for h in 0..n_heads {
            let row = qkv.row(0);
            let off = h * hd;
            let q = Matrix::from_vec(1, hd, row[off..off + hd].to_vec());
            cache.push_row(
                li,
                h,
                pos,
                &row[dim + off..dim + off + hd],
                &row[2 * dim + off..2 * dim + off + hd],
            );
            // Attend over the cached rows *including* the one just pushed.
            let k = cache.k_mat(li, h, pos + 1);
            let v = cache.v_mat(li, h, pos + 1);
            let mut s = gemm(MatMode::NT, &q, &k);
            s.scale(scale);
            let mut p = Matrix::zeros(1, pos + 1);
            causal_softmax_row(s.row(0), pos, p.row_mut(0));
            let o = gemm(MatMode::NN, &p, &v);
            heads_out.row_mut(0)[h * hd..(h + 1) * hd].copy_from_slice(o.row(0));
        }
        let mut hres = linear_infer(&block.attn.proj, &heads_out);
        hres.add_assign(&x);
        let normed2 = layernorm_infer(&block.ln2, &hres);
        let pre = linear_infer(&block.mlp.fc1, &normed2);
        let mut act = pre.clone();
        act.map_inplace(gelu);
        let mut out = linear_infer(&block.mlp.fc2, &act);
        out.add_assign(&hres);
        x = out;
    }
    cache.len = pos + 1;
    let x = layernorm_infer(&model.ln_f, &x);
    linear_infer(&model.head, &x).row(0).to_vec()
}

/// Greedy token choice — the exact `max_by(total_cmp)` expression the
/// seed's continuation used, so ties break identically.
pub fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("nonempty vocab")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;

    fn toy() -> Gpt {
        Gpt::new(GptModelConfig {
            vocab: 12,
            seq_len: 10,
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            seed: 3,
        })
    }

    #[test]
    fn prefill_logits_match_full_forward_bitwise() {
        let mut g = toy();
        let prompt = [3usize, 1, 4, 1, 5];
        let mut cache = KvCache::for_model(&g.cfg);
        let kv = prefill(&g, &prompt, &mut cache);
        let full = g.forward(&prompt);
        assert_eq!(kv.shape(), full.shape());
        for (a, b) in kv.as_slice().iter().zip(full.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(cache.len(), prompt.len());
    }

    #[test]
    fn decode_step_matches_full_forward_bitwise() {
        let mut g = toy();
        let prompt = [3usize, 1, 4];
        let mut cache = KvCache::for_model(&g.cfg);
        let _ = prefill(&g, &prompt, &mut cache);
        let mut ctx = prompt.to_vec();
        for &tok in &[7usize, 2, 9, 0] {
            let row = decode_step(&g, tok, &mut cache);
            ctx.push(tok);
            let full = g.forward(&ctx);
            let want = full.row(ctx.len() - 1);
            assert_eq!(row.len(), want.len());
            for (a, b) in row.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits(), "ctx {ctx:?}");
            }
        }
    }

    #[test]
    fn greedy_continuation_matches_recompute_oracle() {
        let mut g = toy();
        let mut opt = AdamW::new(3e-3);
        let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        for _ in 0..60 {
            g.train_step(&seq[..9], &seq[1..10], None, &mut opt);
        }
        let kv = g.greedy_continuation(&seq[..4], 5);
        let oracle = g.greedy_continuation_recompute(&seq[..4], 5);
        assert_eq!(kv, oracle);
    }

    #[test]
    fn cache_reset_allows_reuse() {
        let g = toy();
        let mut cache = KvCache::for_model(&g.cfg);
        let a = prefill(&g, &[1, 2, 3], &mut cache);
        cache.reset();
        let b = prefill(&g, &[1, 2, 3], &mut cache);
        assert_eq!(a, b);
    }

    #[test]
    fn approx_bytes_counts_kv_planes() {
        let g = toy();
        let cache = KvCache::for_model(&g.cfg);
        // 2 layers × 2 heads × 2 planes × 10 positions × 8 head-dim × 4B.
        assert_eq!(cache.approx_bytes(), 2 * 2 * 2 * 10 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "decode_step before prefill")]
    fn decode_before_prefill_panics() {
        let g = toy();
        let mut cache = KvCache::for_model(&g.cfg);
        let _ = decode_step(&g, 0, &mut cache);
    }

    #[test]
    #[should_panic(expected = "generation window exceeds seq_len")]
    fn decode_past_window_panics() {
        let g = toy();
        let mut cache = KvCache::for_model(&g.cfg);
        let _ = prefill(&g, &[0; 10], &mut cache);
        let _ = decode_step(&g, 0, &mut cache);
    }
}
