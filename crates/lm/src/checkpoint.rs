//! Model checkpointing: save and restore GPT weights.
//!
//! The memorization study fine-tunes from *pre-trained checkpoints*
//! (Section VIII-B starts from TinyLlama/Llama weights); this module is
//! the loading/saving machinery that makes that workflow real in the
//! reproduction — pre-train once, snapshot, run many continued-training
//! experiments from the same starting point.

use crate::gpt::{Gpt, GptModelConfig};
use axonn_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// File-format magic of a serialized checkpoint.
pub const CHECKPOINT_MAGIC: &str = "AXNN-LMCK";
/// Current checkpoint format version; older/newer files fail loading
/// with a clear message instead of silently misreading.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A serializable snapshot of a model: versioned envelope, architecture,
/// parameter values and a per-tensor FNV-1a64 checksum (hex). Optimizer
/// state is not checkpointed, as in most inference/fine-tune
/// checkpoints.
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    pub magic: String,
    pub version: u64,
    pub vocab: usize,
    pub seq_len: usize,
    pub dim: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub seed: u64,
    pub params: Vec<Matrix>,
    /// FNV-1a64 digest of each tensor in `params`, in order — any bit
    /// flip between save and load is caught at read time.
    pub param_checksums: Vec<String>,
}

/// Canonical name of parameter `i` in [`Gpt::params_mut`] order for a
/// model with `n_layers` blocks — `emb.tok`, `block0.attn.qkv.w`,
/// `head.b`, … Serving loads untrusted checkpoint files at startup, so
/// every per-tensor error names the tensor instead of a bare index.
pub fn tensor_name(i: usize, n_layers: usize) -> String {
    const PER_BLOCK: [&str; 12] = [
        "ln1.gain",
        "ln1.bias",
        "attn.qkv.w",
        "attn.qkv.b",
        "attn.proj.w",
        "attn.proj.b",
        "ln2.gain",
        "ln2.bias",
        "mlp.fc1.w",
        "mlp.fc1.b",
        "mlp.fc2.w",
        "mlp.fc2.b",
    ];
    match i {
        0 => return "emb.tok".to_string(),
        1 => return "emb.pos".to_string(),
        _ => {}
    }
    let body = i - 2;
    let block_tensors = n_layers * PER_BLOCK.len();
    if body < block_tensors {
        return format!(
            "block{}.{}",
            body / PER_BLOCK.len(),
            PER_BLOCK[body % PER_BLOCK.len()]
        );
    }
    match body - block_tensors {
        0 => "ln_f.gain".to_string(),
        1 => "ln_f.bias".to_string(),
        2 => "head.w".to_string(),
        3 => "head.b".to_string(),
        n => format!("tensor {}(unknown +{n})", i),
    }
}

impl Checkpoint {
    /// Snapshot a model's parameters.
    pub fn capture(model: &mut Gpt) -> Checkpoint {
        let cfg = model.cfg.clone();
        let params: Vec<Matrix> = model.params_mut().iter().map(|p| p.value.clone()).collect();
        let param_checksums = params
            .iter()
            .map(|m| format!("{:016x}", m.fnv1a64()))
            .collect();
        Checkpoint {
            magic: CHECKPOINT_MAGIC.to_string(),
            version: CHECKPOINT_VERSION,
            vocab: cfg.vocab,
            seq_len: cfg.seq_len,
            dim: cfg.dim,
            n_heads: cfg.n_heads,
            n_layers: cfg.n_layers,
            seed: cfg.seed,
            params,
            param_checksums,
        }
    }

    /// Validate the envelope and every tensor checksum.
    ///
    /// # Errors
    /// On bad magic, unsupported version, checksum count mismatch, or
    /// any tensor whose recomputed digest differs from the stored one.
    pub fn verify(&self) -> Result<(), String> {
        if self.magic != CHECKPOINT_MAGIC {
            return Err(format!(
                "not a model checkpoint: magic {:?}, expected {CHECKPOINT_MAGIC:?}",
                self.magic
            ));
        }
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {} (this build reads {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        if self.param_checksums.len() != self.params.len() {
            return Err(format!(
                "checkpoint lists {} checksums for {} tensors",
                self.param_checksums.len(),
                self.params.len()
            ));
        }
        for (i, (m, want_hex)) in self.params.iter().zip(&self.param_checksums).enumerate() {
            let name = tensor_name(i, self.n_layers);
            let want = u64::from_str_radix(want_hex, 16).map_err(|e| {
                format!("tensor {i} ({name}): malformed checksum {want_hex:?}: {e}")
            })?;
            let got = m.fnv1a64();
            if got != want {
                return Err(format!(
                    "tensor {i} ({name}): checksum mismatch (stored {want:016x}, recomputed {got:016x}) — checkpoint is corrupt"
                ));
            }
        }
        Ok(())
    }

    /// Rebuild a model from the snapshot.
    ///
    /// # Errors
    /// If the parameter list does not match the architecture.
    pub fn restore(&self) -> Result<Gpt, String> {
        let mut model = Gpt::new(GptModelConfig {
            vocab: self.vocab,
            seq_len: self.seq_len,
            dim: self.dim,
            n_heads: self.n_heads,
            n_layers: self.n_layers,
            seed: self.seed,
        });
        let mut params = model.params_mut();
        if params.len() != self.params.len() {
            return Err(format!(
                "checkpoint has {} tensors, architecture expects {}",
                self.params.len(),
                params.len()
            ));
        }
        for (i, (dst, src)) in params.iter_mut().zip(&self.params).enumerate() {
            if dst.value.shape() != src.shape() {
                return Err(format!(
                    "tensor {i} ({}): checkpoint shape {:?} vs architecture {:?}",
                    tensor_name(i, self.n_layers),
                    src.shape(),
                    dst.value.shape()
                ));
            }
            dst.value = src.clone();
        }
        Ok(model)
    }

    /// Serialize to any writer as JSON.
    pub fn write_to(&self, w: impl Write) -> Result<(), String> {
        serde_json::to_writer(w, self).map_err(|e| format!("serialize checkpoint: {e}"))
    }

    /// Deserialize from any reader, validating the envelope and every
    /// tensor checksum — truncated or bit-flipped files fail here with a
    /// clear message instead of producing a silently wrong model.
    pub fn read_from(r: impl Read) -> Result<Checkpoint, String> {
        let ck: Checkpoint =
            serde_json::from_reader(r).map_err(|e| format!("parse checkpoint: {e}"))?;
        ck.verify()?;
        Ok(ck)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let f = std::fs::File::create(path.as_ref())
            .map_err(|e| format!("create {}: {e}", path.as_ref().display()))?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, String> {
        let f = std::fs::File::open(path.as_ref())
            .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;

    fn toy() -> Gpt {
        Gpt::new(GptModelConfig {
            vocab: 10,
            seq_len: 6,
            dim: 8,
            n_heads: 2,
            n_layers: 1,
            seed: 4,
        })
    }

    #[test]
    fn round_trip_preserves_behaviour_exactly() {
        let mut model = toy();
        let mut opt = AdamW::new(2e-3);
        let seq = [1usize, 3, 5, 7, 2, 9];
        for _ in 0..20 {
            model.train_step(&seq[..5], &seq[1..6], None, &mut opt);
        }
        let before = model.forward(&seq[..5]);

        let ck = Checkpoint::capture(&mut model);
        let mut restored = ck.restore().unwrap();
        let after = restored.forward(&seq[..5]);
        assert_eq!(before, after, "restored model diverges");
    }

    #[test]
    fn json_round_trip_through_memory() {
        let mut model = toy();
        let ck = Checkpoint::capture(&mut model);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.params.len(), ck.params.len());
        let mut a = ck.restore().unwrap();
        let mut b = back.restore().unwrap();
        let tokens = [0usize, 1, 2, 3];
        assert_eq!(a.forward(&tokens), b.forward(&tokens));
    }

    #[test]
    fn file_round_trip() {
        let mut model = toy();
        let ck = Checkpoint::capture(&mut model);
        let dir = std::env::temp_dir().join("axonn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.json");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.dim, 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let mut model = toy();
        let mut ck = Checkpoint::capture(&mut model);
        ck.n_layers = 2; // architecture now expects more tensors
        let err = ck.restore().map(|_| ()).unwrap_err();
        assert!(err.contains("tensors"), "unexpected error: {err}");

        let mut ck2 = Checkpoint::capture(&mut model);
        ck2.params[0] = Matrix::zeros(3, 3); // wrong shape
        let err2 = ck2.restore().map(|_| ()).unwrap_err();
        assert!(err2.contains("shape"), "unexpected error: {err2}");
    }

    #[test]
    fn single_bit_flip_is_detected_at_load() {
        let mut model = toy();
        let ck = Checkpoint::capture(&mut model);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        // Round-trip through JSON, flip one mantissa bit of one weight,
        // and re-serialize — load must refuse the file.
        let mut tampered: Checkpoint = serde_json::from_reader(buf.as_slice()).unwrap();
        let v = tampered.params[0].as_mut_slice();
        v[0] = f32::from_bits(v[0].to_bits() ^ 1);
        let mut buf2 = Vec::new();
        serde_json::to_writer(&mut buf2, &tampered).unwrap();
        let err = Checkpoint::read_from(buf2.as_slice()).unwrap_err();
        assert!(err.contains("checksum mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn truncated_file_fails_with_parse_error() {
        let mut model = toy();
        let ck = Checkpoint::capture(&mut model);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let err = Checkpoint::read_from(&buf[..buf.len() / 2]).unwrap_err();
        assert!(err.contains("parse checkpoint"), "unexpected error: {err}");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut model = toy();
        let mut ck = Checkpoint::capture(&mut model);
        ck.version = CHECKPOINT_VERSION + 1;
        let err = ck.verify().unwrap_err();
        assert!(err.contains("version"), "unexpected error: {err}");
        ck.version = CHECKPOINT_VERSION;
        ck.magic = "not-a-checkpoint".into();
        let err = ck.verify().unwrap_err();
        assert!(err.contains("magic"), "unexpected error: {err}");
    }

    #[test]
    fn tensor_names_cover_params_in_order() {
        let mut model = toy(); // 1 layer
        let n = model.params_mut().len();
        assert_eq!(n, 2 + 12 + 4);
        assert_eq!(tensor_name(0, 1), "emb.tok");
        assert_eq!(tensor_name(2, 1), "block0.ln1.gain");
        assert_eq!(tensor_name(4, 1), "block0.attn.qkv.w");
        assert_eq!(tensor_name(13, 1), "block0.mlp.fc2.b");
        assert_eq!(tensor_name(14, 1), "ln_f.gain");
        assert_eq!(tensor_name(17, 1), "head.b");
        assert_eq!(tensor_name(2 + 12, 2), "block1.ln1.gain");
    }

    #[test]
    fn corruption_errors_name_the_failing_tensor() {
        let mut model = toy();
        let mut ck = Checkpoint::capture(&mut model);
        // Flip a bit in block0's qkv weight (index 4).
        let v = ck.params[4].as_mut_slice();
        v[0] = f32::from_bits(v[0].to_bits() ^ 1);
        let err = ck.verify().unwrap_err();
        assert!(
            err.contains("tensor 4 (block0.attn.qkv.w)"),
            "error does not name the tensor: {err}"
        );
        assert!(
            err.contains("stored") && err.contains("recomputed"),
            "{err}"
        );

        let mut ck2 = Checkpoint::capture(&mut model);
        ck2.params[1] = Matrix::zeros(3, 3);
        let err2 = ck2.restore().map(|_| ()).unwrap_err();
        assert!(
            err2.contains("tensor 1 (emb.pos)") && err2.contains("shape"),
            "unexpected error: {err2}"
        );
    }

    #[test]
    fn restore_does_not_copy_optimizer_state() {
        let mut model = toy();
        let mut opt = AdamW::new(2e-3);
        let seq = [1usize, 3, 5, 7, 2, 9];
        model.train_step(&seq[..5], &seq[1..6], None, &mut opt);
        let ck = Checkpoint::capture(&mut model);
        let mut restored = ck.restore().unwrap();
        for p in restored.params_mut() {
            assert!(p.m.as_slice().iter().all(|&v| v == 0.0));
            assert!(p.v.as_slice().iter().all(|&v| v == 0.0));
        }
    }
}
