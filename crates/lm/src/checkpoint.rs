//! Model checkpointing: save and restore GPT weights.
//!
//! The memorization study fine-tunes from *pre-trained checkpoints*
//! (Section VIII-B starts from TinyLlama/Llama weights); this module is
//! the loading/saving machinery that makes that workflow real in the
//! reproduction — pre-train once, snapshot, run many continued-training
//! experiments from the same starting point.

use crate::gpt::{Gpt, GptModelConfig};
use axonn_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// A serializable snapshot of a model: architecture + parameter values
/// (optimizer state is not checkpointed, as in most inference/fine-tune
/// checkpoints).
#[derive(Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    pub vocab: usize,
    pub seq_len: usize,
    pub dim: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub seed: u64,
    pub params: Vec<Matrix>,
}

impl Checkpoint {
    /// Snapshot a model's parameters.
    pub fn capture(model: &mut Gpt) -> Checkpoint {
        let cfg = model.cfg.clone();
        Checkpoint {
            vocab: cfg.vocab,
            seq_len: cfg.seq_len,
            dim: cfg.dim,
            n_heads: cfg.n_heads,
            n_layers: cfg.n_layers,
            seed: cfg.seed,
            params: model.params_mut().iter().map(|p| p.value.clone()).collect(),
        }
    }

    /// Rebuild a model from the snapshot.
    ///
    /// # Errors
    /// If the parameter list does not match the architecture.
    pub fn restore(&self) -> Result<Gpt, String> {
        let mut model = Gpt::new(GptModelConfig {
            vocab: self.vocab,
            seq_len: self.seq_len,
            dim: self.dim,
            n_heads: self.n_heads,
            n_layers: self.n_layers,
            seed: self.seed,
        });
        let mut params = model.params_mut();
        if params.len() != self.params.len() {
            return Err(format!(
                "checkpoint has {} tensors, architecture expects {}",
                self.params.len(),
                params.len()
            ));
        }
        for (i, (dst, src)) in params.iter_mut().zip(&self.params).enumerate() {
            if dst.value.shape() != src.shape() {
                return Err(format!(
                    "tensor {i}: checkpoint shape {:?} vs architecture {:?}",
                    src.shape(),
                    dst.value.shape()
                ));
            }
            dst.value = src.clone();
        }
        Ok(model)
    }

    /// Serialize to any writer as JSON.
    pub fn write_to(&self, w: impl Write) -> Result<(), String> {
        serde_json::to_writer(w, self).map_err(|e| format!("serialize checkpoint: {e}"))
    }

    /// Deserialize from any reader.
    pub fn read_from(r: impl Read) -> Result<Checkpoint, String> {
        serde_json::from_reader(r).map_err(|e| format!("parse checkpoint: {e}"))
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let f = std::fs::File::create(path.as_ref())
            .map_err(|e| format!("create {}: {e}", path.as_ref().display()))?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, String> {
        let f = std::fs::File::open(path.as_ref())
            .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;

    fn toy() -> Gpt {
        Gpt::new(GptModelConfig {
            vocab: 10,
            seq_len: 6,
            dim: 8,
            n_heads: 2,
            n_layers: 1,
            seed: 4,
        })
    }

    #[test]
    fn round_trip_preserves_behaviour_exactly() {
        let mut model = toy();
        let mut opt = AdamW::new(2e-3);
        let seq = [1usize, 3, 5, 7, 2, 9];
        for _ in 0..20 {
            model.train_step(&seq[..5], &seq[1..6], None, &mut opt);
        }
        let before = model.forward(&seq[..5]);

        let ck = Checkpoint::capture(&mut model);
        let mut restored = ck.restore().unwrap();
        let after = restored.forward(&seq[..5]);
        assert_eq!(before, after, "restored model diverges");
    }

    #[test]
    fn json_round_trip_through_memory() {
        let mut model = toy();
        let ck = Checkpoint::capture(&mut model);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.params.len(), ck.params.len());
        let mut a = ck.restore().unwrap();
        let mut b = back.restore().unwrap();
        let tokens = [0usize, 1, 2, 3];
        assert_eq!(a.forward(&tokens), b.forward(&tokens));
    }

    #[test]
    fn file_round_trip() {
        let mut model = toy();
        let ck = Checkpoint::capture(&mut model);
        let dir = std::env::temp_dir().join("axonn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.json");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.dim, 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let mut model = toy();
        let mut ck = Checkpoint::capture(&mut model);
        ck.n_layers = 2; // architecture now expects more tensors
        let err = ck.restore().map(|_| ()).unwrap_err();
        assert!(err.contains("tensors"), "unexpected error: {err}");

        let mut ck2 = Checkpoint::capture(&mut model);
        ck2.params[0] = Matrix::zeros(3, 3); // wrong shape
        let err2 = ck2.restore().map(|_| ()).unwrap_err();
        assert!(err2.contains("shape"), "unexpected error: {err2}");
    }

    #[test]
    fn restore_does_not_copy_optimizer_state() {
        let mut model = toy();
        let mut opt = AdamW::new(2e-3);
        let seq = [1usize, 3, 5, 7, 2, 9];
        model.train_step(&seq[..5], &seq[1..6], None, &mut opt);
        let ck = Checkpoint::capture(&mut model);
        let mut restored = ck.restore().unwrap();
        for p in restored.params_mut() {
            assert!(p.m.as_slice().iter().all(|&v| v == 0.0));
            assert!(p.v.as_slice().iter().all(|&v| v == 0.0));
        }
    }
}
