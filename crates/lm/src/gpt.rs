//! The decoder-only transformer: pre-LN blocks, GELU MLPs, LM head,
//! training step and greedy decoding.

use crate::attention::CausalSelfAttention;
use crate::loss::cross_entropy;
use crate::modules::{Embedding, LayerNorm, Linear, Param};
use crate::optim::AdamW;
use axonn_tensor::Matrix;

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

/// The exact GELU used by [`Mlp::forward`]; public so inference paths
/// (the KV-cached decoder, tensor-parallel serving shards) reproduce the
/// training activation bit-for-bit.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// The transformer MLP: `fc2(gelu(fc1(x)))`.
pub struct Mlp {
    pub fc1: Linear,
    pub fc2: Linear,
    cached_pre: Option<Matrix>,
}

impl Mlp {
    pub fn new(dim: usize, seed: u64) -> Self {
        Mlp {
            fc1: Linear::new(dim, 4 * dim, seed),
            fc2: Linear::new(4 * dim, dim, seed.wrapping_add(1)),
            cached_pre: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let pre = self.fc1.forward(x);
        let mut act = pre.clone();
        act.map_inplace(gelu);
        self.cached_pre = Some(pre);
        self.fc2.forward(&act)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut d_act = self.fc2.backward(dy);
        let pre = self.cached_pre.take().expect("Mlp backward before forward");
        for (d, &p) in d_act.as_mut_slice().iter_mut().zip(pre.as_slice()) {
            *d *= gelu_grad(p);
        }
        self.fc1.backward(&d_act)
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.fc1.params_mut();
        p.extend(self.fc2.params_mut());
        p
    }
}

/// One pre-LN transformer block with residual connections.
pub struct Block {
    pub ln1: LayerNorm,
    pub attn: CausalSelfAttention,
    pub ln2: LayerNorm,
    pub mlp: Mlp,
}

impl Block {
    pub fn new(dim: usize, n_heads: usize, seq_len: usize, seed: u64) -> Self {
        Block {
            ln1: LayerNorm::new(dim),
            attn: CausalSelfAttention::new(dim, n_heads, seq_len, seed),
            ln2: LayerNorm::new(dim),
            mlp: Mlp::new(dim, seed.wrapping_add(100)),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let normed = self.ln1.forward(x);
        let mut h = self.attn.forward(&normed);
        h.add_assign(x);
        let normed2 = self.ln2.forward(&h);
        let mut out = self.mlp.forward(&normed2);
        out.add_assign(&h);
        out
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        // out = h + mlp(ln2(h)); h = x + attn(ln1(x)).
        let d_mlp_in = self.mlp.backward(dy);
        let mut dh = self.ln2.backward(&d_mlp_in);
        dh.add_assign(dy);
        let d_attn_in = self.attn.backward(&dh);
        let mut dx = self.ln1.backward(&d_attn_in);
        dx.add_assign(&dh);
        dx
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.ln1.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.ln2.params_mut());
        p.extend(self.mlp.params_mut());
        p
    }
}

/// Architecture of a [`Gpt`].
#[derive(Debug, Clone)]
pub struct GptModelConfig {
    pub vocab: usize,
    pub seq_len: usize,
    pub dim: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub seed: u64,
}

impl GptModelConfig {
    pub fn tiny(vocab: usize, seq_len: usize) -> Self {
        GptModelConfig {
            vocab,
            seq_len,
            dim: 32,
            n_heads: 2,
            n_layers: 2,
            seed: 7,
        }
    }
}

/// The full model.
pub struct Gpt {
    pub cfg: GptModelConfig,
    pub emb: Embedding,
    pub blocks: Vec<Block>,
    pub ln_f: LayerNorm,
    pub head: Linear,
}

impl Gpt {
    pub fn new(cfg: GptModelConfig) -> Self {
        let emb = Embedding::new(cfg.vocab, cfg.seq_len, cfg.dim, cfg.seed);
        let blocks = (0..cfg.n_layers)
            .map(|i| {
                Block::new(
                    cfg.dim,
                    cfg.n_heads,
                    cfg.seq_len,
                    cfg.seed + 1000 * (i as u64 + 1),
                )
            })
            .collect();
        let ln_f = LayerNorm::new(cfg.dim);
        let head = Linear::new(cfg.dim, cfg.vocab, cfg.seed.wrapping_add(99));
        Gpt {
            cfg,
            emb,
            blocks,
            ln_f,
            head,
        }
    }

    pub fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.emb.params_mut();
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.ln_f.params_mut());
        p.extend(self.head.params_mut());
        p
    }

    /// Logits for a batch of token sequences (`tokens.len()` a multiple
    /// of `seq_len`); shape `(B·T) × V`.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        let mut x = self.emb.forward(tokens);
        for b in &mut self.blocks {
            x = b.forward(&x);
        }
        let x = self.ln_f.forward(&x);
        self.head.forward(&x)
    }

    /// Backpropagate from logit gradients through the whole model.
    pub fn backward(&mut self, d_logits: &Matrix) {
        let d = self.head.backward(d_logits);
        let mut d = self.ln_f.backward(&d);
        for b in self.blocks.iter_mut().rev() {
            d = b.backward(&d);
        }
        self.emb.backward(&d);
    }

    /// One training step: next-token prediction of `targets` from
    /// `inputs` (same length, caller shifts), with an optional loss mask
    /// (the Goldfish hook). Returns the mean loss over counted tokens.
    pub fn train_step(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        mask: Option<&[bool]>,
        opt: &mut AdamW,
    ) -> f32 {
        assert_eq!(inputs.len(), targets.len());
        let logits = self.forward(inputs);
        let res = cross_entropy(&logits, targets, mask);
        self.backward(&res.d_logits);
        opt.next_step();
        let opt_snapshot = *opt;
        for p in self.params_mut() {
            opt_snapshot.update(p);
        }
        res.loss
    }

    /// Greedy autoregressive continuation: given `prompt`, generate
    /// `n_new` tokens. Requires `prompt.len() + n_new <= seq_len` (the
    /// memorization protocol always evaluates within one training
    /// window).
    ///
    /// Runs through the KV-cached decode path (`crate::decode`): the
    /// prompt is prefetched once, then each new token costs O(seq)
    /// attention instead of a full-sequence recompute. Bitwise identical
    /// to [`Gpt::greedy_continuation_recompute`] (proptested).
    pub fn greedy_continuation(&mut self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        assert!(
            prompt.len() + n_new <= self.cfg.seq_len,
            "generation window exceeds seq_len"
        );
        assert!(!prompt.is_empty(), "empty prompt");
        if n_new == 0 {
            return Vec::new();
        }
        let mut cache = crate::decode::KvCache::for_model(&self.cfg);
        let logits = crate::decode::prefill(self, prompt, &mut cache);
        let mut next = crate::decode::argmax(logits.row(prompt.len() - 1));
        let mut out = Vec::with_capacity(n_new);
        out.push(next);
        for _ in 1..n_new {
            let row = crate::decode::decode_step(self, next, &mut cache);
            next = crate::decode::argmax(&row);
            out.push(next);
        }
        out
    }

    /// The seed's full-recompute continuation: re-runs the whole forward
    /// pass (padded to `seq_len`) for every generated token. O(seq²) per
    /// token — kept as the bit-identity oracle for the KV-cached path.
    pub fn greedy_continuation_recompute(&mut self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        assert!(
            prompt.len() + n_new <= self.cfg.seq_len,
            "generation window exceeds seq_len"
        );
        let mut ctx = prompt.to_vec();
        let mut out = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let mut padded = ctx.clone();
            padded.resize(self.cfg.seq_len, 0);
            let logits = self.forward(&padded);
            let row = logits.row(ctx.len() - 1);
            let next = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("nonempty vocab");
            ctx.push(next);
            out.push(next);
        }
        out
    }

    /// Mean next-token loss on a batch without updating weights.
    pub fn eval_loss(&mut self, inputs: &[usize], targets: &[usize]) -> f32 {
        let logits = self.forward(inputs);
        cross_entropy(&logits, targets, None).loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_cfg() -> GptModelConfig {
        GptModelConfig {
            vocab: 12,
            seq_len: 8,
            dim: 16,
            n_heads: 2,
            n_layers: 2,
            seed: 3,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut g = Gpt::new(toy_cfg());
        let tokens: Vec<usize> = (0..16).map(|i| i % 12).collect(); // B=2
        let logits = g.forward(&tokens);
        assert_eq!(logits.shape(), (16, 12));
    }

    #[test]
    fn parameter_count_is_plausible() {
        let cfg = toy_cfg();
        let mut g = Gpt::new(cfg.clone());
        let n = g.num_parameters();
        // 12·L·d² core plus embeddings and head.
        let core = 12 * cfg.n_layers * cfg.dim * cfg.dim;
        let emb = (cfg.vocab + cfg.seq_len) * cfg.dim;
        let head = cfg.dim * cfg.vocab + cfg.vocab;
        assert!(n > core + emb, "n={n} core={core}");
        assert!(n < 2 * (core + 2 * emb + head) + 10_000);
    }

    #[test]
    fn memorizes_a_single_sequence() {
        // The fundamental capability behind the Section VIII study:
        // trained repeatedly on one sequence, the model reproduces it.
        let cfg = toy_cfg();
        let mut g = Gpt::new(cfg.clone());
        let mut opt = AdamW::new(3e-3);
        let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5];
        let inputs = &seq[..8];
        let targets = &seq[1..9];
        let mut loss = f32::MAX;
        for _ in 0..150 {
            loss = g.train_step(inputs, targets, None, &mut opt);
        }
        assert!(loss < 0.1, "did not memorize: loss {loss}");
        let continuation = g.greedy_continuation(&seq[..4], 4);
        assert_eq!(continuation, seq[4..8].to_vec(), "exact-match failed");
    }

    #[test]
    fn training_reduces_loss_on_structured_data() {
        let cfg = toy_cfg();
        let mut g = Gpt::new(cfg.clone());
        let mut opt = AdamW::new(1e-3);
        // Deterministic pattern: t_{i+1} = (t_i + 3) mod 12, two phases.
        let make = |start: usize| -> Vec<usize> { (0..9).map(|i| (start + 3 * i) % 12).collect() };
        let first;
        let mut last = 0.0;
        {
            let s = make(0);
            first = g.train_step(&s[..8], &s[1..9], None, &mut opt);
        }
        for step in 0..120 {
            let s = make(step % 12);
            last = g.train_step(&s[..8], &s[1..9], None, &mut opt);
        }
        assert!(last < 0.5 * first, "loss {first} -> {last}");
    }

    #[test]
    fn goldfish_mask_blocks_memorization_of_masked_tokens() {
        // Mask every other target: the model should stay uncertain there.
        let cfg = toy_cfg();
        let mut g = Gpt::new(cfg.clone());
        let mut opt = AdamW::new(3e-3);
        let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5];
        let mask: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        for _ in 0..150 {
            g.train_step(&seq[..8], &seq[1..9], Some(&mask), &mut opt);
        }
        // Loss restricted to masked-out positions stays high.
        let logits = g.forward(&seq[..8]);
        let inv_mask: Vec<bool> = mask.iter().map(|b| !b).collect();
        let hidden = cross_entropy(&logits, &seq[1..9], Some(&inv_mask));
        let seen = cross_entropy(&logits, &seq[1..9], Some(&mask));
        assert!(seen.loss < 0.1, "seen-token loss {}", seen.loss);
        assert!(
            hidden.loss > 5.0 * seen.loss.max(0.01),
            "masked tokens were memorized anyway: {} vs {}",
            hidden.loss,
            seen.loss
        );
    }

    #[test]
    #[should_panic(expected = "generation window")]
    fn generation_respects_window() {
        let mut g = Gpt::new(toy_cfg());
        let _ = g.greedy_continuation(&[1; 6], 4);
    }

    #[test]
    fn eval_loss_does_not_change_weights() {
        let mut g = Gpt::new(toy_cfg());
        let tokens: Vec<usize> = (0..8).collect();
        let before = g.forward(&tokens).as_slice().to_vec();
        let _ = g.eval_loss(&tokens, &tokens);
        let after = g.forward(&tokens).as_slice().to_vec();
        assert_eq!(before, after);
    }
}
