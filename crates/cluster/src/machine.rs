//! Descriptions of the three supercomputers of the paper (Section VI-B)
//! and their GEMM/kernel performance characteristics (Section VI-C).

use serde::{Deserialize, Serialize};

/// Operand-transposition mode of a GEMM, mirrored from `axonn-tensor` so
//  the performance plane does not depend on the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GemmMode {
    NN,
    NT,
    TN,
}

/// Relative kernel quality per GEMM mode, as a multiplier on the
/// platform's best-case GEMM efficiency.
///
/// The paper found rocBLAS TN kernels to be dramatically worse than NN on
/// Frontier for large hidden sizes (6% vs 55% of peak for GPT-320B,
/// Section V-C), and only mildly worse for smaller hidden sizes (the
/// "relatively modest" 2–4% batch-time gains of Fig. 7). `tn_threshold`
/// is the contracted-dimension size beyond which the bad TN kernel is
/// selected.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelProfile {
    pub nn: f64,
    pub nt: f64,
    /// TN quality when the contracted dimension is below the threshold.
    pub tn_small: f64,
    /// TN quality at or above the threshold (the pathological kernel).
    pub tn_large: f64,
    pub tn_threshold: usize,
}

impl KernelProfile {
    /// Multiplier for `mode` with contracted dimension `k`.
    pub fn factor(&self, mode: GemmMode, k: usize) -> f64 {
        match mode {
            GemmMode::NN => self.nn,
            GemmMode::NT => self.nt,
            GemmMode::TN => {
                if k >= self.tn_threshold {
                    self.tn_large
                } else {
                    self.tn_small
                }
            }
        }
    }
}

/// A GPU supercomputer, with the public numbers the paper reports plus
/// the calibration constants of our simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    pub name: String,
    /// Independently schedulable GPUs (or GCDs) per node.
    pub gpus_per_node: usize,
    /// Vendor-advertised peak bf16 Tflop/s per GPU/GCD.
    pub advertised_peak_tflops: f64,
    /// Empirically observed peak bf16 Tflop/s per GPU/GCD from the
    /// square-GEMM sweep of Section VI-C.
    pub empirical_peak_tflops: f64,
    /// Bidirectional bandwidth between a node pair available to a single
    /// ring (bytes/s) — the `β_inter` of Equation 7. All three systems
    /// have four Slingshot-11 NICs at 25 GB/s each; libfabric multirail
    /// bonds them, so a node pair sustains ~100 GB/s for a single ring.
    pub beta_inter: f64,
    /// Peak intra-node peer-to-peer bandwidth (bytes/s) for a single pair
    /// (NVLink / Infinity Fabric).
    pub intra_base: f64,
    /// Node count above which inter-node collectives start losing
    /// bandwidth to dragonfly global-link congestion.
    pub taper_start_nodes: usize,
    /// Strength of that loss: β is divided by
    /// `1 + taper · log2(nodes / taper_start_nodes)` beyond the start.
    pub taper: f64,
    /// GEMM-size at which efficiency reaches half its asymptote (elements
    /// of the smallest GEMM dimension).
    pub gemm_half_sat: f64,
    /// Software-stack derate on sustained GEMM throughput: how much of
    /// the hand-tuned single-GEMM empirical peak the *training framework*
    /// realises in practice (kernel launch gaps, non-ideal shapes,
    /// PyTorch overheads). Notably below 1.0 on the early GH200 stack.
    pub sw_derate: f64,
    /// HBM bandwidth per GPU/GCD (bytes/s) — prices the transpose copies
    /// the kernel tuner inserts when it routes around a bad TN kernel.
    pub hbm_bw: f64,
    /// Usable DRAM per GPU/GCD (bytes): 40 GB A100s on Perlmutter, 64 GB
    /// GCDs on Frontier, 96 GB H100s on Alps (Section VI-B).
    pub mem_per_gpu: f64,
    pub kernel: KernelProfile,
}

const GB: f64 = 1.0e9;

impl Machine {
    /// Perlmutter (NERSC/LBL): 4× NVIDIA A100-40GB per node.
    pub fn perlmutter() -> Machine {
        Machine {
            name: "Perlmutter".into(),
            gpus_per_node: 4,
            advertised_peak_tflops: 312.0,
            empirical_peak_tflops: 280.0,
            beta_inter: 50.0 * GB,
            intra_base: 200.0 * GB,
            taper_start_nodes: 256,
            taper: 0.5,
            gemm_half_sat: 240.0,
            sw_derate: 0.92,
            hbm_bw: 1.55e12,
            mem_per_gpu: 40.0e9,
            kernel: KernelProfile {
                nn: 1.0,
                nt: 0.96,
                tn_small: 0.92,
                tn_large: 0.85,
                tn_threshold: 16384,
            },
        }
    }

    /// Frontier (OLCF/ORNL): 4× AMD MI250X per node = 8 GCDs per node.
    pub fn frontier() -> Machine {
        Machine {
            name: "Frontier".into(),
            gpus_per_node: 8,
            advertised_peak_tflops: 191.5,
            empirical_peak_tflops: 125.0,
            beta_inter: 50.0 * GB,
            intra_base: 100.0 * GB,
            taper_start_nodes: 1024,
            taper: 1.1,
            gemm_half_sat: 420.0,
            sw_derate: 0.97,
            hbm_bw: 1.6e12,
            mem_per_gpu: 64.0e9,
            kernel: KernelProfile {
                nn: 1.0,
                nt: 0.90,
                // The Section V-C pathology: TN at ~6% of peak vs NN at
                // ~55% for hidden size 16384 => ratio ~0.11.
                tn_small: 0.80,
                tn_large: 0.11,
                tn_threshold: 16384,
            },
        }
    }

    /// Alps (CSCS): 4× GH200 superchips (H100 GPUs) per node.
    pub fn alps() -> Machine {
        Machine {
            name: "Alps".into(),
            gpus_per_node: 4,
            advertised_peak_tflops: 989.0,
            empirical_peak_tflops: 813.0,
            beta_inter: 90.0 * GB,
            intra_base: 300.0 * GB,
            taper_start_nodes: 512,
            taper: 0.5,
            gemm_half_sat: 1200.0,
            sw_derate: 0.62,
            hbm_bw: 4.0e12,
            mem_per_gpu: 96.0e9,
            kernel: KernelProfile {
                nn: 1.0,
                nt: 0.96,
                tn_small: 0.92,
                tn_large: 0.85,
                tn_threshold: 32768,
            },
        }
    }

    /// Look up a preset by (case-insensitive) name.
    pub fn by_name(name: &str) -> Machine {
        match name.to_ascii_lowercase().as_str() {
            "perlmutter" => Machine::perlmutter(),
            "frontier" => Machine::frontier(),
            "alps" => Machine::alps(),
            other => panic!("unknown machine '{other}'"),
        }
    }

    pub fn all() -> Vec<Machine> {
        vec![Machine::perlmutter(), Machine::frontier(), Machine::alps()]
    }

    /// Peak advertised flop/s per GPU in flop/s (not Tflop/s).
    pub fn advertised_peak(&self) -> f64 {
        self.advertised_peak_tflops * 1.0e12
    }

    /// Peak empirical flop/s per GPU in flop/s.
    pub fn empirical_peak(&self) -> f64 {
        self.empirical_peak_tflops * 1.0e12
    }

    /// Fraction of the *advertised* peak that a local `m×k×n` GEMM in
    /// `mode` sustains on this platform.
    ///
    /// The curve saturates toward the empirical/advertised ratio as the
    /// smallest GEMM dimension grows (matching the Section VI-C sweep
    /// where 32768² square GEMMs reach the empirical peak), scaled by the
    /// per-mode kernel quality.
    pub fn gemm_efficiency(&self, m: usize, k: usize, n: usize, mode: GemmMode) -> f64 {
        let min_dim = m.min(k).min(n) as f64;
        if min_dim == 0.0 {
            return 0.0;
        }
        let saturation = min_dim / (min_dim + self.gemm_half_sat);
        let best = self.empirical_peak_tflops / self.advertised_peak_tflops * self.sw_derate;
        best * saturation * self.kernel.factor(mode, k)
    }

    /// Sustained flop/s of a local GEMM (advertised peak × efficiency).
    pub fn gemm_rate(&self, m: usize, k: usize, n: usize, mode: GemmMode) -> f64 {
        self.advertised_peak() * self.gemm_efficiency(m, k, n, mode)
    }

    /// Seconds to run a local `m×k×n` GEMM in `mode`.
    pub fn gemm_seconds(&self, m: usize, k: usize, n: usize, mode: GemmMode) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        flops / self.gemm_rate(m, k, n, mode)
    }
}

/// One measured GEMM throughput point feeding [`CalibratedGemm::fit`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GemmSample {
    pub mode: GemmMode,
    /// Smallest logical dimension of the measured shape (the saturation
    /// variable of the efficiency curve).
    pub dim: usize,
    /// Sustained flop/s measured for that shape.
    pub rate: f64,
}

/// A GEMM throughput model fitted from *measured* kernel rates, the
/// host-machine analogue of the preset efficiency curves above.
///
/// The presets encode the paper's published GPU numbers; the benchmark
/// plane instead times this machine's real `axonn-tensor` kernels and
/// fits the same saturating-rate form `rate(d) = peak · d / (d + h)` to
/// them, so the performance model's compute terms can be checked against
/// hardware we actually run on (the GEMM drift report).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CalibratedGemm {
    /// Asymptotic sustained flop/s of the NN kernel.
    pub peak_flops: f64,
    /// Smallest-dimension size at which NN reaches half the asymptote.
    pub half_sat: f64,
    /// NT throughput relative to the NN curve at the same size.
    pub nt_factor: f64,
    /// TN throughput relative to the NN curve at the same size.
    pub tn_factor: f64,
}

impl CalibratedGemm {
    /// Fit the curve from measured samples. Needs at least two NN points
    /// at distinct sizes; the half-saturation constant is solved from
    /// the smallest and largest of them, and the NT/TN factors come from
    /// the largest measured point of each mode against the fitted NN
    /// curve. Returns `None` when the NN data cannot pin the curve.
    pub fn fit(samples: &[GemmSample]) -> Option<CalibratedGemm> {
        let mut nn: Vec<&GemmSample> = samples
            .iter()
            .filter(|s| s.mode == GemmMode::NN && s.dim > 0 && s.rate > 0.0)
            .collect();
        if nn.len() < 2 {
            return None;
        }
        nn.sort_by_key(|s| s.dim);
        let (small, large) = (nn[0], nn[nn.len() - 1]);
        if small.dim == large.dim {
            return None;
        }
        let (ds, dl) = (small.dim as f64, large.dim as f64);
        let r = small.rate / large.rate;
        // rate(d) = P·d/(d+h) through both points gives
        // h = ds·dl·(1-r) / (r·dl - ds); r is admissible in (ds/dl, 1).
        let denom = r * dl - ds;
        let half_sat = if denom > 0.0 {
            (ds * dl * (1.0 - r) / denom).clamp(0.0, 64.0 * dl)
        } else {
            // Small point slower than an infinitely-slow-saturating curve
            // allows (measurement noise): take the cap.
            64.0 * dl
        };
        let peak_flops = large.rate * (dl + half_sat) / dl;
        let nn_at = |d: f64| peak_flops * d / (d + half_sat);
        let factor = |mode: GemmMode| {
            samples
                .iter()
                .filter(|s| s.mode == mode && s.dim > 0 && s.rate > 0.0)
                .max_by_key(|s| s.dim)
                .map(|s| s.rate / nn_at(s.dim as f64))
                .unwrap_or(1.0)
        };
        Some(CalibratedGemm {
            peak_flops,
            half_sat,
            nt_factor: factor(GemmMode::NT),
            tn_factor: factor(GemmMode::TN),
        })
    }

    /// Sustained flop/s the fitted model predicts for an `m×k×n` GEMM.
    pub fn rate(&self, m: usize, k: usize, n: usize, mode: GemmMode) -> f64 {
        let min_dim = m.min(k).min(n) as f64;
        if min_dim == 0.0 {
            return 0.0;
        }
        let nn = self.peak_flops * min_dim / (min_dim + self.half_sat);
        match mode {
            GemmMode::NN => nn,
            GemmMode::NT => nn * self.nt_factor,
            GemmMode::TN => nn * self.tn_factor,
        }
    }

    /// Seconds the fitted model predicts for an `m×k×n` GEMM.
    pub fn seconds(&self, m: usize, k: usize, n: usize, mode: GemmMode) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        if flops == 0.0 {
            return 0.0;
        }
        flops / self.rate(m, k, n, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_constants() {
        let p = Machine::perlmutter();
        assert_eq!(p.gpus_per_node, 4);
        assert_eq!(p.advertised_peak_tflops, 312.0);
        assert_eq!(p.empirical_peak_tflops, 280.0);

        let f = Machine::frontier();
        assert_eq!(f.gpus_per_node, 8);
        assert_eq!(f.advertised_peak_tflops, 191.5);
        assert_eq!(f.empirical_peak_tflops, 125.0);

        let a = Machine::alps();
        assert_eq!(a.advertised_peak_tflops, 989.0);
        assert_eq!(a.empirical_peak_tflops, 813.0);
    }

    #[test]
    fn large_square_gemm_approaches_empirical_peak() {
        // The asymptote is the empirical peak scaled by the framework's
        // software derate (the Section VI-C sweep is a bare GEMM loop;
        // training code realises sw_derate of it).
        for m in Machine::all() {
            let eff = m.gemm_efficiency(32768, 32768, 32768, GemmMode::NN);
            let target = m.empirical_peak_tflops / m.advertised_peak_tflops * m.sw_derate;
            // Alps' large half-saturation constant keeps even a 32K GEMM
            // slightly below the asymptote.
            assert!(
                (eff / target) > 0.96,
                "{}: eff {eff:.3} should approach {target:.3}",
                m.name
            );
        }
    }

    #[test]
    fn frontier_tn_pathology() {
        // Section V-C: for GPT-320B (h=16384) the TN matmul ran ~8x
        // slower than NN; for smaller hidden sizes the gap is modest.
        let f = Machine::frontier();
        let nn = f.gemm_seconds(4096, 16384, 16384, GemmMode::NN);
        let tn = f.gemm_seconds(4096, 16384, 16384, GemmMode::TN);
        let ratio = tn / nn;
        assert!(
            (7.0..11.0).contains(&ratio),
            "large-h TN/NN time ratio {ratio:.1} should be ~8-9x"
        );
        let nn_s = f.gemm_seconds(4096, 9216, 9216, GemmMode::NN);
        let tn_s = f.gemm_seconds(4096, 9216, 9216, GemmMode::TN);
        assert!(tn_s / nn_s < 1.5, "small-h TN should be only mildly worse");
    }

    #[test]
    fn gemm_seconds_scales_linearly_in_flops() {
        let m = Machine::alps();
        let t1 = m.gemm_seconds(4096, 4096, 4096, GemmMode::NN);
        let t2 = m.gemm_seconds(8192, 4096, 4096, GemmMode::NN);
        assert!(((t2 / t1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_gemms_are_inefficient() {
        let m = Machine::perlmutter();
        assert!(m.gemm_efficiency(32, 4096, 4096, GemmMode::NN) < 0.2);
        assert_eq!(m.gemm_efficiency(0, 10, 10, GemmMode::NN), 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn unknown_machine_panics() {
        let _ = Machine::by_name("summit");
    }

    #[test]
    fn by_name_round_trip() {
        for m in Machine::all() {
            assert_eq!(Machine::by_name(&m.name).name, m.name);
        }
    }

    #[test]
    fn calibrated_gemm_recovers_exact_curve() {
        // Samples generated from a known curve must round-trip through
        // the two-point fit.
        let (peak, h) = (5.0e9, 200.0);
        let gen = |d: usize| peak * d as f64 / (d as f64 + h);
        let samples = vec![
            GemmSample {
                mode: GemmMode::NN,
                dim: 64,
                rate: gen(64),
            },
            GemmSample {
                mode: GemmMode::NN,
                dim: 1024,
                rate: gen(1024),
            },
            GemmSample {
                mode: GemmMode::NT,
                dim: 1024,
                rate: gen(1024) * 0.9,
            },
            GemmSample {
                mode: GemmMode::TN,
                dim: 1024,
                rate: gen(1024) * 0.7,
            },
        ];
        let cal = CalibratedGemm::fit(&samples).expect("two NN points");
        assert!((cal.peak_flops - peak).abs() / peak < 1e-9);
        assert!((cal.half_sat - h).abs() / h < 1e-9);
        assert!((cal.nt_factor - 0.9).abs() < 1e-9);
        assert!((cal.tn_factor - 0.7).abs() < 1e-9);
        // Predictions interpolate the generating curve.
        assert!((cal.rate(256, 512, 512, GemmMode::NN) - gen(256)).abs() / gen(256) < 1e-9);
        let s = cal.seconds(256, 512, 512, GemmMode::TN);
        let expect = 2.0 * 256.0 * 512.0 * 512.0 / (gen(256) * 0.7);
        assert!((s - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn calibrated_gemm_degenerate_inputs() {
        // One NN point, or two at the same size: no fit.
        let one = vec![GemmSample {
            mode: GemmMode::NN,
            dim: 128,
            rate: 1.0e9,
        }];
        assert!(CalibratedGemm::fit(&one).is_none());
        let same = vec![
            GemmSample {
                mode: GemmMode::NN,
                dim: 128,
                rate: 1.0e9,
            },
            GemmSample {
                mode: GemmMode::NN,
                dim: 128,
                rate: 1.1e9,
            },
        ];
        assert!(CalibratedGemm::fit(&same).is_none());
        // Missing NT/TN samples default to factor 1 (NN curve).
        let nn_only = vec![
            GemmSample {
                mode: GemmMode::NN,
                dim: 64,
                rate: 1.0e9,
            },
            GemmSample {
                mode: GemmMode::NN,
                dim: 512,
                rate: 2.0e9,
            },
        ];
        let cal = CalibratedGemm::fit(&nn_only).expect("fit");
        assert_eq!(cal.nt_factor, 1.0);
        assert_eq!(cal.tn_factor, 1.0);
        assert_eq!(cal.rate(0, 8, 8, GemmMode::NN), 0.0);
        assert_eq!(cal.seconds(0, 8, 8, GemmMode::NN), 0.0);
    }

    #[test]
    fn calibrated_gemm_noisy_small_point_clamps_half_sat() {
        // A small point far below the admissible band (r <= ds/dl) must
        // still yield a usable monotone curve via the cap.
        let samples = vec![
            GemmSample {
                mode: GemmMode::NN,
                dim: 64,
                rate: 1.0e6,
            },
            GemmSample {
                mode: GemmMode::NN,
                dim: 1024,
                rate: 1.0e9,
            },
        ];
        let cal = CalibratedGemm::fit(&samples).expect("fit");
        assert_eq!(cal.half_sat, 64.0 * 1024.0);
        assert!(cal.rate(64, 64, 64, GemmMode::NN) < cal.rate(1024, 1024, 1024, GemmMode::NN));
    }
}
