//! Ring placement analysis — Assumption-2 of the paper's model: "the
//! ring is formed such that the number of messages crossing node
//! boundaries is minimized."
//!
//! Ranks map to nodes contiguously (`node = rank / gpus_per_node`, the
//! standard SLURM placement). These helpers count how many links of a
//! ring cross node boundaries and what the minimum achievable count is,
//! so layouts (like the hierarchical 4D grid order) can be *verified* to
//! satisfy the assumption rather than asserted to.

/// Node index of a world rank under contiguous placement.
pub fn node_of(rank: usize, gpus_per_node: usize) -> usize {
    rank / gpus_per_node
}

/// Number of ring links (including the wrap-around link) that cross node
/// boundaries when the ring visits `ring` in order.
pub fn ring_node_crossings(ring: &[usize], gpus_per_node: usize) -> usize {
    if ring.len() <= 1 {
        return 0;
    }
    (0..ring.len())
        .filter(|&i| {
            let a = node_of(ring[i], gpus_per_node);
            let b = node_of(ring[(i + 1) % ring.len()], gpus_per_node);
            a != b
        })
        .count()
}

/// The minimum possible crossings for a ring over these ranks: zero if
/// all on one node, otherwise the ring must enter and leave every node it
/// touches at least once — one crossing per distinct node (the departure
/// link; arrivals are another node's departures).
pub fn minimal_crossings(ranks: &[usize], gpus_per_node: usize) -> usize {
    let mut nodes: Vec<usize> = ranks.iter().map(|&r| node_of(r, gpus_per_node)).collect();
    nodes.sort_unstable();
    nodes.dedup();
    if nodes.len() <= 1 {
        0
    } else {
        nodes.len()
    }
}

/// Reorder `ranks` into a ring with minimal node crossings (group members
/// sorted by node, i.e. visit each node's members contiguously).
pub fn crossing_minimal_ring(ranks: &[usize], gpus_per_node: usize) -> Vec<usize> {
    let mut out = ranks.to_vec();
    out.sort_by_key(|&r| (node_of(r, gpus_per_node), r));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_ring_never_crosses() {
        assert_eq!(ring_node_crossings(&[0, 1, 2, 3], 4), 0);
        assert_eq!(minimal_crossings(&[0, 1, 2, 3], 4), 0);
    }

    #[test]
    fn paper_fig3_single_ring_two_nodes() {
        // Fig. 3: one ring over 8 GPUs on two 4-GPU nodes, visited
        // contiguously: exactly two crossing links (1->4 and 6->3 in the
        // figure; here the boundary and the wrap-around).
        let ring = [0, 1, 2, 3, 4, 5, 6, 7];
        assert_eq!(ring_node_crossings(&ring, 4), 2);
        assert_eq!(minimal_crossings(&ring, 4), 2);
    }

    #[test]
    fn interleaved_ring_is_worst_case() {
        // Alternating nodes: every link crosses.
        let ring = [0, 4, 1, 5, 2, 6, 3, 7];
        assert_eq!(ring_node_crossings(&ring, 4), 8);
    }

    #[test]
    fn strided_groups_cross_like_fig4() {
        // Fig. 4: GPUs (0,4,6,2) — a strided group across two nodes —
        // visited in hierarchical order (0,2,4,6): minimal (2 crossings).
        let ring = crossing_minimal_ring(&[0, 4, 6, 2], 4);
        assert_eq!(ring, vec![0, 2, 4, 6]);
        assert_eq!(ring_node_crossings(&ring, 4), 2);
    }

    #[test]
    fn minimal_ring_achieves_the_bound() {
        // Arbitrary scattered membership over 4 nodes of 4.
        let ranks = [0usize, 5, 6, 9, 12, 13, 2, 15];
        let ring = crossing_minimal_ring(&ranks, 4);
        assert_eq!(ring_node_crossings(&ring, 4), minimal_crossings(&ranks, 4));
    }

    #[test]
    fn hierarchical_grid_groups_are_already_minimal() {
        // The hierarchical 4D layout visits each group with node-major
        // strides, so its natural order is crossing-minimal. Example:
        // Z-groups of a (2,2,4,1) grid on 4-GPU nodes: members are
        // {base, base+4, base+8, base+12} — one per node; any order gives
        // 4 crossings, which equals the bound.
        let group = [0usize, 4, 8, 12];
        assert_eq!(ring_node_crossings(&group, 4), minimal_crossings(&group, 4));
        // X-groups are contiguous in-node: zero crossings.
        let x_group = [4usize, 5];
        assert_eq!(ring_node_crossings(&x_group, 4), 0);
    }
}
