//! Machine descriptions and the hierarchical bandwidth model.
//!
//! The paper's performance model (Section V-B) needs, per system: GPUs
//! per node, the inter-node bandwidth `β_inter` (Assumption-5), a
//! *profiled database* of intra-node bandwidths for all two-level process
//! group hierarchies `(G₀, G₁)` with `G₀·G₁ ≤ G_node` (Case 1), and the
//! analytical sharing rule of Equation 7 for groups spanning nodes
//! (Case 2). This crate provides all of that plus per-platform GEMM
//! efficiency curves (calibrated to the single-GPU empirical peaks the
//! paper measured in Section VI-C) and the per-mode kernel quality table
//! behind the Section V-C tuning story.

pub mod bwdb;
pub mod machine;
pub mod topology;

pub use bwdb::BandwidthDb;
pub use machine::{CalibratedGemm, GemmMode, GemmSample, KernelProfile, Machine};
pub use topology::{crossing_minimal_ring, minimal_crossings, node_of, ring_node_crossings};

/// Effective peer-to-peer bandwidth (bytes/s) available to collectives of
/// a process group at one level of the 4D hierarchy.
///
/// * `prefix` — the cumulative product of all *inner* (preceding) group
///   sizes, `Π_{j<i} G_j`.
/// * `group_size` — the size `G_i` of the group itself.
///
/// Case 1 (group contained in a node, `prefix·group_size ≤ G_node`): look
/// up the profiled database. Case 2 (spans nodes): Equation 7,
/// `β_i = β_inter / min(G_node, prefix)`.
pub fn effective_bandwidth(
    machine: &Machine,
    db: &BandwidthDb,
    prefix: usize,
    group_size: usize,
) -> f64 {
    assert!(prefix >= 1, "prefix product must be at least 1");
    if group_size <= 1 {
        return f64::INFINITY; // no communication happens in a solo group
    }
    if prefix * group_size <= machine.gpus_per_node {
        db.lookup(prefix, group_size)
    } else {
        let shared = machine.beta_inter / (machine.gpus_per_node.min(prefix) as f64);
        // Dragonfly global-link congestion: collectives spanning many
        // nodes lose bandwidth beyond a per-system threshold. (The
        // analytic model of Eqs. 1-7 still sees the un-tapered value via
        // small node counts; this matters for the 16K/32K-GCD regime.)
        let nodes = (prefix * group_size).div_ceil(machine.gpus_per_node);
        let taper = if nodes > machine.taper_start_nodes {
            1.0 + machine.taper * (nodes as f64 / machine.taper_start_nodes as f64).log2()
        } else {
            1.0
        };
        shared / taper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq7_single_ring_gets_full_beta() {
        // Fig. 3 of the paper: one ring across two nodes -> β_inter.
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        let bw = effective_bandwidth(&m, &db, 1, 2 * m.gpus_per_node);
        assert_eq!(bw, m.beta_inter);
    }

    #[test]
    fn eq7_shared_rings_divide_bandwidth() {
        // Fig. 4: two simultaneous rings across two nodes -> β_inter / 2.
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        let bw = effective_bandwidth(&m, &db, 2, m.gpus_per_node);
        assert_eq!(bw, m.beta_inter / 2.0);
    }

    #[test]
    fn eq7_sharing_bounded_by_gpus_per_node() {
        // "there can't be more inter-node ring links than GPUs on a node".
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        let bw = effective_bandwidth(&m, &db, 4 * m.gpus_per_node, 4);
        assert_eq!(bw, m.beta_inter / m.gpus_per_node as f64);
    }

    #[test]
    fn intra_node_uses_database() {
        let m = Machine::perlmutter();
        let db = BandwidthDb::profile(&m);
        let bw = effective_bandwidth(&m, &db, 1, 2);
        assert_eq!(bw, db.lookup(1, 2));
        assert!(bw > m.beta_inter, "intra-node should beat the NIC");
    }

    #[test]
    fn solo_groups_cost_nothing() {
        let m = Machine::alps();
        let db = BandwidthDb::profile(&m);
        assert_eq!(effective_bandwidth(&m, &db, 4, 1), f64::INFINITY);
    }
}
