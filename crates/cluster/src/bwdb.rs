//! The intra-node bandwidth database (Case 1 of Section V-B).
//!
//! The paper pre-profiles, once per system, the bandwidth achieved by
//! simultaneous 1 GB collectives for every two-level hierarchy
//! `(G₀, G₁)` with `G₀·G₁ ≤ G_node`, and stores the results in a
//! database keyed by that tuple. We cannot run on a Frontier node, so
//! [`BandwidthDb::profile`] *simulates* the profiling run with a
//! deterministic contention model (inner groups of size `G₀` partition
//! the in-node links, and wider outer groups pay a small efficiency
//! penalty per ring hop); the resulting database has the same shape,
//! serialization, and lookup semantics as the real one, and everything
//! downstream (performance model, simulator) consumes it identically.

use crate::machine::Machine;
use serde::{Deserialize, Serialize};

/// One profiled row: simultaneous collectives of outer size `g1` under
/// `g0` inner groups achieved `bytes_per_second` per pair.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BwEntry {
    pub g0: usize,
    pub g1: usize,
    pub bytes_per_second: f64,
}

/// Profiled intra-node bandwidths, keyed by `(prefix G₀, group size G₁)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthDb {
    pub machine: String,
    pub gpus_per_node: usize,
    entries: Vec<BwEntry>,
}

impl BandwidthDb {
    /// Run the (simulated) profiling pass of Section V-B, Case 1:
    /// enumerate all `(G₀, G₁)` with `G₀·G₁ ≤ G_node` and record the
    /// achieved per-pair bandwidth for simultaneous ring collectives in
    /// the outer groups.
    pub fn profile(machine: &Machine) -> BandwidthDb {
        let gnode = machine.gpus_per_node;
        let mut entries = Vec::new();
        for g0 in divisor_candidates(gnode) {
            for g1 in divisor_candidates(gnode) {
                if g0 * g1 <= gnode && g1 >= 2 {
                    entries.push(BwEntry {
                        g0,
                        g1,
                        bytes_per_second: simulated_bandwidth(machine, g0, g1),
                    });
                }
            }
        }
        BandwidthDb {
            machine: machine.name.clone(),
            gpus_per_node: gnode,
            entries,
        }
    }

    /// Bandwidth recorded for the tuple `(G₀ = prefix, G₁ = group size)`.
    ///
    /// # Panics
    /// If the tuple was never profiled (i.e. `prefix·size > G_node`).
    pub fn lookup(&self, prefix: usize, size: usize) -> f64 {
        self.entries
            .iter()
            .find(|e| e.g0 == prefix && e.g1 == size)
            .unwrap_or_else(|| {
                panic!(
                    "no profiled bandwidth for (G0={prefix}, G1={size}) on {} \
                     (gpus/node = {})",
                    self.machine, self.gpus_per_node
                )
            })
            .bytes_per_second
    }

    pub fn entries(&self) -> impl Iterator<Item = &BwEntry> {
        self.entries.iter()
    }

    /// Serialize to JSON (what a real profiling run would persist).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bandwidth db serializes")
    }

    pub fn from_json(s: &str) -> Result<BandwidthDb, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// All candidate group sizes up to `n` (nodes hold at most 8 GPUs, so
/// exhaustive enumeration is cheap and also covers non-power-of-two
/// partitions such as Alps' 6144-GPU runs).
fn divisor_candidates(n: usize) -> Vec<usize> {
    (1..=n).collect()
}

/// The contention model behind the simulated profile: `G₀` simultaneous
/// rings share the node's links (bounded sharing, as in Equation 7 but
/// with the intra-node fabric), and each extra ring hop in the outer
/// group costs a 4% efficiency penalty (link traversal overheads that
/// real profiles show and the flat analytic model ignores).
fn simulated_bandwidth(machine: &Machine, g0: usize, g1: usize) -> f64 {
    let sharing = g0 as f64;
    let hop_penalty = 0.96f64.powi((g1 - 2) as i32);
    machine.intra_base / sharing * hop_penalty
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_exactly_the_case1_lattice() {
        let m = Machine::frontier(); // 8 GCDs/node
        let db = BandwidthDb::profile(&m);
        // (G0, G1) with G0*G1 <= 8, G1 >= 2:
        // G0=1: G1 in 2..=8 (7); G0=2: {2,3,4} (3); G0=3: {2} (1);
        // G0=4: {2} (1); total 12.
        assert_eq!(db.entries().count(), 12);
        assert!(db.entries().all(|e| e.g0 * e.g1 <= 8 && e.g1 >= 2));
    }

    #[test]
    fn more_simultaneous_rings_means_less_bandwidth() {
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        assert!(db.lookup(1, 2) > db.lookup(2, 2));
        assert!(db.lookup(2, 2) > db.lookup(4, 2));
    }

    #[test]
    fn wider_groups_pay_hop_penalty() {
        let m = Machine::frontier();
        let db = BandwidthDb::profile(&m);
        assert!(db.lookup(1, 2) > db.lookup(1, 4));
        assert!(db.lookup(1, 4) > db.lookup(1, 8));
    }

    #[test]
    fn intra_always_beats_inter() {
        // The whole point of the hierarchy: in-node groups see much more
        // bandwidth than the NIC provides.
        for m in Machine::all() {
            let db = BandwidthDb::profile(&m);
            for e in db.entries() {
                assert!(e.bytes_per_second > m.beta_inter / m.gpus_per_node as f64);
            }
        }
    }

    #[test]
    fn json_round_trip() {
        let m = Machine::perlmutter();
        let db = BandwidthDb::profile(&m);
        let back = BandwidthDb::from_json(&db.to_json()).unwrap();
        assert_eq!(back.machine, db.machine);
        assert_eq!(back.lookup(1, 2), db.lookup(1, 2));
        assert_eq!(back.entries().count(), db.entries().count());
    }

    #[test]
    #[should_panic(expected = "no profiled bandwidth")]
    fn out_of_lattice_lookup_panics() {
        let m = Machine::perlmutter(); // 4 GPUs/node
        let db = BandwidthDb::profile(&m);
        let _ = db.lookup(4, 4);
    }
}
