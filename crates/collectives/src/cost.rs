//! Virtual-time cost models for the correctness plane.
//!
//! Functional runs (threads moving real `f32`s) are far slower than GPUs
//! and their wall-clock times mean nothing for the paper's figures.
//! Instead, each rank carries a virtual clock that these models advance:
//! compute by a flop rate, collectives by the same ring-algorithm
//! formulas the paper's performance model uses (Thakur et al. /
//! Rabenseifner, Section V-B). This keeps the functional plane and the
//! analytical plane (`axonn-sim`) in agreement by construction.

/// Which collective a cost is being charged for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    AllGather,
    /// Recursive-doubling all-gather: `⌈log2 g⌉` steps at ring-equal
    /// volume (power-of-two groups).
    AllGatherRecursiveDoubling,
    ReduceScatter,
    /// Recursive-halving reduce-scatter: `⌈log2 g⌉` steps at ring-equal
    /// volume (power-of-two groups).
    ReduceScatterRecursiveHalving,
    /// Ring all-reduce (bandwidth-optimal; Assumption-1 of the paper).
    AllReduce,
    /// Recursive-doubling all-reduce (latency-optimal, used for small
    /// messages as in NCCL/MPICH).
    AllReduceRecursiveDoubling,
    /// Recursive halving/doubling all-reduce (Rabenseifner over
    /// hypercube exchanges): `2⌈log2 g⌉` steps at the ring's
    /// bandwidth-optimal volume (power-of-two groups).
    AllReduceRecursiveHalvingDoubling,
    /// Binomial-tree all-reduce (reduce to root + tree broadcast):
    /// `2⌈log2 g⌉` whole-buffer hops on the critical path.
    AllReduceTree,
    Broadcast,
    /// Binomial-tree broadcast: `⌈log2 g⌉` whole-buffer hops.
    BroadcastTree,
    Barrier,
    PointToPoint,
}

/// Advances virtual time for compute and communication.
pub trait CostModel: Send + Sync {
    /// Seconds charged for `flops` floating-point operations on one rank.
    fn compute_seconds(&self, flops: f64) -> f64;

    /// Seconds charged for a collective of `kind` over `group_size` ranks
    /// moving `bytes` (the size of the *full* buffer at each rank for
    /// all-reduce/broadcast; the gathered size for all-gather; the
    /// pre-scatter size for reduce-scatter).
    fn collective_seconds(&self, kind: CollectiveKind, group_size: usize, bytes: f64) -> f64;

    /// Seconds charged for a collective whose payload the transport
    /// segmented into `chunks` pipeline chunks. The default ignores the
    /// segmentation (models without a latency term are chunk-blind);
    /// latency-aware models charge per chunk, not per message.
    fn collective_seconds_chunked(
        &self,
        kind: CollectiveKind,
        group_size: usize,
        bytes: f64,
        chunks: usize,
    ) -> f64 {
        let _ = chunks;
        self.collective_seconds(kind, group_size, bytes)
    }
}

/// Charges nothing: virtual clocks stay at zero. The default for pure
/// correctness tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCost;

impl CostModel for NullCost {
    fn compute_seconds(&self, _flops: f64) -> f64 {
        0.0
    }
    fn collective_seconds(&self, _k: CollectiveKind, _g: usize, _b: f64) -> f64 {
        0.0
    }
}

/// Ring-algorithm costs with a single flop rate and a single link
/// bandwidth — the flat version of the paper's Equations 1–5 (the
/// hierarchical bandwidths of Eq. 7 live in `axonn-cluster`; the
/// functional plane runs at most a node's worth of ranks, where a single
/// bandwidth is the right model).
#[derive(Debug, Clone, Copy)]
pub struct RingCostModel {
    /// Sustained flop/s per rank.
    pub flops_per_second: f64,
    /// Peer-to-peer bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-ring-step latency in seconds (Assumption-3 of the paper sets
    /// this to zero; a nonzero value makes the "observed" plane richer
    /// than the model, as in real systems).
    pub alpha: f64,
}

impl RingCostModel {
    pub fn new(flops_per_second: f64, bandwidth: f64) -> Self {
        RingCostModel {
            flops_per_second,
            bandwidth,
            alpha: 0.0,
        }
    }

    pub fn with_latency(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }
}

impl CostModel for RingCostModel {
    fn compute_seconds(&self, flops: f64) -> f64 {
        flops / self.flops_per_second
    }

    fn collective_seconds(&self, kind: CollectiveKind, group_size: usize, bytes: f64) -> f64 {
        let g = group_size as f64;
        if group_size <= 1 {
            return 0.0;
        }
        let steps;
        let volume;
        match kind {
            // All-gather of a total of `bytes`: each rank sends its
            // bytes/g shard g-1 times.
            CollectiveKind::AllGather => {
                steps = g - 1.0;
                volume = (g - 1.0) / g * bytes;
            }
            // Recursive doubling halves the step count to log2(g) while
            // moving the same (g-1)/g · n bytes (doubling block sizes).
            CollectiveKind::AllGatherRecursiveDoubling => {
                steps = g.log2().ceil();
                volume = (g - 1.0) / g * bytes;
            }
            // Reduce-scatter of `bytes`: same traffic as all-gather.
            CollectiveKind::ReduceScatter => {
                steps = g - 1.0;
                volume = (g - 1.0) / g * bytes;
            }
            // Recursive halving: log2(g) steps, ring-equal volume
            // (halving block sizes: n/2 + n/4 + … = (g-1)/g · n).
            CollectiveKind::ReduceScatterRecursiveHalving => {
                steps = g.log2().ceil();
                volume = (g - 1.0) / g * bytes;
            }
            // All-reduce = reduce-scatter + all-gather.
            CollectiveKind::AllReduce => {
                steps = 2.0 * (g - 1.0);
                volume = 2.0 * (g - 1.0) / g * bytes;
            }
            // log2(g) exchanges of the whole buffer.
            CollectiveKind::AllReduceRecursiveDoubling => {
                steps = g.log2().ceil();
                volume = g.log2().ceil() * bytes;
            }
            // Halving reduce-scatter + doubling all-gather: 2·log2(g)
            // steps at the ring all-reduce's bandwidth-optimal volume —
            // so switching ring → rhd never changes modelled β time,
            // only the α term.
            CollectiveKind::AllReduceRecursiveHalvingDoubling => {
                steps = 2.0 * g.log2().ceil();
                volume = 2.0 * (g - 1.0) / g * bytes;
            }
            // Reduce to root then tree broadcast: the critical path
            // crosses 2·log2(g) hops, each carrying the whole buffer.
            CollectiveKind::AllReduceTree => {
                steps = 2.0 * g.log2().ceil();
                volume = 2.0 * g.log2().ceil() * bytes;
            }
            CollectiveKind::Broadcast => {
                steps = g - 1.0;
                volume = bytes;
            }
            // Tree depth log2(g), whole buffer per hop on the critical
            // path.
            CollectiveKind::BroadcastTree => {
                steps = g.log2().ceil();
                volume = g.log2().ceil() * bytes;
            }
            CollectiveKind::Barrier => {
                steps = 2.0 * (g - 1.0);
                volume = 0.0;
            }
            CollectiveKind::PointToPoint => {
                steps = 1.0;
                volume = bytes;
            }
        }
        steps * self.alpha + volume / self.bandwidth
    }

    /// Per-chunk charging. Ring all-gather / reduce-scatter / all-reduce
    /// are already bandwidth-optimal, so segmentation leaves the volume
    /// term untouched and only multiplies the per-step latency (each
    /// step now sends `chunks` messages, each paying α). A pipelined
    /// ring *broadcast* genuinely benefits: the chain drains in
    /// `g + S - 2` slots of `α + n/(S·β)` instead of `g - 1` full-buffer
    /// hops, approaching `n/β` as S grows — which is what the flat model
    /// above already assumed. With `alpha == 0` (the paper's
    /// Assumption-3 and this model's default) every chunked cost equals
    /// its unchunked counterpart, so segmentation never perturbs
    /// existing virtual timelines.
    fn collective_seconds_chunked(
        &self,
        kind: CollectiveKind,
        group_size: usize,
        bytes: f64,
        chunks: usize,
    ) -> f64 {
        let g = group_size as f64;
        let s = chunks.max(1) as f64;
        if group_size <= 1 {
            return 0.0;
        }
        match kind {
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
                (g - 1.0) * s * self.alpha + (g - 1.0) / g * bytes / self.bandwidth
            }
            CollectiveKind::AllReduce => {
                2.0 * (g - 1.0) * s * self.alpha + 2.0 * (g - 1.0) / g * bytes / self.bandwidth
            }
            CollectiveKind::Broadcast => {
                let slots = g + s - 2.0;
                slots * (self.alpha + bytes / (s * self.bandwidth))
            }
            CollectiveKind::Barrier => 2.0 * (g - 1.0) * s * self.alpha,
            // The log-step algorithms serve the latency-bound regime and
            // send whole blocks — the transport never segments them, so
            // chunked cost is the flat cost.
            CollectiveKind::AllReduceRecursiveDoubling
            | CollectiveKind::AllGatherRecursiveDoubling
            | CollectiveKind::ReduceScatterRecursiveHalving
            | CollectiveKind::AllReduceRecursiveHalvingDoubling
            | CollectiveKind::AllReduceTree
            | CollectiveKind::BroadcastTree
            | CollectiveKind::PointToPoint => self.collective_seconds(kind, group_size, bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_cost_is_free() {
        let c = NullCost;
        assert_eq!(c.compute_seconds(1e12), 0.0);
        assert_eq!(c.collective_seconds(CollectiveKind::AllReduce, 8, 1e9), 0.0);
    }

    #[test]
    fn ring_allreduce_matches_2_gm1_over_g() {
        // Paper Eqs 3-5: all-reduce time = 2/β · (g-1)/g · n.
        let m = RingCostModel::new(1.0, 100.0);
        let t = m.collective_seconds(CollectiveKind::AllReduce, 4, 400.0);
        assert!((t - 2.0 * (3.0 / 4.0) * 400.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn ring_allgather_matches_gm1_over_g() {
        // Paper Eq 1 shape: (g-1) · shard / β with shard = n/g.
        let m = RingCostModel::new(1.0, 100.0);
        let t = m.collective_seconds(CollectiveKind::AllGather, 8, 800.0);
        assert!((t - (7.0 / 8.0) * 800.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn solo_group_is_free() {
        let m = RingCostModel::new(1.0, 1.0);
        for kind in [
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllReduce,
        ] {
            assert_eq!(m.collective_seconds(kind, 1, 1e6), 0.0);
        }
    }

    #[test]
    fn recursive_doubling_is_latency_optimal_for_small_messages() {
        // alpha-dominated regime: log2(g) steps beat 2(g-1).
        let m = RingCostModel::new(1.0, 1e12).with_latency(1e-5);
        let small = 64.0;
        let ring = m.collective_seconds(CollectiveKind::AllReduce, 16, small);
        let rd = m.collective_seconds(CollectiveKind::AllReduceRecursiveDoubling, 16, small);
        assert!(
            rd < ring,
            "rd {rd} should beat ring {ring} for tiny buffers"
        );
        // Bandwidth-dominated regime: ring wins.
        let big = 1e9;
        let ring_b = m.collective_seconds(CollectiveKind::AllReduce, 16, big);
        let rd_b = m.collective_seconds(CollectiveKind::AllReduceRecursiveDoubling, 16, big);
        assert!(
            ring_b < rd_b,
            "ring {ring_b} should beat rd {rd_b} for big buffers"
        );
    }

    #[test]
    fn latency_term_scales_with_steps() {
        let m = RingCostModel::new(1.0, f64::INFINITY).with_latency(1e-6);
        let t = m.collective_seconds(CollectiveKind::AllReduce, 5, 1000.0);
        assert!((t - 8.0e-6).abs() < 1e-12);
    }

    #[test]
    fn compute_rate() {
        let m = RingCostModel::new(2.0e12, 1.0);
        assert!((m.compute_seconds(4.0e12) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chunked_equals_unchunked_when_alpha_is_zero() {
        // Assumption-3 (zero per-step latency): segmentation must not
        // perturb any modelled time, whatever the chunk count.
        let m = RingCostModel::new(1e9, 1e9);
        for kind in [
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllReduce,
            CollectiveKind::Barrier,
        ] {
            for chunks in [1usize, 2, 4, 8] {
                let base = m.collective_seconds(kind, 4, 4e6);
                let chunked = m.collective_seconds_chunked(kind, 4, 4e6, chunks);
                assert!(
                    (base - chunked).abs() < 1e-15,
                    "{kind:?} S={chunks}: {base} vs {chunked}"
                );
            }
        }
    }

    #[test]
    fn chunked_latency_term_charges_per_chunk() {
        let m = RingCostModel::new(1.0, f64::INFINITY).with_latency(1e-6);
        // All-reduce on g=5: 2(g-1)·S steps of alpha.
        let t = m.collective_seconds_chunked(CollectiveKind::AllReduce, 5, 1000.0, 3);
        assert!((t - 24.0e-6).abs() < 1e-12);
    }

    #[test]
    fn rhd_matches_ring_volume_with_fewer_steps() {
        // Switching ring → recursive halving/doubling must leave the β
        // (bandwidth) term untouched and shrink only the α term:
        // 2(g-1) steps → 2·log2(g).
        let m = RingCostModel::new(1.0, 100.0);
        let ring = m.collective_seconds(CollectiveKind::AllReduce, 8, 800.0);
        let rhd = m.collective_seconds(CollectiveKind::AllReduceRecursiveHalvingDoubling, 8, 800.0);
        assert!((ring - rhd).abs() < 1e-12, "alpha=0: {ring} vs {rhd}");
        let lat = RingCostModel::new(1.0, f64::INFINITY).with_latency(1e-6);
        let ring_a = lat.collective_seconds(CollectiveKind::AllReduce, 8, 800.0);
        let rhd_a =
            lat.collective_seconds(CollectiveKind::AllReduceRecursiveHalvingDoubling, 8, 800.0);
        assert!((ring_a - 14.0e-6).abs() < 1e-12);
        assert!((rhd_a - 6.0e-6).abs() < 1e-12);
        // Same shape for the phase algorithms.
        let rs = m.collective_seconds(CollectiveKind::ReduceScatter, 8, 800.0);
        let rh = m.collective_seconds(CollectiveKind::ReduceScatterRecursiveHalving, 8, 800.0);
        assert!((rs - rh).abs() < 1e-12);
        let ag = m.collective_seconds(CollectiveKind::AllGather, 8, 800.0);
        let rd = m.collective_seconds(CollectiveKind::AllGatherRecursiveDoubling, 8, 800.0);
        assert!((ag - rd).abs() < 1e-12);
    }

    #[test]
    fn tree_allreduce_trades_bandwidth_for_latency() {
        // α-dominated: tree's 2·log2(g) hops beat the ring's 4(g-1)
        // chunked steps. β-dominated: the ring's (g-1)/g volume wins.
        let lat = RingCostModel::new(1.0, 1e12).with_latency(1e-5);
        let tree = lat.collective_seconds(CollectiveKind::AllReduceTree, 16, 64.0);
        let ring = lat.collective_seconds(CollectiveKind::AllReduce, 16, 64.0);
        assert!(tree < ring, "small: tree {tree} vs ring {ring}");
        let bw = RingCostModel::new(1.0, 100.0);
        let tree_b = bw.collective_seconds(CollectiveKind::AllReduceTree, 16, 1e9);
        let ring_b = bw.collective_seconds(CollectiveKind::AllReduce, 16, 1e9);
        assert!(ring_b < tree_b, "large: ring {ring_b} vs tree {tree_b}");
    }

    #[test]
    fn log_step_kinds_are_chunk_blind() {
        let m = RingCostModel::new(1.0, 100.0).with_latency(1e-6);
        for kind in [
            CollectiveKind::AllGatherRecursiveDoubling,
            CollectiveKind::ReduceScatterRecursiveHalving,
            CollectiveKind::AllReduceRecursiveHalvingDoubling,
            CollectiveKind::AllReduceTree,
            CollectiveKind::BroadcastTree,
        ] {
            let flat = m.collective_seconds(kind, 8, 4e6);
            let chunked = m.collective_seconds_chunked(kind, 8, 4e6, 4);
            assert!((flat - chunked).abs() < 1e-15, "{kind:?}");
        }
    }

    #[test]
    fn pipelined_broadcast_approaches_bandwidth_bound() {
        // Bandwidth-bound chain: more chunks → closer to n/β.
        let m = RingCostModel::new(1.0, 100.0);
        let n = 1000.0;
        let g = 8;
        let t1 = m.collective_seconds_chunked(CollectiveKind::Broadcast, g, n, 1);
        let t4 = m.collective_seconds_chunked(CollectiveKind::Broadcast, g, n, 4);
        let t64 = m.collective_seconds_chunked(CollectiveKind::Broadcast, g, n, 64);
        assert!(t4 < t1, "pipelining must help: S=4 {t4} vs S=1 {t1}");
        assert!(t64 < t4);
        let bound = n / 100.0;
        assert!(t64 < 1.2 * bound, "S=64 {t64} should near n/β = {bound}");
        assert!(t64 >= bound, "no model beats the serial bandwidth bound");
    }
}
