//! Virtual-time cost models for the correctness plane.
//!
//! Functional runs (threads moving real `f32`s) are far slower than GPUs
//! and their wall-clock times mean nothing for the paper's figures.
//! Instead, each rank carries a virtual clock that these models advance:
//! compute by a flop rate, collectives by the same ring-algorithm
//! formulas the paper's performance model uses (Thakur et al. /
//! Rabenseifner, Section V-B). This keeps the functional plane and the
//! analytical plane (`axonn-sim`) in agreement by construction.

/// Which collective a cost is being charged for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    AllGather,
    ReduceScatter,
    /// Ring all-reduce (bandwidth-optimal; Assumption-1 of the paper).
    AllReduce,
    /// Recursive-doubling all-reduce (latency-optimal, used for small
    /// messages as in NCCL/MPICH).
    AllReduceRecursiveDoubling,
    Broadcast,
    Barrier,
    PointToPoint,
}

/// Advances virtual time for compute and communication.
pub trait CostModel: Send + Sync {
    /// Seconds charged for `flops` floating-point operations on one rank.
    fn compute_seconds(&self, flops: f64) -> f64;

    /// Seconds charged for a collective of `kind` over `group_size` ranks
    /// moving `bytes` (the size of the *full* buffer at each rank for
    /// all-reduce/broadcast; the gathered size for all-gather; the
    /// pre-scatter size for reduce-scatter).
    fn collective_seconds(&self, kind: CollectiveKind, group_size: usize, bytes: f64) -> f64;
}

/// Charges nothing: virtual clocks stay at zero. The default for pure
/// correctness tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCost;

impl CostModel for NullCost {
    fn compute_seconds(&self, _flops: f64) -> f64 {
        0.0
    }
    fn collective_seconds(&self, _k: CollectiveKind, _g: usize, _b: f64) -> f64 {
        0.0
    }
}

/// Ring-algorithm costs with a single flop rate and a single link
/// bandwidth — the flat version of the paper's Equations 1–5 (the
/// hierarchical bandwidths of Eq. 7 live in `axonn-cluster`; the
/// functional plane runs at most a node's worth of ranks, where a single
/// bandwidth is the right model).
#[derive(Debug, Clone, Copy)]
pub struct RingCostModel {
    /// Sustained flop/s per rank.
    pub flops_per_second: f64,
    /// Peer-to-peer bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-ring-step latency in seconds (Assumption-3 of the paper sets
    /// this to zero; a nonzero value makes the "observed" plane richer
    /// than the model, as in real systems).
    pub alpha: f64,
}

impl RingCostModel {
    pub fn new(flops_per_second: f64, bandwidth: f64) -> Self {
        RingCostModel {
            flops_per_second,
            bandwidth,
            alpha: 0.0,
        }
    }

    pub fn with_latency(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }
}

impl CostModel for RingCostModel {
    fn compute_seconds(&self, flops: f64) -> f64 {
        flops / self.flops_per_second
    }

    fn collective_seconds(&self, kind: CollectiveKind, group_size: usize, bytes: f64) -> f64 {
        let g = group_size as f64;
        if group_size <= 1 {
            return 0.0;
        }
        let steps;
        let volume;
        match kind {
            // All-gather of a total of `bytes`: each rank sends its
            // bytes/g shard g-1 times.
            CollectiveKind::AllGather => {
                steps = g - 1.0;
                volume = (g - 1.0) / g * bytes;
            }
            // Reduce-scatter of `bytes`: same traffic as all-gather.
            CollectiveKind::ReduceScatter => {
                steps = g - 1.0;
                volume = (g - 1.0) / g * bytes;
            }
            // All-reduce = reduce-scatter + all-gather.
            CollectiveKind::AllReduce => {
                steps = 2.0 * (g - 1.0);
                volume = 2.0 * (g - 1.0) / g * bytes;
            }
            // log2(g) exchanges of the whole buffer.
            CollectiveKind::AllReduceRecursiveDoubling => {
                steps = g.log2().ceil();
                volume = g.log2().ceil() * bytes;
            }
            CollectiveKind::Broadcast => {
                steps = g - 1.0;
                volume = bytes;
            }
            CollectiveKind::Barrier => {
                steps = 2.0 * (g - 1.0);
                volume = 0.0;
            }
            CollectiveKind::PointToPoint => {
                steps = 1.0;
                volume = bytes;
            }
        }
        steps * self.alpha + volume / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_cost_is_free() {
        let c = NullCost;
        assert_eq!(c.compute_seconds(1e12), 0.0);
        assert_eq!(c.collective_seconds(CollectiveKind::AllReduce, 8, 1e9), 0.0);
    }

    #[test]
    fn ring_allreduce_matches_2_gm1_over_g() {
        // Paper Eqs 3-5: all-reduce time = 2/β · (g-1)/g · n.
        let m = RingCostModel::new(1.0, 100.0);
        let t = m.collective_seconds(CollectiveKind::AllReduce, 4, 400.0);
        assert!((t - 2.0 * (3.0 / 4.0) * 400.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn ring_allgather_matches_gm1_over_g() {
        // Paper Eq 1 shape: (g-1) · shard / β with shard = n/g.
        let m = RingCostModel::new(1.0, 100.0);
        let t = m.collective_seconds(CollectiveKind::AllGather, 8, 800.0);
        assert!((t - (7.0 / 8.0) * 800.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn solo_group_is_free() {
        let m = RingCostModel::new(1.0, 1.0);
        for kind in [
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllReduce,
        ] {
            assert_eq!(m.collective_seconds(kind, 1, 1e6), 0.0);
        }
    }

    #[test]
    fn recursive_doubling_is_latency_optimal_for_small_messages() {
        // alpha-dominated regime: log2(g) steps beat 2(g-1).
        let m = RingCostModel::new(1.0, 1e12).with_latency(1e-5);
        let small = 64.0;
        let ring = m.collective_seconds(CollectiveKind::AllReduce, 16, small);
        let rd = m.collective_seconds(CollectiveKind::AllReduceRecursiveDoubling, 16, small);
        assert!(
            rd < ring,
            "rd {rd} should beat ring {ring} for tiny buffers"
        );
        // Bandwidth-dominated regime: ring wins.
        let big = 1e9;
        let ring_b = m.collective_seconds(CollectiveKind::AllReduce, 16, big);
        let rd_b = m.collective_seconds(CollectiveKind::AllReduceRecursiveDoubling, 16, big);
        assert!(
            ring_b < rd_b,
            "ring {ring_b} should beat rd {rd_b} for big buffers"
        );
    }

    #[test]
    fn latency_term_scales_with_steps() {
        let m = RingCostModel::new(1.0, f64::INFINITY).with_latency(1e-6);
        let t = m.collective_seconds(CollectiveKind::AllReduce, 5, 1000.0);
        assert!((t - 8.0e-6).abs() < 1e-12);
    }

    #[test]
    fn compute_rate() {
        let m = RingCostModel::new(2.0e12, 1.0);
        assert!((m.compute_seconds(4.0e12) - 2.0).abs() < 1e-12);
    }
}
