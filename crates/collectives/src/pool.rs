//! Pooled, reference-counted message payloads for the transport.
//!
//! The seed transport moved `Vec<f32>`s: every ring hop allocated a fresh
//! vector and every broadcast fan-out cloned the full payload per
//! receiver. This module replaces that with two mechanisms:
//!
//! * [`Payload`] — an `Arc`-backed slab. Senders hand the transport a
//!   reference-counted buffer; forwarding a received payload to the next
//!   ring hop is an `Arc` clone (zero-copy), and the same slab can sit in
//!   several mailboxes at once.
//! * [`BufferPool`] — a per-world free-list of slabs, bucketed by
//!   power-of-two capacity class. Ring hops check hop buffers out of the
//!   pool and the slab's `Drop` returns it, so steady-state collectives
//!   allocate nothing: the second all-reduce of a training step reuses
//!   the first one's slabs.
//!
//! [`PipelineConfig`] is the companion knob: payloads above a threshold
//! are segmented into up to `max_chunks` pipeline chunks so hop `k` of
//! chunk `i` overlaps hop `k+1` of chunk `i-1` around the ring — the
//! pipelining the paper's bandwidth model (Eqs. 1–5) assumes, and what
//! bounds each pooled slab to `payload/S` bytes.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Buffers retained per capacity class; beyond this, returned slabs are
/// simply freed. Bounds worst-case pool memory at
/// `MAX_SHELF * sum(classes)` per world.
const MAX_SHELF: usize = 16;

/// Smallest capacity class. Tiny control messages (clock sync, barrier
/// tokens) all share one class instead of fragmenting the pool.
const MIN_CLASS: usize = 64;

fn class_of(len: usize) -> usize {
    len.next_power_of_two().max(MIN_CLASS)
}

/// Process-wide buffer-identity counter. Every [`Slab`] (and through
/// [`Comm::buffer_id`](crate::Comm), every logical main-context buffer
/// the schedule verifier tracks) gets a unique id from this well. Ids
/// are never reused: recycling a slab back to the pool ends its
/// identity, and the next checkout of the same storage mints a fresh
/// one — which is exactly the property the use-after-recycle analysis
/// keys on. Id 0 is reserved as "unidentified".
static BUFFER_IDS: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh, never-reused buffer identity.
pub(crate) fn next_buffer_id() -> u64 {
    BUFFER_IDS.fetch_add(1, Ordering::Relaxed)
}

#[derive(Default)]
struct Shelves {
    by_class: HashMap<usize, Vec<Vec<f32>>>,
}

struct PoolInner {
    shelves: Mutex<Shelves>,
    hits: AtomicU64,
    misses: AtomicU64,
    alloc_bytes: AtomicU64,
}

/// Snapshot of a pool's allocation behaviour since creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Checkouts served from a shelved slab (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh slab.
    pub misses: u64,
    /// Total bytes of fresh slab allocation performed.
    pub alloc_bytes: u64,
}

/// A world-wide free-list of `f32` slabs, bucketed by capacity class.
///
/// Cloning is cheap; all clones share the same shelves and statistics.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    pub fn new() -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                shelves: Mutex::new(Shelves::default()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                alloc_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Cumulative hit/miss/allocation statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            alloc_bytes: self.inner.alloc_bytes.load(Ordering::Relaxed),
        }
    }

    /// Check an empty buffer of at least `len` capacity out of the pool.
    /// Returns the buffer, its capacity class, and whether it was a hit.
    fn checkout(&self, len: usize) -> (Vec<f32>, usize, bool) {
        let class = class_of(len);
        let shelved = self
            .inner
            .shelves
            .lock()
            .by_class
            .get_mut(&class)
            .and_then(Vec::pop);
        match shelved {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                (buf, class, true)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .alloc_bytes
                    .fetch_add((class * 4) as u64, Ordering::Relaxed);
                (Vec::with_capacity(class), class, false)
            }
        }
    }

    fn give_back(&self, class: usize, mut buf: Vec<f32>) {
        if buf.capacity() < class {
            return; // drained by into_vec(); nothing to shelve
        }
        buf.clear();
        let mut shelves = self.inner.shelves.lock();
        let shelf = shelves.by_class.entry(class).or_default();
        if shelf.len() < MAX_SHELF {
            shelf.push(buf);
        }
    }
}

/// The storage behind a [`Payload`]: a buffer plus the pool (if any) it
/// returns to when the last reference drops.
struct Slab {
    data: Vec<f32>,
    class: usize,
    pool: Weak<PoolInner>,
    /// Unique identity for the verifier's race/slab-lifetime analyses.
    /// Assigned at wrap/checkout time, dies with the slab: the same
    /// storage re-checked-out later carries a different id.
    id: u64,
}

impl Drop for Slab {
    fn drop(&mut self) {
        if let Some(inner) = self.pool.upgrade() {
            let pool = BufferPool { inner };
            pool.give_back(self.class, std::mem::take(&mut self.data));
        }
    }
}

/// A reference-counted, immutable message payload.
///
/// This is what the transport moves: sending clones an `Arc` (so a ring
/// rank can forward a received chunk to its successor without copying),
/// and pooled payloads return their slab to the world's [`BufferPool`]
/// when the last reference — in whichever mailbox or rank it ends up —
/// is dropped.
#[derive(Clone)]
pub struct Payload {
    slab: Arc<Slab>,
}

impl Payload {
    /// Wrap an owned vector without pooling (the buffer is freed
    /// normally when the last reference drops).
    pub fn from_vec(data: Vec<f32>) -> Payload {
        Payload {
            slab: Arc::new(Slab {
                class: 0,
                data,
                pool: Weak::new(),
                id: next_buffer_id(),
            }),
        }
    }

    /// Copy `src` into a slab checked out of `pool`. Returns the payload
    /// and whether the checkout was a pool hit.
    pub fn copy_pooled(pool: &BufferPool, src: &[f32]) -> (Payload, bool) {
        let (mut buf, class, hit) = pool.checkout(src.len());
        buf.extend_from_slice(src);
        (
            Payload {
                slab: Arc::new(Slab {
                    data: buf,
                    class,
                    pool: Arc::downgrade(&pool.inner),
                    id: next_buffer_id(),
                }),
            },
            hit,
        )
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.slab.data
    }

    /// This payload's logical buffer identity — unique per slab, never
    /// reused. The async issue path records it on the [`crate::SchedOp`]
    /// so the happens-before race detector can pair overlap windows with
    /// [`crate::SchedEvent::BufWrite`] annotations on the same buffer.
    pub fn buffer_id(&self) -> u64 {
        self.slab.id
    }

    /// The identity of the pooled slab backing this payload, or `None`
    /// for unpooled wraps. Same id space as [`buffer_id`](Self::buffer_id);
    /// the slab-lifetime analysis keys recycle ordering on it.
    pub fn slab_id(&self) -> Option<u64> {
        self.is_pooled().then_some(self.slab.id)
    }

    /// True when this payload rides a pool-recycled slab (built by
    /// [`copy_pooled`](Self::copy_pooled)) rather than a plain owned
    /// vector. Size class 0 is reserved for unpooled wraps.
    pub fn is_pooled(&self) -> bool {
        self.slab.class != 0
    }

    pub fn len(&self) -> usize {
        self.slab.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slab.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<f32> {
        self.slab.data.clone()
    }

    /// Take the buffer out without copying when this is the last
    /// reference (the pooled slab is consumed, not returned); falls back
    /// to a copy when the payload is still shared.
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.slab) {
            Ok(mut slab) => std::mem::take(&mut slab.data),
            Err(shared) => shared.data.clone(),
        }
    }
}

impl Deref for Payload {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Payload").field(&self.as_slice()).finish()
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Payload {
        Payload::from_vec(v)
    }
}

impl From<&[f32]> for Payload {
    fn from(v: &[f32]) -> Payload {
        Payload::from_vec(v.to_vec())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<f32>> for Payload {
    fn eq(&self, other: &Vec<f32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f32]> for Payload {
    fn eq(&self, other: &[f32]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Payload> for Vec<f32> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// How large payloads are segmented into ring pipeline chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Payloads shorter than `2 * min_chunk_elems` are never split, so
    /// small (latency-bound) messages keep a single hop per step.
    pub min_chunk_elems: usize,
    /// Upper bound on the number of pipeline chunks per payload.
    pub max_chunks: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            min_chunk_elems: 8192,
            max_chunks: 4,
        }
    }
}

impl PipelineConfig {
    /// A configuration that never segments (the seed transport's shape).
    pub fn disabled() -> Self {
        PipelineConfig {
            min_chunk_elems: usize::MAX,
            max_chunks: 1,
        }
    }

    /// Number of pipeline segments for a payload of `len` elements.
    pub fn segments_for(&self, len: usize) -> usize {
        if self.max_chunks <= 1 || len < 2 * self.min_chunk_elems.max(1) {
            return 1;
        }
        (len / self.min_chunk_elems.max(1))
            .min(self.max_chunks)
            .max(1)
    }
}

/// Split `0..len` into `segs` near-equal contiguous ranges (the first
/// `len % segs` ranges get one extra element).
pub(crate) fn segment_ranges(
    len: usize,
    segs: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let base = len / segs;
    let extra = len % segs;
    let mut start = 0usize;
    (0..segs).map(move |i| {
        let size = base + usize::from(i < extra);
        let r = start..start + size;
        start += size;
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_slabs() {
        let pool = BufferPool::new();
        let (p, hit) = Payload::copy_pooled(&pool, &[1.0, 2.0, 3.0]);
        assert!(!hit);
        assert_eq!(p, vec![1.0, 2.0, 3.0]);
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.alloc_bytes, (MIN_CLASS * 4) as u64);
        drop(p);
        // Same class → served from the shelf, no new allocation.
        let (p2, hit2) = Payload::copy_pooled(&pool, &[4.0; 10]);
        assert!(hit2);
        assert_eq!(p2.len(), 10);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.alloc_bytes, (MIN_CLASS * 4) as u64);
    }

    #[test]
    fn shared_payload_is_zero_copy() {
        let pool = BufferPool::new();
        let (p, _) = Payload::copy_pooled(&pool, &[1.0, 2.0]);
        let q = p.clone();
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
        drop(p);
        assert_eq!(q, vec![1.0, 2.0]);
    }

    #[test]
    fn into_vec_moves_when_unique() {
        let v = vec![1.0, 2.0, 3.0];
        let ptr = v.as_ptr();
        let p = Payload::from_vec(v);
        let back = p.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique payload must move, not copy");

        let p = Payload::from_vec(vec![5.0]);
        let q = p.clone();
        assert_eq!(p.into_vec(), vec![5.0]); // shared → copies
        assert_eq!(q, vec![5.0]);
    }

    #[test]
    fn consumed_pooled_slab_is_not_shelved() {
        let pool = BufferPool::new();
        let (p, _) = Payload::copy_pooled(&pool, &[1.0; 100]);
        let _stolen = p.into_vec(); // slab drained; Drop must not shelve it
        let (_, hit) = Payload::copy_pooled(&pool, &[2.0; 100]);
        assert!(!hit, "drained slab must not be served from the pool");
    }

    #[test]
    fn pipeline_segmentation_policy() {
        let cfg = PipelineConfig {
            min_chunk_elems: 8,
            max_chunks: 4,
        };
        assert_eq!(cfg.segments_for(0), 1);
        assert_eq!(cfg.segments_for(15), 1); // below 2*min
        assert_eq!(cfg.segments_for(16), 2);
        assert_eq!(cfg.segments_for(31), 3);
        assert_eq!(cfg.segments_for(1 << 20), 4); // capped
        assert_eq!(PipelineConfig::disabled().segments_for(1 << 20), 1);
    }

    #[test]
    fn segment_ranges_tile_exactly() {
        for len in [0usize, 1, 7, 16, 31] {
            for segs in 1..=4usize {
                if len == 0 && segs > 1 {
                    continue;
                }
                let ranges: Vec<_> = segment_ranges(len, segs).collect();
                assert_eq!(ranges.len(), segs);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }
}
