//! Non-blocking collectives: the NCCL/RCCL asynchronous semantics that
//! AxoNN's overlap optimizations (OAR, ORS, OAG — Section V-D) depend on.
//!
//! Each rank owns one *communication worker* thread, mirroring a GPU's
//! communication stream: issued operations execute in issue order,
//! concurrently with the issuing thread's compute. An issued operation
//! returns an [`AsyncHandle`]; `wait` blocks until completion and merges
//! the operation's virtual completion time into the rank's clock, so
//! overlap genuinely reduces virtual batch time exactly when it reduces
//! non-overlapped communication.

use crate::algo::{AgAlgo, AlgoPolicy, ArAlgo, RsAlgo};
use crate::comm::{clock_sync, coll_op, Comm, CommShared, HopStats};
use crate::cost::CollectiveKind;
use crate::fault::{unwrap_comm, CommError};
use crate::group::ProcessGroup;
use crate::pool::Payload;
use crate::sched::{SchedEvent, SchedKind};
use axonn_trace::{EventDetail, Stream};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// A collective to run asynchronously, carrying its input payload.
///
/// Payloads are reference-counted ([`Payload`]), so issuing an async
/// collective hands the worker a view of the caller's buffer without
/// materialising an intermediate `Vec` — `From<Vec<f32>>` keeps the old
/// call shape working, and [`Comm::pooled_payload`] builds slabs that
/// return to the world's pool.
#[derive(Debug, Clone)]
pub enum AsyncOp {
    /// In-place sum all-reduce of the buffer.
    AllReduce(Payload),
    /// Sum reduce-scatter; result is this rank's chunk.
    ReduceScatter(Payload),
    /// Sum reduce-scatter with canonical (layout-independent) fold
    /// order — same cost and volume as `ReduceScatter`, different
    /// summation order (see `Comm::reduce_scatter_linear`).
    ReduceScatterLinear(Payload),
    /// All-gather of this rank's shard; result is the concatenation.
    AllGather(Payload),
}

impl AsyncOp {
    /// Resolve the effective algorithm for this op under `policy` on a
    /// group of `g` ranks. The returned [`CollectiveKind`] names the
    /// algorithm (the worker dispatches on it; the cost model prices
    /// it), the [`SchedKind`] its wire lanes (the verifier matches on
    /// it). Canonical-order linear reduce-scatter is exempt from
    /// selection: its fixed fold order is the contract the gradient
    /// bucketizer's bit-identity rests on.
    fn select(&self, policy: &AlgoPolicy, g: usize) -> (CollectiveKind, SchedKind) {
        match self {
            AsyncOp::AllReduce(p) => match policy.all_reduce(p.len(), g) {
                ArAlgo::Ring => (CollectiveKind::AllReduce, SchedKind::AllReduce),
                ArAlgo::Rhd => (
                    CollectiveKind::AllReduceRecursiveHalvingDoubling,
                    SchedKind::AllReduceRhd,
                ),
                ArAlgo::Tree => (CollectiveKind::AllReduceTree, SchedKind::AllReduceTree),
            },
            AsyncOp::ReduceScatter(p) => match policy.reduce_scatter(p.len(), g) {
                RsAlgo::Ring => (CollectiveKind::ReduceScatter, SchedKind::ReduceScatter),
                RsAlgo::Rh => (
                    CollectiveKind::ReduceScatterRecursiveHalving,
                    SchedKind::ReduceScatterRh,
                ),
            },
            AsyncOp::ReduceScatterLinear(_) => (
                CollectiveKind::ReduceScatter,
                SchedKind::ReduceScatterLinear,
            ),
            AsyncOp::AllGather(p) => match policy.all_gather(p.len(), g) {
                AgAlgo::Ring => (CollectiveKind::AllGather, SchedKind::AllGather),
                AgAlgo::Rd => (
                    CollectiveKind::AllGatherRecursiveDoubling,
                    SchedKind::AllGatherRd,
                ),
            },
        }
    }

    fn payload(&self) -> &Payload {
        match self {
            AsyncOp::AllReduce(p)
            | AsyncOp::ReduceScatter(p)
            | AsyncOp::ReduceScatterLinear(p)
            | AsyncOp::AllGather(p) => p,
        }
    }
}

pub(crate) struct Job {
    group: ProcessGroup,
    op: AsyncOp,
    /// Effective algorithm, resolved at issue time (the worker must
    /// execute exactly what was recorded in the schedule stream).
    kind: CollectiveKind,
    seq: u64,
    issue_clock: f64,
    /// Layer scope at issue time, stamped onto the execution span so
    /// overlap reports attribute hidden time to the issuing layer.
    layer: Option<usize>,
    reply: Sender<Result<(Vec<f32>, f64), CommError>>,
}

/// Handle to an in-flight asynchronous collective.
pub struct AsyncHandle {
    rx: Receiver<Result<(Vec<f32>, f64), CommError>>,
    rank: usize,
    shared: Arc<CommShared>,
    kind: CollectiveKind,
    seq: u64,
    group_key: u64,
    group_size: usize,
}

impl AsyncHandle {
    /// Block until the collective completes; returns its result buffer.
    /// Advances the rank's virtual clock to the operation's completion
    /// time if it finished later than the compute stream.
    ///
    /// # Panics
    /// On a poisoned world (legacy message format) or a lost peer; the
    /// fallible variant is [`try_wait`](Self::try_wait).
    pub fn wait(self) -> Vec<f32> {
        unwrap_comm(self.try_wait())
    }

    /// Block until the collective completes or its ring path fails with
    /// a typed [`CommError`].
    pub fn try_wait(self) -> Result<Vec<f32>, CommError> {
        // Size-1 groups leave no Issue events (see `Comm::record_issue`),
        // so their waits must stay invisible too.
        if self.group_size > 1 && self.shared.transport.recording_schedule() {
            self.shared.transport.record_event(
                self.rank,
                SchedEvent::Wait {
                    group_key: self.group_key,
                    seq: self.seq,
                },
            );
        }
        if let Some(info) = self.shared.transport.poison_info() {
            return Err(CommError::Poisoned(info));
        }
        let recv = self.rx.recv();
        let (result, completion) = match recv {
            Ok(Ok(pair)) => pair,
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                // The worker died; if the world was poisoned, report the
                // original failure rather than the secondary symptom.
                return Err(match self.shared.transport.poison_info() {
                    Some(info) => CommError::Poisoned(info),
                    None => CommError::PeerLost {
                        peer: self.rank,
                        detail: "async collective worker terminated before completing".into(),
                    },
                });
            }
        };
        if self.shared.track_time {
            let (gap_start, gap_end) = {
                let mut clock = self.shared.clock.lock();
                let start = clock.now;
                clock.now = clock.now.max(completion);
                (start, clock.now)
            };
            if self.group_size > 1 {
                if let Some(m) = &self.shared.metrics {
                    m.record_wait(gap_end - gap_start);
                }
            }
            if let Some(tracer) = self.shared.tracer.as_ref().filter(|_| self.group_size > 1) {
                let now = tracer.now_ns();
                tracer.record(
                    Stream::Compute,
                    gap_start,
                    gap_end,
                    now,
                    now,
                    tracer.layer(),
                    EventDetail::OverlapWait {
                        op: coll_op(self.kind),
                        seq: self.seq,
                    },
                );
            }
        }
        Ok(result)
    }

    /// True if the collective already finished (never blocks).
    pub fn is_ready(&self) -> bool {
        !self.rx.is_empty()
    }
}

impl Comm {
    /// Issue an asynchronous collective on this rank's communication
    /// stream. All group members must issue the matching operation (in
    /// the same program order, as in SPMD code).
    pub fn start_async(&self, group: &ProcessGroup, op: AsyncOp) -> AsyncHandle {
        self.shared.transport.check_poison();
        let (kind, sched) = op.select(&self.shared.algo, group.size());
        let seq = self.next_seq(group);
        // Buffer-identity annotations for the verifier: the payload's id
        // is the logical buffer this op's overlap window covers, and its
        // slab id (pooled payloads only) keys the lifetime analysis.
        self.record_issue_tagged(
            sched,
            group,
            op.payload().len(),
            None,
            match op {
                AsyncOp::AllGather(_) => None,
                _ => Some(crate::ReduceOp::Sum),
            },
            false,
            op.payload().is_pooled(),
            seq,
            Some(op.payload().buffer_id()),
            op.payload().slab_id(),
        );
        if self.shared.dry {
            // No comm worker exists in dry worlds: synthesise the
            // symbolic (zero-filled) result eagerly so the handle's
            // `wait` completes immediately, preserving the real API's
            // issue/wait shape for schedule extraction.
            let (reply_tx, reply_rx) = unbounded();
            let result = match &op {
                AsyncOp::AllReduce(p) => Ok((vec![0.0; p.len()], 0.0)),
                AsyncOp::ReduceScatter(p) => self
                    .dry_reduce_scatter(p.len(), group, "reduce_scatter")
                    .map(|v| (v, 0.0)),
                AsyncOp::ReduceScatterLinear(p) => self
                    .dry_reduce_scatter(p.len(), group, "reduce_scatter_linear")
                    .map(|v| (v, 0.0)),
                AsyncOp::AllGather(p) => Ok((vec![0.0; p.len() * group.size()], 0.0)),
            };
            let _ = reply_tx.send(result);
            return AsyncHandle {
                rx: reply_rx,
                rank: self.rank(),
                shared: self.shared.clone(),
                kind,
                seq,
                group_key: group.key(),
                group_size: group.size(),
            };
        }
        let issue_clock = if self.shared.track_time {
            self.shared.clock.lock().now
        } else {
            0.0
        };
        let layer = self.shared.tracer.as_ref().and_then(|t| t.layer());
        // Size-1 groups move no data; keep them out of the trace so an
        // event exists iff the op really communicates (the blocking path
        // skips them too).
        if let Some(tracer) = self.tracer().filter(|_| group.size() > 1) {
            let bytes = match &op {
                AsyncOp::AllReduce(b)
                | AsyncOp::ReduceScatter(b)
                | AsyncOp::ReduceScatterLinear(b) => b.len() * 4,
                AsyncOp::AllGather(shard) => shard.len() * group.size() * 4,
            };
            tracer.mark(
                Stream::Compute,
                issue_clock,
                EventDetail::Issue {
                    op: coll_op(kind),
                    group_size: group.size(),
                    bytes: bytes as u64,
                    seq,
                },
            );
        }
        let (reply_tx, reply_rx) = unbounded();
        let job = Job {
            group: group.clone(),
            op,
            kind,
            seq,
            issue_clock,
            layer,
            reply: reply_tx,
        };
        self.async_tx
            .as_ref()
            .expect("communicator has no async worker")
            .send(job)
            .expect("async worker terminated");
        AsyncHandle {
            rx: reply_rx,
            rank: self.rank(),
            shared: self.shared.clone(),
            kind,
            seq,
            group_key: group.key(),
            group_size: group.size(),
        }
    }

    /// Convenience: asynchronous in-place all-reduce.
    pub fn iall_reduce(&self, group: &ProcessGroup, buf: impl Into<Payload>) -> AsyncHandle {
        self.start_async(group, AsyncOp::AllReduce(buf.into()))
    }

    /// Convenience: asynchronous reduce-scatter.
    pub fn ireduce_scatter(&self, group: &ProcessGroup, buf: impl Into<Payload>) -> AsyncHandle {
        self.start_async(group, AsyncOp::ReduceScatter(buf.into()))
    }

    /// Convenience: asynchronous all-gather.
    pub fn iall_gather(&self, group: &ProcessGroup, shard: impl Into<Payload>) -> AsyncHandle {
        self.start_async(group, AsyncOp::AllGather(shard.into()))
    }

    /// Asynchronous all-gather of a borrowed shard via a pooled slab:
    /// no intermediate `Vec` is materialised at the call site and the
    /// slab returns to the world's pool after the collective consumes
    /// it.
    pub fn iall_gather_pooled(&self, group: &ProcessGroup, shard: &[f32]) -> AsyncHandle {
        let payload = self.pooled_payload(shard);
        self.start_async(group, AsyncOp::AllGather(payload))
    }

    /// Asynchronous sum all-reduce of a borrowed buffer via a pooled
    /// slab (see [`iall_gather_pooled`](Self::iall_gather_pooled)).
    pub fn iall_reduce_pooled(&self, group: &ProcessGroup, buf: &[f32]) -> AsyncHandle {
        let payload = self.pooled_payload(buf);
        self.start_async(group, AsyncOp::AllReduce(payload))
    }

    /// Asynchronous canonical-order reduce-scatter of a borrowed buffer
    /// via a pooled slab — the bucket-granular primitive of the gradient
    /// sync pipeline.
    pub fn ireduce_scatter_linear_pooled(&self, group: &ProcessGroup, buf: &[f32]) -> AsyncHandle {
        let payload = self.pooled_payload(buf);
        self.start_async(group, AsyncOp::ReduceScatterLinear(payload))
    }
}

/// Spawn the communication worker for `rank`. Returns the job queue; the
/// worker exits when every `Comm` clone for the rank has been dropped.
pub(crate) fn spawn_worker(rank: usize, shared: Arc<CommShared>) -> Sender<Job> {
    let (tx, rx) = unbounded::<Job>();
    std::thread::Builder::new()
        .name(format!("axonn-comm-{rank}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                run_job(rank, &shared, job);
            }
        })
        .expect("failed to spawn communication worker");
    tx
}

fn run_job(rank: usize, shared: &Arc<CommShared>, job: Job) {
    let Job {
        group,
        op,
        kind,
        seq,
        issue_clock,
        layer,
        reply,
    } = job;
    let wall_start = shared.tracer.as_ref().map(|t| t.now_ns()).unwrap_or(0);
    // Watchdog marker: the comm worker is inside this collective until
    // the job resolves (cleared below, error or not).
    shared.transport.beats().set_op(rank, coll_op(kind).name());
    let outcome = (|| -> Result<(Vec<f32>, f64), CommError> {
        let bytes;
        let mut stats = HopStats::default();
        let result = match op {
            AsyncOp::AllReduce(payload) => {
                bytes = (payload.len() * 4) as f64;
                // Zero-copy when the caller's handle was the last
                // reference; otherwise one copy into a work buffer.
                let mut buf = payload.into_vec();
                match kind {
                    CollectiveKind::AllReduceRecursiveHalvingDoubling => {
                        crate::comm::rhd_all_reduce(
                            shared,
                            rank,
                            &group,
                            seq,
                            &mut buf,
                            crate::comm::ReduceOp::Sum,
                            &mut stats,
                        )?
                    }
                    CollectiveKind::AllReduceTree => crate::comm::tree_all_reduce(
                        shared,
                        rank,
                        &group,
                        seq,
                        &mut buf,
                        crate::comm::ReduceOp::Sum,
                        &mut stats,
                    )?,
                    _ => crate::comm::ring_all_reduce(
                        shared,
                        rank,
                        &group,
                        seq,
                        &mut buf,
                        crate::comm::ReduceOp::Sum,
                        &mut stats,
                    )?,
                }
                buf
            }
            AsyncOp::ReduceScatter(payload) => {
                bytes = (payload.len() * 4) as f64;
                match kind {
                    CollectiveKind::ReduceScatterRecursiveHalving => {
                        crate::comm::rh_reduce_scatter_op(
                            shared,
                            rank,
                            &group,
                            seq,
                            &payload,
                            crate::comm::ReduceOp::Sum,
                            &mut stats,
                        )?
                    }
                    _ => crate::comm::ring_reduce_scatter(
                        shared, rank, &group, seq, &payload, &mut stats,
                    )?,
                }
            }
            AsyncOp::ReduceScatterLinear(payload) => {
                bytes = (payload.len() * 4) as f64;
                crate::comm::linear_reduce_scatter(shared, rank, &group, seq, &payload, &mut stats)?
            }
            AsyncOp::AllGather(shard) => {
                bytes = (shard.len() * group.size() * 4) as f64;
                match kind {
                    CollectiveKind::AllGatherRecursiveDoubling => {
                        crate::comm::rd_all_gather(shared, rank, &group, seq, &shard, &mut stats)?
                    }
                    _ => {
                        crate::comm::ring_all_gather(shared, rank, &group, seq, &shard, &mut stats)?
                    }
                }
            }
        };
        let modeled_cost;
        let completion = if shared.track_time && group.size() > 1 {
            // The collective can start once every member has issued it and
            // this rank's comm stream is free; it then runs for its modelled
            // duration without blocking the compute stream.
            let start = clock_sync(shared, rank, &group, seq, issue_clock)?;
            let stall = shared.transport.take_stall(rank);
            let cost = shared.cost.collective_seconds_chunked(
                kind,
                group.size(),
                bytes,
                stats.chunks.max(1) as usize,
            ) + stall;
            modeled_cost = Some(cost);
            let (begin, done) = {
                let mut clock = shared.clock.lock();
                let begin = start.max(clock.comm_free_async);
                let done = begin + cost;
                clock.comm_free_async = done;
                (begin, done)
            };
            if let Some(tracer) = &shared.tracer {
                tracer.record_xfer(
                    Stream::Comm,
                    begin,
                    done,
                    wall_start,
                    tracer.now_ns(),
                    layer,
                    EventDetail::Collective {
                        op: coll_op(kind),
                        group_size: group.size(),
                        bytes: bytes as u64,
                        seq,
                        blocking: false,
                        op_seconds: cost,
                    },
                    stats.xfer(),
                );
            }
            done
        } else {
            modeled_cost = None;
            issue_clock
        };
        if group.size() > 1 {
            shared.transport.beats().note_collective(rank);
            if let Some(m) = &shared.metrics {
                m.record_collective(coll_op(kind), bytes as u64, modeled_cost, stats.xfer());
            }
        }
        Ok((result, completion))
    })();
    shared.transport.beats().clear_op(rank);
    // Receiver may have been dropped (fire-and-forget); that's fine.
    let _ = reply.send(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommWorld;
    use crate::cost::RingCostModel;
    use std::thread;

    fn run_world<F, T>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = CommWorld::create(n);
        run_world_with(comms, f)
    }

    fn run_world_with<F, T>(comms: Vec<Comm>, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn async_all_reduce_matches_blocking() {
        let results = run_world(4, |c| {
            let g = ProcessGroup::new(vec![0, 1, 2, 3]);
            let buf: Vec<f32> = (0..8).map(|i| (i + c.rank()) as f32).collect();
            let h = c.iall_reduce(&g, buf.clone());
            let async_out = h.wait();
            let mut blocking = buf;
            c.all_reduce(&g, &mut blocking);
            (async_out, blocking)
        });
        for (a, b) in &results {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn async_ops_execute_in_issue_order() {
        let results = run_world(2, |c| {
            let g = ProcessGroup::new(vec![0, 1]);
            let h1 = c.iall_reduce(&g, vec![1.0, 2.0]);
            let h2 = c.iall_reduce(&g, vec![10.0, 20.0]);
            (h1.wait(), h2.wait())
        });
        for (r1, r2) in &results {
            assert_eq!(r1, &vec![2.0, 4.0]);
            assert_eq!(r2, &vec![20.0, 40.0]);
        }
    }

    #[test]
    fn async_overlaps_with_blocking_on_other_group() {
        // Worker runs group {0,1} op while main threads run {0,1} barrier-
        // style blocking op on a different group layout.
        let results = run_world(4, |c| {
            let g01 = ProcessGroup::new(vec![0, 1]);
            let g_all = ProcessGroup::new(vec![0, 1, 2, 3]);
            let h = if g01.contains(c.rank()) {
                Some(c.iall_gather(&g01, vec![c.rank() as f32]))
            } else {
                None
            };
            let mut buf = vec![1.0f32];
            c.all_reduce(&g_all, &mut buf);
            let gathered = h.map(|h| h.wait());
            (buf, gathered)
        });
        for (i, (sum, gathered)) in results.iter().enumerate() {
            assert_eq!(sum, &vec![4.0]);
            if i < 2 {
                assert_eq!(gathered.as_ref().unwrap(), &vec![0.0, 1.0]);
            }
        }
    }

    #[test]
    fn overlap_reduces_virtual_time() {
        // Timed world: a rank that overlaps an all-reduce with compute
        // should finish earlier than one that serialises them.
        let cost = Arc::new(RingCostModel::new(1e9, 1e9));
        let make = || CommWorld::create_timed(2, cost.clone());

        // Serial: collective then compute.
        let serial = run_world_with(make(), |c| {
            let g = ProcessGroup::new(vec![0, 1]);
            let mut buf = vec![0.0f32; 1_000_000];
            c.all_reduce(&g, &mut buf);
            c.advance_compute(5e6); // 5 ms of compute
            c.now()
        });
        // Overlapped: issue async, compute, then wait.
        let overlapped = run_world_with(make(), |c| {
            let g = ProcessGroup::new(vec![0, 1]);
            let buf = vec![0.0f32; 1_000_000];
            let h = c.iall_reduce(&g, buf);
            c.advance_compute(5e6);
            let _ = h.wait();
            c.now()
        });
        for (s, o) in serial.iter().zip(&overlapped) {
            assert!(o < s, "overlapped virtual time {o} should beat serial {s}");
            // Comm cost = 2 * (1/2) * 4MB / 1GB/s = 4 ms; compute 5 ms.
            // Serial ≈ 9 ms, overlapped ≈ max(5,4) = 5 ms.
            assert!((s - 9.0e-3).abs() < 1.0e-3, "serial {s}");
            assert!((o - 5.0e-3).abs() < 1.0e-3, "overlapped {o}");
        }
    }

    #[test]
    fn is_ready_eventually_true() {
        let results = run_world(2, |c| {
            let g = ProcessGroup::new(vec![0, 1]);
            let h = c.iall_reduce(&g, vec![1.0]);

            h.wait()
        });
        assert_eq!(results[0], vec![2.0]);
    }
}
