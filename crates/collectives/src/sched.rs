//! Schedule-event vocabulary for the static collective verifier.
//!
//! Every communicator records, per rank, the ordered stream of collective
//! operations it issues — kind, group, element count, blocking/non-blocking,
//! and the issue/wait pairing of async handles. `axonn-verify` consumes these
//! streams to prove the SPMD matching property the 4D algorithm relies on
//! (every rank issues the same collectives, on the same groups, in the same
//! per-lane order) and to lint for deadlocks and leaks, all without moving a
//! byte of data.
//!
//! Recording happens in two modes:
//! * **dry extraction** ([`crate::CommWorld::dry`]): collectives return
//!   zero-filled results immediately, so a whole training step can be
//!   replayed per rank, serially, to extract its symbolic schedule;
//! * **runtime shadow** (debug builds, or `AXONN_SCHED_VERIFY=1`): live
//!   worlds append to the same per-rank logs while executing normally, and
//!   `axonn_exec::run_spmd` cross-checks the streams at teardown.
//!
//! # Lane keys (canonical reference)
//!
//! Within one collective (one `(group, seq)` pair) the transport's 32-bit
//! sub-key space is partitioned into **lanes** of `0x1_0000` sub-keys each,
//! one lane per wire protocol phase. A message's sub-key is
//!
//! ```text
//! lane + step * 256 + segment
//! ```
//!
//! where `step` is the ring/exchange step (up to 256) and `segment` the
//! chunk-pipeline segment within that step (up to 256, the `SEG_STRIDE`).
//! The lane constants live in [`crate::comm::lane`]; the full message key is
//! `(group_key << 64) | (seq << 32) | sub_key`. Everything the verifier calls
//! a "communicator lane" is the `(group, lane)` projection of this space:
//! per-lane FIFO order is exactly what the mailbox transport guarantees, so
//! per-lane schedule equality is the property that rules out cross-rank
//! deadlock and misdelivery.

use crate::group::ProcessGroup;
use crate::ReduceOp;
use std::fmt;

/// The verifier-visible kind of a scheduled collective. Finer-grained than
/// [`crate::CollectiveKind`]: algorithms that use disjoint wire lanes (ring
/// vs. linear reduce-scatter, ring vs. recursive-doubling all-reduce) must
/// not be considered matching, so each gets its own kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// Ring all-gather (`lane::AG`).
    AllGather,
    /// Ring reduce-scatter (`lane::RS`).
    ReduceScatter,
    /// Canonical-order direct-exchange reduce-scatter (`lane::LRS`).
    ReduceScatterLinear,
    /// Ring all-reduce = reduce-scatter + all-gather (`lane::RS` + `lane::AG`).
    AllReduce,
    /// Canonical-order all-reduce = linear reduce-scatter + ring all-gather
    /// (`lane::LRS` + `lane::AG`).
    AllReduceLinear,
    /// Recursive-doubling all-reduce (`lane::RD`).
    AllReduceRd,
    /// Recursive-doubling all-gather (`lane::RDAG`).
    AllGatherRd,
    /// Recursive-halving reduce-scatter (`lane::RHD`).
    ReduceScatterRh,
    /// Recursive halving/doubling all-reduce = recursive-halving
    /// reduce-scatter + recursive-doubling all-gather
    /// (`lane::RHD` + `lane::RDAG`).
    AllReduceRhd,
    /// Binomial-tree all-reduce = tree reduce to the group root + tree
    /// broadcast (`lane::TREE_UP` + `lane::TREE_DOWN`).
    AllReduceTree,
    /// Chain broadcast (`lane::BCAST`).
    Broadcast,
    /// Binomial-tree broadcast (`lane::TREE_DOWN`).
    BroadcastTree,
    /// Barrier (a 1-element ring all-reduce on `lane::RS`/`lane::AG`).
    Barrier,
}

impl SchedKind {
    /// Short lowercase label used in diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            SchedKind::AllGather => "all_gather",
            SchedKind::ReduceScatter => "reduce_scatter",
            SchedKind::ReduceScatterLinear => "reduce_scatter_linear",
            SchedKind::AllReduce => "all_reduce",
            SchedKind::AllReduceLinear => "all_reduce_linear",
            SchedKind::AllReduceRd => "all_reduce_rd",
            SchedKind::AllGatherRd => "all_gather_rd",
            SchedKind::ReduceScatterRh => "reduce_scatter_rh",
            SchedKind::AllReduceRhd => "all_reduce_rhd",
            SchedKind::AllReduceTree => "all_reduce_tree",
            SchedKind::Broadcast => "broadcast",
            SchedKind::BroadcastTree => "broadcast_tree",
            SchedKind::Barrier => "barrier",
        }
    }

    /// Human-readable lane label used by diagnostics: the wire lanes of
    /// [`lanes`](Self::lanes), named in protocol order. The race and
    /// slab-lifetime checkers name lanes so a rejected overlap window can
    /// be traced to the wire protocol phase that still holds the buffer.
    pub fn lane_label(&self) -> &'static str {
        match self {
            SchedKind::AllGather => "ag",
            SchedKind::ReduceScatter => "rs",
            SchedKind::ReduceScatterLinear => "lrs",
            SchedKind::AllReduce | SchedKind::Barrier => "rs+ag",
            SchedKind::AllReduceLinear => "lrs+ag",
            SchedKind::AllReduceRd => "rd",
            SchedKind::AllGatherRd => "rdag",
            SchedKind::ReduceScatterRh => "rhd",
            SchedKind::AllReduceRhd => "rhd+rdag",
            SchedKind::AllReduceTree => "tree_up+tree_down",
            SchedKind::Broadcast => "bcast",
            SchedKind::BroadcastTree => "tree_down",
        }
    }

    /// The wire lanes (see [`crate::comm::lane`]) this kind occupies, in
    /// protocol order.
    pub fn lanes(&self) -> &'static [u32] {
        use crate::comm::lane;
        match self {
            SchedKind::AllGather => &[lane::AG],
            SchedKind::ReduceScatter => &[lane::RS],
            SchedKind::ReduceScatterLinear => &[lane::LRS],
            SchedKind::AllReduce | SchedKind::Barrier => &[lane::RS, lane::AG],
            SchedKind::AllReduceLinear => &[lane::LRS, lane::AG],
            SchedKind::AllReduceRd => &[lane::RD],
            SchedKind::AllGatherRd => &[lane::RDAG],
            SchedKind::ReduceScatterRh => &[lane::RHD],
            SchedKind::AllReduceRhd => &[lane::RHD, lane::RDAG],
            SchedKind::AllReduceTree => &[lane::TREE_UP, lane::TREE_DOWN],
            SchedKind::Broadcast => &[lane::BCAST],
            SchedKind::BroadcastTree => &[lane::TREE_DOWN],
        }
    }
}

impl fmt::Display for SchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One collective issue as seen by the verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedOp {
    pub kind: SchedKind,
    /// The communicator group, by its ordered member list — order is part of
    /// group identity (it fixes ring neighbours and fold order).
    pub ranks: Vec<usize>,
    /// The group's fnv1a key, as used in message keys.
    pub group_key: u64,
    /// Contributed elements (shard length for all-gather, full buffer
    /// length otherwise). Must agree across members.
    pub elems: usize,
    /// Broadcast root (group position), when applicable.
    pub root: Option<usize>,
    /// Reduction operator, when applicable.
    pub reduce: Option<ReduceOp>,
    /// True for blocking calls; false for async issues (completed by a
    /// matching [`SchedEvent::Wait`]).
    pub blocking: bool,
    /// True when the async payload rides a pooled slab.
    pub pooled: bool,
    /// Per-group issue sequence number claimed by this op.
    pub seq: u64,
    /// Logical identity of the main-context buffer this op reads/writes
    /// (the payload's buffer id for async issues). The happens-before
    /// race detector keys overlap windows on this id: a
    /// [`SchedEvent::BufWrite`] on the same id that is concurrent with
    /// the window is a race. `None` for blocking calls, whose window is
    /// empty by construction. Excluded from cross-rank matching — ids
    /// are rank-local.
    pub buf: Option<u64>,
    /// Identity of the pooled slab backing the payload, when pooled.
    /// The slab-lifetime analysis keys recycle ordering on this id.
    /// Excluded from cross-rank matching.
    pub slab: Option<u64>,
}

impl fmt::Display for SchedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[elems={}", self.kind, self.elems)?;
        if let Some(root) = self.root {
            write!(f, ", root={root}")?;
        }
        if let Some(op) = self.reduce {
            write!(f, ", op={op:?}")?;
        }
        if !self.blocking {
            f.write_str(", async")?;
        }
        write!(f, ", seq={}]", self.seq)
    }
}

/// One entry of a rank's recorded schedule stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// A collective was issued (blocking call entered, or async job
    /// submitted to the comm worker).
    Issue(SchedOp),
    /// An async handle was waited on, identified by its `(group, seq)`.
    Wait { group_key: u64, seq: u64 },
    /// A structural marker from a higher layer (e.g. `bucket_seal` from the
    /// gradient bucketizer), consumed by leak lints.
    Marker { label: &'static str },
    /// The main context mutated the logical buffer `buf` (overlap-window
    /// annotation). Emitted by layers that hand a buffer to an async
    /// collective — the race detector checks every such write against the
    /// overlap windows of pending async ops on the same id.
    BufWrite { buf: u64, label: &'static str },
    /// The pooled slab `slab` was returned to the buffer pool (lifetime
    /// annotation). The slab analysis proves every reader's clock passed
    /// the slab's last use before this point. The runtime never emits
    /// this on clean paths — slabs recycle implicitly when their owning
    /// op's payload drops — so it appears only in injected-defect streams
    /// and hand-built tests.
    SlabRecycle { slab: u64 },
}

impl fmt::Display for SchedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedEvent::Issue(op) => write!(f, "issue {op}"),
            SchedEvent::Wait { group_key, seq } => {
                write!(f, "wait[group={group_key:#x}, seq={seq}]")
            }
            SchedEvent::Marker { label } => write!(f, "marker[{label}]"),
            SchedEvent::BufWrite { buf, label } => {
                write!(f, "buf_write[buf={buf}, {label}]")
            }
            SchedEvent::SlabRecycle { slab } => write!(f, "slab_recycle[slab={slab}]"),
        }
    }
}

impl SchedOp {
    /// Build an op from a live issue site.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        kind: SchedKind,
        group: &ProcessGroup,
        elems: usize,
        root: Option<usize>,
        reduce: Option<ReduceOp>,
        blocking: bool,
        pooled: bool,
        seq: u64,
        buf: Option<u64>,
        slab: Option<u64>,
    ) -> Self {
        SchedOp {
            kind,
            ranks: group.ranks().to_vec(),
            group_key: group.key(),
            elems,
            root,
            reduce,
            blocking,
            pooled,
            seq,
            buf,
            slab,
        }
    }
}
