//! Per-rank communicators and blocking ring collectives.
//!
//! The collectives are the textbook ring algorithms the paper's model
//! assumes (Assumption-1): reduce-scatter and all-gather move
//! `(g-1)/g · n` bytes per rank in `g-1` steps, and all-reduce is
//! reduce-scatter followed by all-gather (Rabenseifner). Reduction order
//! around the ring is fixed by group order, so results are deterministic
//! (bit-identical across runs for the same grid).
//!
//! Every collective has two faces: the infallible legacy API (panics on a
//! poisoned world or lost peer, preserving PR 1's semantics) and a
//! fallible `try_*` API returning [`CommError`], which is what the
//! fault-tolerant supervisor builds on.

use crate::algo::{AgAlgo, AlgoPolicy, ArAlgo, BcastAlgo, RsAlgo};
use crate::cost::{CollectiveKind, CostModel, NullCost};
use crate::fault::{unwrap_comm, CommError, FaultConfig};
use crate::fold;
use crate::group::ProcessGroup;
use crate::mailbox::{MsgKey, PoisonInfo, Transport};
use crate::pool::{segment_ranges, Payload, PipelineConfig, PoolStats};
use crate::sched::{SchedEvent, SchedKind, SchedOp};
use axonn_trace::{CollOp, EventDetail, Stream, TraceSink, XferStats};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Trace-event op label for a modelled collective kind.
pub(crate) fn coll_op(kind: CollectiveKind) -> CollOp {
    match kind {
        CollectiveKind::AllGather => CollOp::AllGather,
        CollectiveKind::AllGatherRecursiveDoubling => CollOp::AllGatherRd,
        CollectiveKind::ReduceScatter => CollOp::ReduceScatter,
        CollectiveKind::ReduceScatterRecursiveHalving => CollOp::ReduceScatterRh,
        CollectiveKind::AllReduce => CollOp::AllReduce,
        CollectiveKind::AllReduceRecursiveDoubling => CollOp::AllReduceRd,
        CollectiveKind::AllReduceRecursiveHalvingDoubling => CollOp::AllReduceRhd,
        CollectiveKind::AllReduceTree => CollOp::AllReduceTree,
        CollectiveKind::Broadcast => CollOp::Broadcast,
        CollectiveKind::BroadcastTree => CollOp::BroadcastTree,
        // Point-to-point transfers have no dedicated trace op; the
        // barrier label is the closest stand-in and keeps the map total.
        CollectiveKind::Barrier | CollectiveKind::PointToPoint => CollOp::Barrier,
    }
}

/// Virtual-time state of one rank, shared between its main thread and its
/// async communication worker.
#[derive(Debug, Default)]
pub struct ClockState {
    /// Current virtual time of the rank's compute stream.
    pub now: f64,
    /// When the rank's *synchronous* communication stream becomes free
    /// (blocking collectives, issued from the compute thread).
    pub comm_free_sync: f64,
    /// When the rank's *asynchronous* communication stream becomes free
    /// (non-blocking collectives on the communication worker). Separate
    /// streams keep virtual time deterministic regardless of how the OS
    /// interleaves the two threads — mirroring the independent
    /// communication channels of the simulator.
    pub comm_free_async: f64,
}

pub(crate) struct CommShared {
    pub(crate) transport: Arc<Transport>,
    pub(crate) cost: Arc<dyn CostModel>,
    pub(crate) track_time: bool,
    pub(crate) clock: Mutex<ClockState>,
    /// Per-group collective sequence numbers, assigned at issue time so
    /// async and blocking collectives on the same group never collide.
    pub(crate) seq: Mutex<HashMap<u64, u64>>,
    /// Per-rank event recorder, present in traced worlds.
    pub(crate) tracer: Option<Arc<TraceSink>>,
    /// Dry (symbolic) mode: collectives record their schedule event and
    /// return zero-filled results immediately — no messages, no workers.
    /// Used by the static verifier to extract per-rank schedules.
    pub(crate) dry: bool,
    /// Live metrics facade, present when the telemetry plane is on.
    /// Pre-registered handles: stamping is atomic adds, no allocation.
    pub(crate) metrics: Option<Arc<axonn_trace::LiveCollectives>>,
    /// Message-size-aware algorithm selection policy, resolved once at
    /// world build so every rank selects identically.
    pub(crate) algo: AlgoPolicy,
}

/// A rank's handle to the world: identity, transport, cost model, clock.
///
/// Cloning is cheap (all state is shared); clones are how the async
/// worker thread gets access to the same rank.
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    pub(crate) shared: Arc<CommShared>,
    pub(crate) async_tx: Option<crossbeam::channel::Sender<crate::nonblocking::Job>>,
}

/// RAII marker for "this rank is inside collective `op`" — the watchdog
/// names the op when the rank stalls mid-collective. Cleared (and a
/// flight breadcrumb written) on drop, including unwinds.
pub(crate) struct OpScope<'a> {
    comm: &'a Comm,
    op: &'static str,
}

impl Drop for OpScope<'_> {
    fn drop(&mut self) {
        let transport = &self.comm.shared.transport;
        transport.beats().clear_op(self.comm.rank);
        #[cfg(not(loom))]
        transport
            .flight(self.comm.rank)
            .record(format!("exit {}", self.op));
        #[cfg(loom)]
        let _ = self.op;
    }
}

/// Factory for communicator worlds.
pub struct CommWorld;

impl CommWorld {
    /// A world of `size` ranks with no virtual-time tracking.
    pub fn create(size: usize) -> Vec<Comm> {
        Self::builder(size).build()
    }

    /// A world of `size` ranks whose clocks advance per `cost`.
    pub fn create_timed(size: usize, cost: Arc<dyn CostModel>) -> Vec<Comm> {
        Self::builder(size).cost(cost).build()
    }

    /// An untimed world with deterministic fault injection installed
    /// (message drops, link stalls, recv timeout).
    pub fn create_faulty(size: usize, faults: FaultConfig) -> Vec<Comm> {
        Self::builder(size).faults(faults).build()
    }

    /// A timed world with fault injection (stall rules need a clock to
    /// be observable).
    pub fn create_timed_faulty(
        size: usize,
        cost: Arc<dyn CostModel>,
        faults: FaultConfig,
    ) -> Vec<Comm> {
        Self::builder(size).cost(cost).faults(faults).build()
    }

    /// A timed world whose ranks record trace events. The returned sinks
    /// (one per rank, same order) stay valid after the `Comm`s are moved
    /// to their threads; drain them with [`TraceSink::finish`] once the
    /// run is over.
    pub fn create_traced(
        size: usize,
        cost: Arc<dyn CostModel>,
    ) -> (Vec<Comm>, Vec<Arc<TraceSink>>) {
        Self::builder(size).cost(cost).build_traced()
    }

    /// Start configuring a world explicitly (cost model, fault
    /// injection, chunk-pipeline policy).
    pub fn builder(size: usize) -> WorldBuilder {
        WorldBuilder {
            size,
            cost: Arc::new(NullCost),
            track_time: false,
            faults: FaultConfig::none(),
            pipeline: PipelineConfig::default(),
            record_schedule: None,
            metrics: None,
            dry: false,
            algo: None,
        }
    }

    /// A **dry** world for symbolic schedule extraction: every collective
    /// records its schedule event and returns a zero-filled result of the
    /// correct shape without moving a message (no async workers are
    /// spawned, so ranks can be driven serially from one thread). Raw
    /// point-to-point send/recv is not available in dry mode. Schedule
    /// recording is always on; read the streams back with
    /// [`Comm::schedule_streams`].
    pub fn dry(size: usize) -> Vec<Comm> {
        let mut b = Self::builder(size);
        b.dry = true;
        b.build()
    }
}

/// Default recording policy: on in debug builds, off in release, with
/// `AXONN_SCHED_VERIFY=1`/`0` overriding either way.
fn default_recording() -> bool {
    match std::env::var("AXONN_SCHED_VERIFY") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") => false,
        Ok(_) => true,
        Err(_) => cfg!(debug_assertions),
    }
}

/// Configures and creates a [`Comm`] world.
pub struct WorldBuilder {
    size: usize,
    cost: Arc<dyn CostModel>,
    track_time: bool,
    faults: FaultConfig,
    pipeline: PipelineConfig,
    record_schedule: Option<bool>,
    metrics: Option<axonn_trace::LiveRegistry>,
    dry: bool,
    algo: Option<AlgoPolicy>,
}

impl WorldBuilder {
    /// Advance virtual clocks per `cost` (implies time tracking).
    pub fn cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = cost;
        self.track_time = true;
        self
    }

    /// Install deterministic fault injection.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Override the chunk-pipeline segmentation policy (the default
    /// splits payloads of ≥ 16 Ki elements into up to 4 chunks).
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Override the message-size-aware algorithm selection policy (the
    /// default resolves [`AlgoPolicy::from_env`] once at build —
    /// `AXONN_COLL_ALGO` — so A/B runs can force ring/tree/rhd).
    pub fn algo(mut self, policy: AlgoPolicy) -> Self {
        self.algo = Some(policy);
        self
    }

    /// Force per-rank schedule recording on or off. The default follows
    /// the build profile (on under `debug_assertions`), overridable with
    /// `AXONN_SCHED_VERIFY=1`/`0`; dry worlds always record.
    pub fn record_schedule(mut self, on: bool) -> Self {
        self.record_schedule = Some(on);
        self
    }

    /// Publish live metrics into `registry` (overriding the default
    /// world-private registry gated by `AXONN_METRICS`). This is how an
    /// observer (`axonnctl monitor`, the watchdog, tests) shares the
    /// registry with the world it is watching.
    pub fn metrics(mut self, registry: axonn_trace::LiveRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Create the world.
    pub fn build(self) -> Vec<Comm> {
        self.build_inner(None)
    }

    /// Create the world with per-rank trace sinks.
    pub fn build_traced(self) -> (Vec<Comm>, Vec<Arc<TraceSink>>) {
        let sinks: Vec<Arc<TraceSink>> = (0..self.size).map(TraceSink::new).collect();
        let comms = self.build_inner(Some(&sinks));
        (comms, sinks)
    }

    fn build_inner(self, tracers: Option<&[Arc<TraceSink>]>) -> Vec<Comm> {
        let WorldBuilder {
            size,
            cost,
            track_time,
            faults,
            pipeline,
            record_schedule,
            metrics,
            dry,
            algo,
        } = self;
        assert!(size > 0, "world size must be positive");
        // Resolved once here, not per rank: every rank of a world must
        // select the same algorithm for the same collective.
        let algo = algo.unwrap_or_else(AlgoPolicy::from_env);
        let record = dry || record_schedule.unwrap_or_else(default_recording);
        let transport = Transport::with_opts_recording(size, faults, pipeline, record);
        // Live metrics: an explicit registry always publishes; otherwise
        // a world-private registry is created unless AXONN_METRICS=0.
        // Dry worlds never stamp (they execute nothing).
        let live = if dry {
            None
        } else {
            match metrics {
                Some(reg) => Some(Arc::new(axonn_trace::LiveCollectives::new(&reg))),
                None if axonn_trace::metrics_enabled() => {
                    Some(Arc::new(axonn_trace::LiveCollectives::new(
                        &axonn_trace::LiveRegistry::new_enabled(true),
                    )))
                }
                None => None,
            }
        };
        (0..size)
            .map(|rank| {
                let shared = Arc::new(CommShared {
                    transport: transport.clone(),
                    cost: cost.clone(),
                    track_time,
                    clock: Mutex::new(ClockState::default()),
                    seq: Mutex::new(HashMap::new()),
                    tracer: tracers.map(|t| t[rank].clone()),
                    dry,
                    metrics: live.clone(),
                    algo,
                });
                // Dry worlds never spawn workers: async issues complete
                // eagerly with symbolic results.
                let async_tx =
                    (!dry).then(|| crate::nonblocking::spawn_worker(rank, shared.clone()));
                Comm {
                    rank,
                    shared,
                    async_tx,
                }
            })
            .collect()
    }
}

/// Compose a message key from group identity, issue sequence and a
/// sub-channel (ring step / phase / special lane).
pub(crate) fn msg_key(group_key: u64, seq: u64, sub: u32) -> MsgKey {
    ((group_key as u128) << 64) | (((seq & 0xffff_ffff) as u128) << 32) | sub as u128
}

/// Elementwise reduction operator for reducing collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
}

impl ReduceOp {
    #[inline]
    pub(crate) fn combine(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Sub-channel lanes within one collective's key space.
///
/// The canonical description of the lane-key convention — how
/// `lane + step * 256 + segment` partitions the 32-bit sub-key space, and
/// how the full message key composes with the group key and sequence
/// number — lives in the [`crate::sched`] module docs; this module is just
/// the constants. Each lane spans `0x1_0000` sub-keys, addressed as
/// `lane + step * SEG_STRIDE + segment` by `sub` — up to 256 ring steps of
/// up to 256 pipeline segments.
pub mod lane {
    /// Ring steps of the reduce-scatter phase.
    pub const RS: u32 = 0;
    /// Ring steps of the all-gather phase.
    pub const AG: u32 = 0x0001_0000;
    /// Pipelined broadcast chain: `BCAST + segment`.
    pub const BCAST: u32 = 0x0002_0000;
    /// Clock synchronisation (gather to root, then fan-out).
    pub const CLOCK_UP: u32 = 0x0003_0000;
    pub const CLOCK_DOWN: u32 = 0x0004_0000;
    /// Recursive-doubling exchange steps: `RD + s`.
    pub const RD: u32 = 0x0005_0000;
    /// Direct-exchange (linear-order) reduce-scatter: `LRS + segment`.
    /// One logical step — receivers disambiguate senders by source rank.
    pub const LRS: u32 = 0x0006_0000;
    /// Recursive-halving reduce-scatter exchange steps: `RHD + step·256`.
    pub const RHD: u32 = 0x0007_0000;
    /// Recursive-doubling all-gather exchange steps: `RDAG + step·256`.
    pub const RDAG: u32 = 0x0008_0000;
    /// Binomial-tree reduce phase (child → parent): `TREE_UP + step·256`.
    pub const TREE_UP: u32 = 0x0009_0000;
    /// Binomial-tree broadcast phase (parent → child):
    /// `TREE_DOWN + step·256`.
    pub const TREE_DOWN: u32 = 0x000a_0000;
}

/// Sub-keys per ring step (and therefore the cap on pipeline segments).
pub(crate) const SEG_STRIDE: u32 = 256;

/// Sub-key of pipeline `segment` within ring `step` (lane-relative).
#[inline]
pub(crate) fn sub(step: usize, segment: usize) -> u32 {
    debug_assert!(step < 256, "ring step {step} exceeds key space");
    debug_assert!(
        segment < SEG_STRIDE as usize,
        "segment {segment} exceeds key space"
    );
    step as u32 * SEG_STRIDE + segment as u32
}

/// Per-collective transport statistics gathered by the ring functions:
/// how the payload was segmented and how the slab pool behaved. Kept
/// local to the operation (not read back from the world-wide pool) so
/// concurrent collectives on the compute and comm-worker threads don't
/// smear each other's numbers.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct HopStats {
    pub(crate) chunks: u32,
    pub(crate) alloc_bytes: u64,
    pub(crate) pool_hits: u64,
    pub(crate) pool_misses: u64,
}

impl HopStats {
    /// Record one hop-buffer checkout of `elems` elements.
    fn note(&mut self, hit: bool, elems: usize) {
        if hit {
            self.pool_hits += 1;
        } else {
            self.pool_misses += 1;
            self.alloc_bytes += (elems * 4) as u64;
        }
    }

    pub(crate) fn xfer(&self) -> XferStats {
        XferStats {
            chunks: self.chunks,
            alloc_bytes: self.alloc_bytes,
            pool_hits: self.pool_hits,
            pool_misses: self.pool_misses,
        }
    }
}

/// Copy `src` into a pooled slab, tallying the checkout into `stats`.
fn pooled(shared: &CommShared, src: &[f32], stats: &mut HopStats) -> Payload {
    let (payload, hit) = Payload::copy_pooled(shared.transport.pool(), src);
    stats.note(hit, src.len());
    payload
}

/// Segment count for a payload of `len` elements under the world's
/// pipeline policy, clamped to the key-space cap.
fn segments(shared: &CommShared, len: usize) -> usize {
    shared
        .transport
        .pipeline()
        .segments_for(len)
        .min(SEG_STRIDE as usize)
}

impl Comm {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world_size(&self) -> usize {
        self.shared.transport.world_size()
    }

    /// This rank's event recorder, when the world was created traced.
    pub fn tracer(&self) -> Option<&Arc<TraceSink>> {
        self.shared.tracer.as_ref()
    }

    /// Process-unique id of this world (flight-recorder dumps are named
    /// `flight_w{id}_rank{r}.json`).
    pub fn world_id(&self) -> u64 {
        self.shared.transport.world_id()
    }

    /// The live registry this world publishes into, when telemetry is
    /// on. Observers snapshot it for JSON / Prometheus exposition.
    pub fn live_registry(&self) -> Option<&axonn_trace::LiveRegistry> {
        self.shared.metrics.as_ref().map(|m| m.registry())
    }

    /// Observer-side health snapshot of every rank: heartbeat age,
    /// current op, pending receive (peer + lane), progress counters.
    pub fn telemetry(&self) -> Vec<crate::telemetry::RankTelemetry> {
        self.shared.transport.telemetry()
    }

    /// This rank's flight recorder.
    #[cfg(not(loom))]
    pub fn flight(&self) -> &Arc<axonn_trace::FlightRecorder> {
        self.shared.transport.flight(self.rank)
    }

    /// Dump `rank`'s flight recorder to disk (watchdog trips, failure
    /// detection), returning the written path.
    #[cfg(not(loom))]
    pub fn dump_flight_rank(
        &self,
        rank: usize,
        reason: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        self.shared.transport.dump_flight(rank, reason)
    }

    /// Dump every rank's flight recorder (best effort), returning the
    /// written paths.
    #[cfg(not(loom))]
    pub fn dump_flight_all(&self, reason: &str) -> Vec<std::path::PathBuf> {
        self.shared.transport.dump_flight_all(reason)
    }

    /// Mark the whole world dead because `origin_rank` panicked: every
    /// rank blocked in (or later entering) a collective panics instead
    /// of deadlocking on a peer that will never answer.
    pub fn poison_world(&self, origin_rank: usize, message: String) {
        self.shared.transport.poison(origin_rank, message);
    }

    /// The first recorded failure, if this world was poisoned.
    pub fn poison_info(&self) -> Option<PoisonInfo> {
        self.shared.transport.poison_info()
    }

    /// Declare `rank` dead without poisoning the world: receivers
    /// blocked on it get [`CommError::PeerLost`] while surviving ranks
    /// keep communicating. Used by the supervisor's failure detector.
    pub fn mark_dead(&self, rank: usize, reason: &str) {
        self.shared.transport.mark_dead(rank, reason);
    }

    /// True if `rank` has been marked dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.shared.transport.is_dead(rank)
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> f64 {
        self.shared.clock.lock().now
    }

    /// Advance this rank's virtual clock by the cost of `flops` compute.
    pub fn advance_compute(&self, flops: f64) {
        if self.shared.track_time {
            let dt = self.shared.cost.compute_seconds(flops);
            self.shared.clock.lock().now += dt;
        }
    }

    /// Advance this rank's virtual clock by raw seconds (used by layers
    /// for non-GEMM work they account explicitly).
    pub fn advance_seconds(&self, dt: f64) {
        if self.shared.track_time {
            self.shared.clock.lock().now += dt;
        }
    }

    /// Claim the next collective sequence number for `group`.
    pub(crate) fn next_seq(&self, group: &ProcessGroup) -> u64 {
        let mut seqs = self.shared.seq.lock();
        let s = seqs.entry(group.key()).or_insert(0);
        let out = *s;
        *s += 1;
        out
    }

    /// True when this communicator belongs to a dry (symbolic) world.
    pub fn is_dry(&self) -> bool {
        self.shared.dry
    }

    /// Record a collective issue into this rank's schedule stream.
    /// Size-1 groups move no data and leave no events — the same rule
    /// the tracer and the `axonn-sim` analytical plane follow, so
    /// extracted and simulated schedules line up op for op.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_issue(
        &self,
        kind: SchedKind,
        group: &ProcessGroup,
        elems: usize,
        root: Option<usize>,
        reduce: Option<ReduceOp>,
        blocking: bool,
        pooled: bool,
        seq: u64,
    ) {
        self.record_issue_tagged(
            kind, group, elems, root, reduce, blocking, pooled, seq, None, None,
        );
    }

    /// [`record_issue`](Self::record_issue) with buffer-identity
    /// annotations: `buf` is the logical buffer the op reads/writes and
    /// `slab` the pooled slab backing it, both in the id space of
    /// [`Payload::buffer_id`]. The async issue path records these so the
    /// happens-before race detector and the slab-lifetime analysis can
    /// pair overlap windows with [`SchedEvent::BufWrite`] /
    /// [`SchedEvent::SlabRecycle`] annotations.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_issue_tagged(
        &self,
        kind: SchedKind,
        group: &ProcessGroup,
        elems: usize,
        root: Option<usize>,
        reduce: Option<ReduceOp>,
        blocking: bool,
        pooled: bool,
        seq: u64,
        buf: Option<u64>,
        slab: Option<u64>,
    ) {
        if group.size() > 1 && self.shared.transport.recording_schedule() {
            self.shared.transport.record_event(
                self.rank,
                SchedEvent::Issue(SchedOp::new(
                    kind, group, elems, root, reduce, blocking, pooled, seq, buf, slab,
                )),
            );
        }
    }

    /// Record a structural marker (e.g. `bucket_seal`) into this rank's
    /// schedule stream, for the verifier's leak lints. No-op when
    /// schedule recording is off.
    pub fn record_schedule_marker(&self, label: &'static str) {
        if self.shared.transport.recording_schedule() {
            self.shared
                .transport
                .record_event(self.rank, SchedEvent::Marker { label });
        }
    }

    /// Record that the main context mutated the logical buffer `buf`
    /// (id space of [`Payload::buffer_id`]). Layers that hand buffers to
    /// async collectives call this at each mutation site so the
    /// verifier's happens-before race detector can prove the write does
    /// not land inside a pending collective's overlap window. Today the
    /// runtime copies payloads at issue time, so these annotations
    /// certify the *stronger* zero-copy discipline — the proof that a
    /// future in-place payload path stays sound. No-op when schedule
    /// recording is off.
    pub fn record_buf_write(&self, buf: u64, label: &'static str) {
        if self.shared.transport.recording_schedule() {
            self.shared
                .transport
                .record_event(self.rank, SchedEvent::BufWrite { buf, label });
        }
    }

    /// Record an explicit recycle of pooled slab `slab` into this rank's
    /// schedule stream. The clean runtime never calls this (slabs
    /// recycle implicitly when the owning op's payload drops); it exists
    /// for the verifier's defect injectors and lifetime tests. No-op
    /// when schedule recording is off.
    pub fn record_slab_recycle(&self, slab: u64) {
        if self.shared.transport.recording_schedule() {
            self.shared
                .transport
                .record_event(self.rank, SchedEvent::SlabRecycle { slab });
        }
    }

    /// Snapshot of every rank's recorded schedule stream, when this world
    /// records schedules (dry worlds and debug/`AXONN_SCHED_VERIFY=1`
    /// runtime worlds).
    pub fn schedule_streams(&self) -> Option<Vec<Vec<SchedEvent>>> {
        self.shared.transport.schedule_streams()
    }

    /// True when the recorded streams reflect a fully successful run (no
    /// poison, dead ranks, or typed comm errors) and are therefore
    /// required to satisfy the SPMD matching property.
    pub fn schedule_clean(&self) -> bool {
        self.shared.transport.schedule_clean()
    }

    /// Symbolic reduce-scatter result: mirrors the divisibility contract
    /// of the real ring/linear implementations, byte for byte on the
    /// diagnostic, without moving data.
    pub(crate) fn dry_reduce_scatter(
        &self,
        len: usize,
        group: &ProcessGroup,
        op: &'static str,
    ) -> Result<Vec<f32>, CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(vec![0.0; len]);
        }
        if !len.is_multiple_of(g) {
            self.shared.transport.note_error();
            return Err(CommError::InvalidBuffer {
                op,
                detail: format!("length {len} not divisible by group size {g}"),
            });
        }
        Ok(vec![0.0; len / g])
    }

    /// Raw tagged point-to-point send (tag space is disjoint from
    /// collective keys). Accepts anything convertible to a [`Payload`];
    /// re-sending a received payload is zero-copy.
    pub fn send(&self, dst: usize, tag: u64, data: impl Into<Payload>) {
        assert!(
            !self.shared.dry,
            "raw point-to-point send is not supported in dry schedule extraction"
        );
        let key = msg_key(u64::MAX, tag, 0);
        self.shared.transport.send(self.rank, dst, key, data);
    }

    /// Raw tagged point-to-point receive.
    pub fn recv(&self, src: usize, tag: u64) -> Payload {
        unwrap_comm(self.try_recv(src, tag))
    }

    /// Fallible tagged point-to-point receive: resolves to
    /// [`CommError::PeerLost`] if `src` is dead or silent past the recv
    /// timeout instead of blocking forever.
    pub fn try_recv(&self, src: usize, tag: u64) -> Result<Payload, CommError> {
        assert!(
            !self.shared.dry,
            "raw point-to-point recv is not supported in dry schedule extraction"
        );
        let key = msg_key(u64::MAX, tag, 0);
        self.shared.transport.recv_result(self.rank, src, key)
    }

    /// Copy `src` into a slab checked out of the world's buffer pool —
    /// the preferred way to build payloads for [`send`](Self::send) and
    /// the pooled async collectives, since the slab is recycled once the
    /// last receiver drops it.
    pub fn pooled_payload(&self, src: &[f32]) -> Payload {
        Payload::copy_pooled(self.shared.transport.pool(), src).0
    }

    /// Allocation statistics of the world's slab pool since creation.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.transport.pool().stats()
    }

    /// Blocking all-gather: every member contributes `shard`; returns the
    /// concatenation of all members' shards in group-position order.
    ///
    /// Every member must contribute a shard of the same length — ranks
    /// cannot verify this locally, so a mismatch is caught at receive
    /// time (length assertion on each incoming block), not returned as
    /// a typed error like the [`try_reduce_scatter`](Self::try_reduce_scatter)
    /// divisibility check.
    pub fn all_gather(&self, group: &ProcessGroup, shard: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_all_gather(group, shard))
    }

    /// Fallible all-gather.
    pub fn try_all_gather(
        &self,
        group: &ProcessGroup,
        shard: &[f32],
    ) -> Result<Vec<f32>, CommError> {
        let algo = self.shared.algo.all_gather(shard.len(), group.size());
        let (sched, kind, name) = match algo {
            AgAlgo::Ring => (
                SchedKind::AllGather,
                CollectiveKind::AllGather,
                "all_gather",
            ),
            AgAlgo::Rd => (
                SchedKind::AllGatherRd,
                CollectiveKind::AllGatherRecursiveDoubling,
                "all_gather_rd",
            ),
        };
        let seq = self.next_seq(group);
        self.record_issue(sched, group, shard.len(), None, None, true, false, seq);
        if self.shared.dry {
            return Ok(vec![0.0; shard.len() * group.size()]);
        }
        let _op = self.op_scope(name);
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        let out = match algo {
            AgAlgo::Ring => ring_all_gather(&self.shared, self.rank, group, seq, shard, &mut stats),
            AgAlgo::Rd => rd_all_gather(&self.shared, self.rank, group, seq, shard, &mut stats),
        }?;
        self.charge_blocking(group, seq, kind, (out.len() * 4) as f64, wall, stats)?;
        Ok(out)
    }

    /// Blocking reduce-scatter (sum): every member contributes a buffer of
    /// identical length divisible by the group size; returns this rank's
    /// chunk (at its group position) of the elementwise sum.
    pub fn reduce_scatter(&self, group: &ProcessGroup, buf: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_reduce_scatter(group, buf))
    }

    /// Fallible reduce-scatter. Returns
    /// [`CommError::InvalidBuffer`] when the buffer length is not
    /// divisible by the group size (no messages move in that case).
    pub fn try_reduce_scatter(
        &self,
        group: &ProcessGroup,
        buf: &[f32],
    ) -> Result<Vec<f32>, CommError> {
        let algo = self.shared.algo.reduce_scatter(buf.len(), group.size());
        let (sched, kind, name) = match algo {
            RsAlgo::Ring => (
                SchedKind::ReduceScatter,
                CollectiveKind::ReduceScatter,
                "reduce_scatter",
            ),
            RsAlgo::Rh => (
                SchedKind::ReduceScatterRh,
                CollectiveKind::ReduceScatterRecursiveHalving,
                "reduce_scatter_rh",
            ),
        };
        let seq = self.next_seq(group);
        self.record_issue(
            sched,
            group,
            buf.len(),
            None,
            Some(ReduceOp::Sum),
            true,
            false,
            seq,
        );
        if self.shared.dry {
            return self.dry_reduce_scatter(buf.len(), group, "reduce_scatter");
        }
        let _op = self.op_scope(name);
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        let out = match algo {
            RsAlgo::Ring => {
                ring_reduce_scatter(&self.shared, self.rank, group, seq, buf, &mut stats)
            }
            RsAlgo::Rh => rh_reduce_scatter_op(
                &self.shared,
                self.rank,
                group,
                seq,
                buf,
                ReduceOp::Sum,
                &mut stats,
            ),
        }?;
        self.charge_blocking(group, seq, kind, (buf.len() * 4) as f64, wall, stats)?;
        Ok(out)
    }

    /// Blocking reduce-scatter (sum) with canonical fold order: bits are
    /// independent of how tensors were packed into the buffer (see
    /// [`linear_reduce_scatter`]). Same per-rank volume and cost as
    /// [`reduce_scatter`](Self::reduce_scatter).
    pub fn reduce_scatter_linear(&self, group: &ProcessGroup, buf: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_reduce_scatter_linear(group, buf))
    }

    /// Fallible canonical-order reduce-scatter.
    pub fn try_reduce_scatter_linear(
        &self,
        group: &ProcessGroup,
        buf: &[f32],
    ) -> Result<Vec<f32>, CommError> {
        let seq = self.next_seq(group);
        self.record_issue(
            SchedKind::ReduceScatterLinear,
            group,
            buf.len(),
            None,
            Some(ReduceOp::Sum),
            true,
            false,
            seq,
        );
        if self.shared.dry {
            return self.dry_reduce_scatter(buf.len(), group, "reduce_scatter_linear");
        }
        let _op = self.op_scope("reduce_scatter");
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        let out = linear_reduce_scatter(&self.shared, self.rank, group, seq, buf, &mut stats)?;
        self.charge_blocking(
            group,
            seq,
            CollectiveKind::ReduceScatter,
            (buf.len() * 4) as f64,
            wall,
            stats,
        )?;
        Ok(out)
    }

    /// Blocking all-reduce (sum) with canonical reduction order: linear
    /// reduce-scatter + ring all-gather, so the summation order seen by
    /// every element is the fixed group order — independent of buffer
    /// layout, unlike [`all_reduce`](Self::all_reduce). Any length is
    /// accepted (padded internally).
    pub fn all_reduce_linear(&self, group: &ProcessGroup, buf: &mut [f32]) {
        unwrap_comm(self.try_all_reduce_linear(group, buf))
    }

    /// Fallible canonical-order all-reduce.
    pub fn try_all_reduce_linear(
        &self,
        group: &ProcessGroup,
        buf: &mut [f32],
    ) -> Result<(), CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(());
        }
        let seq = self.next_seq(group);
        self.record_issue(
            SchedKind::AllReduceLinear,
            group,
            buf.len(),
            None,
            Some(ReduceOp::Sum),
            true,
            false,
            seq,
        );
        if self.shared.dry {
            return Ok(());
        }
        let _op = self.op_scope("all_reduce");
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        let n = buf.len();
        let mut work = buf.to_vec();
        work.resize(n.div_ceil(g) * g, 0.0);
        let mine = linear_reduce_scatter(&self.shared, self.rank, group, seq, &work, &mut stats)?;
        let full = ring_all_gather(&self.shared, self.rank, group, seq, &mine, &mut stats)?;
        buf.copy_from_slice(&full[..n]);
        self.charge_blocking(
            group,
            seq,
            CollectiveKind::AllReduce,
            (n * 4) as f64,
            wall,
            stats,
        )
    }

    /// Blocking all-reduce (sum) in place: reduce-scatter + all-gather.
    /// Buffers of any length are accepted (padded internally).
    pub fn all_reduce(&self, group: &ProcessGroup, buf: &mut [f32]) {
        self.all_reduce_op(group, buf, ReduceOp::Sum)
    }

    /// Fallible in-place sum all-reduce.
    pub fn try_all_reduce(&self, group: &ProcessGroup, buf: &mut [f32]) -> Result<(), CommError> {
        self.try_all_reduce_op(group, buf, ReduceOp::Sum)
    }

    /// Blocking elementwise-max all-reduce (used by vocab-parallel
    /// softmax for the numerically stable row maximum).
    pub fn all_reduce_max(&self, group: &ProcessGroup, buf: &mut [f32]) {
        self.all_reduce_op(group, buf, ReduceOp::Max)
    }

    /// Blocking all-reduce with an explicit reduction operator.
    pub fn all_reduce_op(&self, group: &ProcessGroup, buf: &mut [f32], op: ReduceOp) {
        unwrap_comm(self.try_all_reduce_op(group, buf, op))
    }

    /// Fallible all-reduce with an explicit reduction operator.
    pub fn try_all_reduce_op(
        &self,
        group: &ProcessGroup,
        buf: &mut [f32],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let algo = self.shared.algo.all_reduce(buf.len(), group.size());
        let (sched, kind, name) = match algo {
            ArAlgo::Ring => (
                SchedKind::AllReduce,
                CollectiveKind::AllReduce,
                "all_reduce",
            ),
            ArAlgo::Rhd => (
                SchedKind::AllReduceRhd,
                CollectiveKind::AllReduceRecursiveHalvingDoubling,
                "all_reduce_rhd",
            ),
            ArAlgo::Tree => (
                SchedKind::AllReduceTree,
                CollectiveKind::AllReduceTree,
                "all_reduce_tree",
            ),
        };
        let seq = self.next_seq(group);
        self.record_issue(sched, group, buf.len(), None, Some(op), true, false, seq);
        if self.shared.dry {
            return Ok(());
        }
        let _op = self.op_scope(name);
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        match algo {
            ArAlgo::Ring => {
                ring_all_reduce(&self.shared, self.rank, group, seq, buf, op, &mut stats)
            }
            ArAlgo::Rhd => rhd_all_reduce(&self.shared, self.rank, group, seq, buf, op, &mut stats),
            ArAlgo::Tree => {
                tree_all_reduce(&self.shared, self.rank, group, seq, buf, op, &mut stats)
            }
        }?;
        self.charge_blocking(group, seq, kind, (buf.len() * 4) as f64, wall, stats)
    }

    /// Blocking all-reduce choosing the algorithm the way NCCL does:
    /// recursive doubling for small buffers (latency-bound) on
    /// power-of-two groups, ring otherwise (bandwidth-bound). Results are
    /// identical up to floating-point summation order.
    pub fn all_reduce_auto(&self, group: &ProcessGroup, buf: &mut [f32]) {
        const SMALL_ELEMS: usize = 4096;
        if buf.len() <= SMALL_ELEMS && group.size().is_power_of_two() {
            let seq = self.next_seq(group);
            self.record_issue(
                SchedKind::AllReduceRd,
                group,
                buf.len(),
                None,
                Some(ReduceOp::Sum),
                true,
                false,
                seq,
            );
            if self.shared.dry {
                return;
            }
            let _op = self.op_scope("all_reduce_rd");
            let wall = self.wall_now();
            let mut stats = HopStats::default();
            unwrap_comm(
                recursive_doubling_all_reduce(&self.shared, self.rank, group, seq, buf, &mut stats)
                    .and_then(|()| {
                        self.charge_blocking(
                            group,
                            seq,
                            CollectiveKind::AllReduceRecursiveDoubling,
                            (buf.len() * 4) as f64,
                            wall,
                            stats,
                        )
                    }),
            );
        } else {
            self.all_reduce(group, buf);
        }
    }

    /// Blocking broadcast from the member at group position `root_pos`.
    pub fn broadcast(&self, group: &ProcessGroup, root_pos: usize, buf: &mut [f32]) {
        unwrap_comm(self.try_broadcast(group, root_pos, buf))
    }

    /// Fallible broadcast.
    pub fn try_broadcast(
        &self,
        group: &ProcessGroup,
        root_pos: usize,
        buf: &mut [f32],
    ) -> Result<(), CommError> {
        let algo = self.shared.algo.broadcast(buf.len(), group.size());
        let (sched, kind, name) = match algo {
            BcastAlgo::Chain => (SchedKind::Broadcast, CollectiveKind::Broadcast, "broadcast"),
            BcastAlgo::Tree => (
                SchedKind::BroadcastTree,
                CollectiveKind::BroadcastTree,
                "broadcast_tree",
            ),
        };
        let seq = self.next_seq(group);
        self.record_issue(
            sched,
            group,
            buf.len(),
            Some(root_pos),
            None,
            true,
            false,
            seq,
        );
        if self.shared.dry {
            return Ok(());
        }
        let _op = self.op_scope(name);
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        match algo {
            BcastAlgo::Chain => ring_broadcast(
                &self.shared,
                self.rank,
                group,
                seq,
                root_pos,
                buf,
                &mut stats,
            ),
            BcastAlgo::Tree => tree_broadcast(
                &self.shared,
                self.rank,
                group,
                seq,
                root_pos,
                buf,
                &mut stats,
            ),
        }?;
        self.charge_blocking(group, seq, kind, (buf.len() * 4) as f64, wall, stats)
    }

    /// Block until every group member has arrived.
    pub fn barrier(&self, group: &ProcessGroup) {
        unwrap_comm(self.try_barrier(group))
    }

    /// Fallible barrier: completes only when every member arrived, or
    /// reports the peer that never will.
    pub fn try_barrier(&self, group: &ProcessGroup) -> Result<(), CommError> {
        let mut token = vec![0.0f32];
        let seq = self.next_seq(group);
        self.record_issue(
            SchedKind::Barrier,
            group,
            1,
            None,
            Some(ReduceOp::Sum),
            true,
            false,
            seq,
        );
        if self.shared.dry {
            return Ok(());
        }
        let _op = self.op_scope("barrier");
        let wall = self.wall_now();
        let mut stats = HopStats::default();
        ring_all_reduce(
            &self.shared,
            self.rank,
            group,
            seq,
            &mut token,
            ReduceOp::Sum,
            &mut stats,
        )?;
        self.charge_blocking(group, seq, CollectiveKind::Barrier, 0.0, wall, stats)
    }

    /// Wall-clock timestamp for trace events (0 when not tracing).
    pub(crate) fn wall_now(&self) -> u64 {
        self.shared.tracer.as_ref().map(|t| t.now_ns()).unwrap_or(0)
    }

    /// Mark this rank as inside collective `op` until the guard drops.
    /// The watchdog reads the marker to name the op a stalled rank was
    /// executing; the flight recorder gets entry/exit breadcrumbs.
    pub(crate) fn op_scope(&self, op: &'static str) -> OpScope<'_> {
        self.shared.transport.beats().set_op(self.rank, op);
        #[cfg(not(loom))]
        self.shared
            .transport
            .flight(self.rank)
            .record(format!("enter {op}"));
        OpScope { comm: self, op }
    }

    /// Stamp one finished blocking/async collective into the live
    /// metrics plane (no-op when telemetry is off). `seconds` carries
    /// the modelled op time on timed worlds.
    pub(crate) fn stamp_metrics(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        seconds: Option<f64>,
        xfer: XferStats,
    ) {
        self.shared.transport.beats().note_collective(self.rank);
        if let Some(m) = &self.shared.metrics {
            m.record_collective(coll_op(kind), bytes, seconds, xfer);
        }
    }

    /// Charge virtual time for a blocking collective: synchronise clocks
    /// across the group, add the modelled cost (plus any injected link
    /// stall pending against this rank), and occupy the comm stream.
    /// Records the full compute-stream stall (entry → completion) as a
    /// blocking collective span when tracing.
    fn charge_blocking(
        &self,
        group: &ProcessGroup,
        seq: u64,
        kind: CollectiveKind,
        bytes: f64,
        wall_start: u64,
        stats: HopStats,
    ) -> Result<(), CommError> {
        if group.size() <= 1 {
            return Ok(());
        }
        if !self.shared.track_time {
            // Untimed worlds still stamp the live plane (no modelled
            // seconds — matching `from_traces`, which only sees timed
            // runs' op_seconds).
            self.stamp_metrics(kind, bytes as u64, None, stats.xfer());
            return Ok(());
        }
        let entry = self.shared.clock.lock().now;
        let start = clock_sync(&self.shared, self.rank, group, seq, entry)?;
        let stall = self.shared.transport.take_stall(self.rank);
        let cost = self.shared.cost.collective_seconds_chunked(
            kind,
            group.size(),
            bytes,
            stats.chunks.max(1) as usize,
        ) + stall;
        let done = {
            let mut clock = self.shared.clock.lock();
            let begin = start.max(clock.comm_free_sync);
            let done = begin + cost;
            clock.comm_free_sync = done;
            clock.now = clock.now.max(done);
            done
        };
        self.stamp_metrics(kind, bytes as u64, Some(cost), stats.xfer());
        if let Some(tracer) = &self.shared.tracer {
            tracer.record_xfer(
                Stream::Compute,
                entry,
                done,
                wall_start,
                tracer.now_ns(),
                tracer.layer(),
                EventDetail::Collective {
                    op: coll_op(kind),
                    group_size: group.size(),
                    bytes: bytes as u64,
                    seq,
                    blocking: true,
                    op_seconds: cost,
                },
                stats.xfer(),
            );
        }
        Ok(())
    }
}

/// Max-reduce the members' clock values: gather to group root, fan out.
pub(crate) fn clock_sync(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    value: f64,
) -> Result<f64, CommError> {
    let gk = group.key();
    let pos = group.position_of(rank);
    let root = group.rank_at(0);
    if pos == 0 {
        let mut maxv = value;
        for p in 1..group.size() {
            let v = shared.transport.recv_result(
                rank,
                group.rank_at(p),
                msg_key(gk, seq, lane::CLOCK_UP),
            )?;
            maxv = maxv.max(v[0] as f64);
        }
        for p in 1..group.size() {
            shared.transport.send(
                rank,
                group.rank_at(p),
                msg_key(gk, seq, lane::CLOCK_DOWN),
                vec![maxv as f32],
            );
        }
        Ok(maxv)
    } else {
        shared.transport.send(
            rank,
            root,
            msg_key(gk, seq, lane::CLOCK_UP),
            vec![value as f32],
        );
        let v = shared
            .transport
            .recv_result(rank, root, msg_key(gk, seq, lane::CLOCK_DOWN))?;
        Ok(v[0] as f64)
    }
}

/// Ring all-gather over a group. `shard` is this rank's contribution;
/// returns all shards concatenated in group-position order.
///
/// Every member must contribute the same shard length (an SPMD contract
/// this rank cannot check locally; violations surface as a per-segment
/// length-mismatch panic at the receiver).
///
/// Each per-step block is segmented into pipeline chunks sent as pooled
/// slabs: sends never block, so segment `j` of step `s` is already on
/// the wire while segment `j-1` is being copied out at the receiver —
/// and each slab is bounded by `shard/S`, which is what lets the pool
/// recycle hop buffers across steps instead of allocating per hop.
pub(crate) fn ring_all_gather(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    shard: &[f32],
    stats: &mut HopStats,
) -> Result<Vec<f32>, CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(shard.to_vec());
    }
    let gk = group.key();
    let pos = group.position_of(rank);
    let next = group.next_of(rank);
    let prev = group.prev_of(rank);
    let chunk = shard.len();
    let segs = segments(shared, chunk);
    stats.chunks = stats.chunks.max(segs as u32);
    let mut out = vec![0.0f32; chunk * g];
    out[pos * chunk..(pos + 1) * chunk].copy_from_slice(shard);
    for s in 0..g - 1 {
        let send_c = (pos + g - s) % g;
        let send_base = send_c * chunk;
        for (j, r) in segment_ranges(chunk, segs).enumerate() {
            let payload = pooled(shared, &out[send_base + r.start..send_base + r.end], stats);
            shared
                .transport
                .send(rank, next, msg_key(gk, seq, lane::AG + sub(s, j)), payload);
        }
        let recv_c = (pos + g - s - 1) % g;
        let recv_base = recv_c * chunk;
        for (j, r) in segment_ranges(chunk, segs).enumerate() {
            let data =
                shared
                    .transport
                    .recv_result(rank, prev, msg_key(gk, seq, lane::AG + sub(s, j)))?;
            assert_eq!(data.len(), r.len(), "all-gather shard length mismatch");
            out[recv_base + r.start..recv_base + r.end].copy_from_slice(&data);
        }
    }
    Ok(out)
}

/// Ring reduce-scatter (sum) over a group. Returns the chunk owned by this
/// rank (chunk index = group position).
pub(crate) fn ring_reduce_scatter(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &[f32],
    stats: &mut HopStats,
) -> Result<Vec<f32>, CommError> {
    ring_reduce_scatter_op(shared, rank, group, seq, buf, ReduceOp::Sum, stats)
}

/// Ring reduce-scatter with an explicit reduction operator.
///
/// The buffer length must be divisible by the group size; an indivisible
/// length is rejected with [`CommError::InvalidBuffer`] *before* any
/// message moves (the seed transport silently assumed divisibility).
/// Segmentation follows the same pipeline policy as all-gather; the
/// elementwise reduction order around the ring is unchanged by it, so
/// results stay bit-identical to the unsegmented reference.
pub(crate) fn ring_reduce_scatter_op(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &[f32],
    op: ReduceOp,
    stats: &mut HopStats,
) -> Result<Vec<f32>, CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(buf.to_vec());
    }
    if !buf.len().is_multiple_of(g) {
        shared.transport.note_error();
        return Err(CommError::InvalidBuffer {
            op: "reduce_scatter",
            detail: format!("length {} not divisible by group size {g}", buf.len()),
        });
    }
    let gk = group.key();
    let pos = group.position_of(rank);
    let next = group.next_of(rank);
    let prev = group.prev_of(rank);
    let chunk = buf.len() / g;
    let segs = segments(shared, chunk);
    stats.chunks = stats.chunks.max(segs as u32);
    let mut work = buf.to_vec();
    for s in 0..g - 1 {
        // Logical chunk indices: after g-1 steps this rank owns chunk
        // `pos`, fully reduced around the ring.
        let send_c = (pos + 2 * g - s - 1) % g;
        let send_base = send_c * chunk;
        for (j, r) in segment_ranges(chunk, segs).enumerate() {
            let payload = pooled(shared, &work[send_base + r.start..send_base + r.end], stats);
            shared
                .transport
                .send(rank, next, msg_key(gk, seq, lane::RS + sub(s, j)), payload);
        }
        let recv_c = (pos + 2 * g - s - 2) % g;
        let recv_base = recv_c * chunk;
        for (j, r) in segment_ranges(chunk, segs).enumerate() {
            let data =
                shared
                    .transport
                    .recv_result(rank, prev, msg_key(gk, seq, lane::RS + sub(s, j)))?;
            assert_eq!(data.len(), r.len(), "reduce-scatter chunk length mismatch");
            fold::fold_op(op, &mut work[recv_base + r.start..recv_base + r.end], &data);
        }
    }
    Ok(work[pos * chunk..(pos + 1) * chunk].to_vec())
}

/// Direct-exchange reduce-scatter (sum) with a *canonical* fold order:
/// every member sends its slice `o` straight to the member at group
/// position `o`, which folds the `g` contributions in fixed
/// group-position order `((c_0 + c_1) + c_2) + …`. Ring reduce-scatter
/// instead folds in ring order — a rotation of the group order that
/// differs per owned chunk — so its bits depend on how tensors are
/// packed into the buffer. The gradient bucketizer relies on this
/// layout independence to stay bit-identical to the per-tensor oracle
/// for any bucket geometry.
///
/// Per-rank volume matches the ring algorithm (`(g-1)/g · n` bytes sent
/// and received), so callers charge it as a regular reduce-scatter.
pub(crate) fn linear_reduce_scatter(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &[f32],
    stats: &mut HopStats,
) -> Result<Vec<f32>, CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(buf.to_vec());
    }
    if !buf.len().is_multiple_of(g) {
        shared.transport.note_error();
        return Err(CommError::InvalidBuffer {
            op: "reduce_scatter_linear",
            detail: format!("length {} not divisible by group size {g}", buf.len()),
        });
    }
    let gk = group.key();
    let pos = group.position_of(rank);
    let chunk = buf.len() / g;
    let segs = segments(shared, chunk);
    stats.chunks = stats.chunks.max(segs as u32);
    // All sends first (the transport never blocks on send), then receive
    // in group-position order so the fold order is the same on every
    // owner regardless of arrival order.
    for o in 0..g {
        if o == pos {
            continue;
        }
        let base = o * chunk;
        for (j, r) in segment_ranges(chunk, segs).enumerate() {
            let payload = pooled(shared, &buf[base + r.start..base + r.end], stats);
            shared.transport.send(
                rank,
                group.rank_at(o),
                msg_key(gk, seq, lane::LRS + j as u32),
                payload,
            );
        }
    }
    let own = &buf[pos * chunk..(pos + 1) * chunk];
    let mut acc = vec![0.0f32; chunk];
    let mut first = true;
    for p in 0..g {
        if p == pos {
            if first {
                acc.copy_from_slice(own);
            } else {
                fold::fold_sum(&mut acc, own);
            }
        } else {
            for (j, r) in segment_ranges(chunk, segs).enumerate() {
                let data = shared.transport.recv_result(
                    rank,
                    group.rank_at(p),
                    msg_key(gk, seq, lane::LRS + j as u32),
                )?;
                assert_eq!(data.len(), r.len(), "linear reduce-scatter length mismatch");
                if first {
                    acc[r].copy_from_slice(&data);
                } else {
                    fold::fold_sum(&mut acc[r], &data);
                }
            }
        }
        first = false;
    }
    Ok(acc)
}

/// Ring all-reduce (sum) in place: pad to a multiple of the group size,
/// reduce-scatter, all-gather, truncate.
pub(crate) fn ring_all_reduce(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &mut [f32],
    op: ReduceOp,
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(());
    }
    let n = buf.len();
    let padded = n.div_ceil(g) * g;
    let mut work = buf.to_vec();
    // Padding must be the identity of the reduction operator.
    let pad = match op {
        ReduceOp::Sum => 0.0,
        ReduceOp::Max => f32::NEG_INFINITY,
    };
    work.resize(padded, pad);
    let mine = ring_reduce_scatter_op(shared, rank, group, seq, &work, op, stats)?;
    let full = ring_all_gather(shared, rank, group, seq, &mine, stats)?;
    buf.copy_from_slice(&full[..n]);
    Ok(())
}

/// Recursive-doubling all-reduce: at step `s`, exchange the whole buffer
/// with the partner at position `pos XOR 2^s` and add. `log2(g)` steps —
/// latency-optimal, used for small messages. Power-of-two groups only.
pub(crate) fn recursive_doubling_all_reduce(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &mut [f32],
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(());
    }
    assert!(
        g.is_power_of_two(),
        "recursive doubling needs a power-of-two group"
    );
    // Recursive doubling serves the latency-bound small-message regime:
    // whole-buffer exchanges, never segmented.
    stats.chunks = stats.chunks.max(1);
    let gk = group.key();
    let pos = group.position_of(rank);
    let mut stride = 1usize;
    let mut s = 0u32;
    while stride < g {
        let partner = group.rank_at(pos ^ stride);
        let payload = pooled(shared, buf, stats);
        shared
            .transport
            .send(rank, partner, msg_key(gk, seq, lane::RD + s), payload);
        let data = shared
            .transport
            .recv_result(rank, partner, msg_key(gk, seq, lane::RD + s))?;
        assert_eq!(data.len(), buf.len(), "recursive-doubling length mismatch");
        fold::fold_sum(buf, &data);
        stride <<= 1;
        s += 1;
    }
    Ok(())
}

/// Broadcast from group position `root_pos` as a chunk-pipelined chain
/// around the ring: the root segments the buffer into pooled payloads
/// and streams them to its successor; every other rank forwards each
/// segment to the next rank (an `Arc` clone — the slab is never copied
/// on the wire) *before* unpacking it locally, so segment `j` travels
/// hop `k+1` while segment `j+1` travels hop `k`. The seed transport
/// instead star-fanned one full copy of the buffer per receiver from the
/// root; the chain matches the pipelined cost the model charges.
pub(crate) fn ring_broadcast(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    root_pos: usize,
    buf: &mut [f32],
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(());
    }
    let gk = group.key();
    let pos = group.position_of(rank);
    let segs = segments(shared, buf.len());
    stats.chunks = stats.chunks.max(segs as u32);
    // Distance from the root along the chain; the rank at distance g-1
    // is the tail and forwards nothing.
    let dist = (pos + g - root_pos) % g;
    let next = group.rank_at((pos + 1) % g);
    let prev = group.rank_at((pos + g - 1) % g);
    if dist == 0 {
        for (j, r) in segment_ranges(buf.len(), segs).enumerate() {
            let payload = pooled(shared, &buf[r], stats);
            shared.transport.send(
                rank,
                next,
                msg_key(gk, seq, lane::BCAST + j as u32),
                payload,
            );
        }
    } else {
        for (j, r) in segment_ranges(buf.len(), segs).enumerate() {
            let key = msg_key(gk, seq, lane::BCAST + j as u32);
            let data = shared.transport.recv_result(rank, prev, key)?;
            if dist + 1 < g {
                // Forward before unpacking: zero-copy, and the next hop
                // overlaps this rank's local copy.
                shared.transport.send(rank, next, key, data.clone());
            }
            assert_eq!(data.len(), r.len(), "broadcast length mismatch");
            buf[r].copy_from_slice(&data);
        }
    }
    Ok(())
}

/// Recursive-halving reduce-scatter: at step `s` the window of chunk
/// indices this rank still owns is halved — it sends the half its
/// partner keeps (the partner sits `window/2` positions away) and folds
/// the partner's contribution into the half it keeps. `⌈log2 g⌉` steps
/// at the ring's bandwidth-optimal volume (`n/2 + n/4 + … = (g-1)/g·n`
/// per rank). Power-of-two groups only; callers guarantee this via
/// [`AlgoPolicy`] selection.
///
/// Fold order per element: this rank's running value folds the incoming
/// half as `own = op(own, incoming)` at every step — a fixed order the
/// serial replay oracle in [`crate::reference`] reproduces exactly.
pub(crate) fn rh_reduce_scatter_op(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &[f32],
    op: ReduceOp,
    stats: &mut HopStats,
) -> Result<Vec<f32>, CommError> {
    let mut work = buf.to_vec();
    let mine = rh_reduce_scatter_inplace(shared, rank, group, seq, &mut work, op, stats)?;
    Ok(work[mine].to_vec())
}

/// Scratch-free core of the recursive halving: folds in place on `work`
/// and returns the element range of the chunk this rank owns at the
/// end. Lets the halving/doubling all-reduce run without cloning the
/// full buffer.
pub(crate) fn rh_reduce_scatter_inplace(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    work: &mut [f32],
    op: ReduceOp,
    stats: &mut HopStats,
) -> Result<std::ops::Range<usize>, CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(0..work.len());
    }
    if !work.len().is_multiple_of(g) {
        shared.transport.note_error();
        return Err(CommError::InvalidBuffer {
            op: "reduce_scatter",
            detail: format!("length {} not divisible by group size {g}", work.len()),
        });
    }
    assert!(
        g.is_power_of_two(),
        "recursive halving needs a power-of-two group"
    );
    // Whole-block exchanges serving the latency-bound regime: never
    // segmented.
    stats.chunks = stats.chunks.max(1);
    let gk = group.key();
    let pos = group.position_of(rank);
    let chunk = work.len() / g;
    // Window of chunk indices this rank still accumulates: [lo, lo+span).
    let mut lo = 0usize;
    let mut span = g;
    let mut s = 0usize;
    while span > 1 {
        let half = span / 2;
        let mid = lo + half;
        let in_lower = pos < mid;
        let partner_pos = if in_lower { pos + half } else { pos - half };
        let partner = group.rank_at(partner_pos);
        let (keep, send) = if in_lower {
            (lo * chunk..mid * chunk, mid * chunk..(lo + span) * chunk)
        } else {
            (mid * chunk..(lo + span) * chunk, lo * chunk..mid * chunk)
        };
        let key = msg_key(gk, seq, lane::RHD + sub(s, 0));
        let payload = pooled(shared, &work[send], stats);
        shared.transport.send(rank, partner, key, payload);
        let data = shared.transport.recv_result(rank, partner, key)?;
        assert_eq!(data.len(), keep.len(), "recursive-halving length mismatch");
        fold::fold_op(op, &mut work[keep], &data);
        if in_lower {
            span = half;
        } else {
            lo = mid;
            span = half;
        }
        s += 1;
    }
    Ok(pos * chunk..(pos + 1) * chunk)
}

/// Recursive-doubling all-gather: at step `s` (distance `d = 2^s`) every
/// rank exchanges its aligned block of `d` chunks with the partner at
/// position `pos XOR d`, doubling the assembled block. `⌈log2 g⌉` steps
/// at the ring's volume (`n + 2n + … = (g-1)·shard` per rank).
/// Power-of-two groups only; pure data movement, so results are
/// bit-identical to the ring for any inputs.
pub(crate) fn rd_all_gather(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    shard: &[f32],
    stats: &mut HopStats,
) -> Result<Vec<f32>, CommError> {
    let mut out = vec![0.0f32; shard.len() * group.size()];
    rd_all_gather_into(shared, rank, group, seq, shard, &mut out, stats)?;
    Ok(out)
}

/// Scratch-free core of the recursive doubling: assembles the gathered
/// result directly into `out` (length `shard.len() * g`). Lets the
/// halving/doubling all-reduce gather straight into the caller's buffer
/// instead of allocating a fresh one per call.
pub(crate) fn rd_all_gather_into(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    shard: &[f32],
    out: &mut [f32],
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    assert_eq!(out.len(), shard.len() * g, "all-gather output length");
    if g == 1 {
        out.copy_from_slice(shard);
        return Ok(());
    }
    assert!(
        g.is_power_of_two(),
        "recursive doubling needs a power-of-two group"
    );
    stats.chunks = stats.chunks.max(1);
    let gk = group.key();
    let pos = group.position_of(rank);
    let chunk = shard.len();
    out[pos * chunk..(pos + 1) * chunk].copy_from_slice(shard);
    let mut d = 1usize;
    let mut s = 0usize;
    while d < g {
        // This rank holds the aligned block [base, base+d); the partner
        // holds the sibling block [base XOR d, …).
        let base = pos & !(d - 1);
        let partner = group.rank_at(pos ^ d);
        let key = msg_key(gk, seq, lane::RDAG + sub(s, 0));
        let payload = pooled(shared, &out[base * chunk..(base + d) * chunk], stats);
        shared.transport.send(rank, partner, key, payload);
        let data = shared.transport.recv_result(rank, partner, key)?;
        assert_eq!(
            data.len(),
            d * chunk,
            "recursive-doubling all-gather length mismatch"
        );
        let rbase = base ^ d;
        out[rbase * chunk..(rbase + d) * chunk].copy_from_slice(&data);
        d <<= 1;
        s += 1;
    }
    Ok(())
}

/// Recursive halving/doubling all-reduce (Rabenseifner over hypercube
/// exchanges): pad to a multiple of the group size with the operator
/// identity, recursive-halving reduce-scatter, recursive-doubling
/// all-gather, truncate. `2⌈log2 g⌉` messages per rank at the ring
/// all-reduce's bandwidth-optimal volume — the medium-payload winner
/// when the per-message cost dominates. Power-of-two groups only.
pub(crate) fn rhd_all_reduce(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &mut [f32],
    op: ReduceOp,
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(());
    }
    let n = buf.len();
    if n.is_multiple_of(g) {
        // Divisible fast path: halve in place on the caller's buffer and
        // gather straight back into it; the only scratch is the owned
        // chunk (aliasing: the gather reads the shard while rewriting
        // `buf`).
        let mine = rh_reduce_scatter_inplace(shared, rank, group, seq, buf, op, stats)?;
        let shard = buf[mine].to_vec();
        return rd_all_gather_into(shared, rank, group, seq, &shard, buf, stats);
    }
    let padded = n.div_ceil(g) * g;
    let mut work = buf.to_vec();
    let pad = match op {
        ReduceOp::Sum => 0.0,
        ReduceOp::Max => f32::NEG_INFINITY,
    };
    work.resize(padded, pad);
    let mine = rh_reduce_scatter_op(shared, rank, group, seq, &work, op, stats)?;
    let full = rd_all_gather(shared, rank, group, seq, &mine, stats)?;
    buf.copy_from_slice(&full[..n]);
    Ok(())
}

/// Binomial-tree all-reduce: reduce the whole buffer up the tree to the
/// member at group position 0, then tree-broadcast the result back down.
/// `2⌈log2 g⌉` hops on the critical path but `log2(g)·n` volume per
/// phase — the small-payload winner where the α term dominates. Any
/// group size.
///
/// Reduce fold order: at step `s` (mask `2^s`) the rank at position
/// `p` with `p mod 2^(s+1) == 0` folds the accumulated buffer of
/// `p + 2^s` (when present) as `own = op(own, incoming)` — reproduced
/// serially by the oracle in [`crate::reference`].
pub(crate) fn tree_all_reduce(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    buf: &mut [f32],
    op: ReduceOp,
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(());
    }
    stats.chunks = stats.chunks.max(1);
    let gk = group.key();
    let pos = group.position_of(rank);
    let mut mask = 1usize;
    let mut s = 0usize;
    while mask < g {
        if pos & mask != 0 {
            // Hand the accumulated buffer to the parent and leave the
            // reduce phase.
            let parent = group.rank_at(pos - mask);
            let key = msg_key(gk, seq, lane::TREE_UP + sub(s, 0));
            let payload = pooled(shared, buf, stats);
            shared.transport.send(rank, parent, key, payload);
            break;
        }
        if pos + mask < g {
            let child = group.rank_at(pos + mask);
            let key = msg_key(gk, seq, lane::TREE_UP + sub(s, 0));
            let data = shared.transport.recv_result(rank, child, key)?;
            assert_eq!(data.len(), buf.len(), "tree all-reduce length mismatch");
            fold::fold_op(op, buf, &data);
        }
        mask <<= 1;
        s += 1;
    }
    // Fan the root's result back out.
    tree_broadcast(shared, rank, group, seq, 0, buf, stats)
}

/// Binomial-tree broadcast from group position `root_pos`: with
/// positions renumbered so the root is virtual rank 0, virtual rank `v`
/// receives from `v - 2^⌊log2 v⌋` at step `⌊log2 v⌋` and then sends to
/// `v + 2^k` for each higher step `k` while that child exists.
/// `⌈log2 g⌉` hops on the critical path; any group size.
pub(crate) fn tree_broadcast(
    shared: &CommShared,
    rank: usize,
    group: &ProcessGroup,
    seq: u64,
    root_pos: usize,
    buf: &mut [f32],
    stats: &mut HopStats,
) -> Result<(), CommError> {
    let g = group.size();
    if g == 1 {
        return Ok(());
    }
    stats.chunks = stats.chunks.max(1);
    let gk = group.key();
    let pos = group.position_of(rank);
    let v = (pos + g - root_pos) % g;
    let recv_step = if v == 0 {
        None
    } else {
        Some(v.ilog2() as usize)
    };
    if let Some(s) = recv_step {
        let parent_v = v - (1 << s);
        let parent = group.rank_at((parent_v + root_pos) % g);
        let key = msg_key(gk, seq, lane::TREE_DOWN + sub(s, 0));
        let data = shared.transport.recv_result(rank, parent, key)?;
        assert_eq!(data.len(), buf.len(), "tree broadcast length mismatch");
        buf.copy_from_slice(&data);
    }
    let mut k = recv_step.map(|s| s + 1).unwrap_or(0);
    while v + (1 << k) < g {
        let child_v = v + (1 << k);
        let child = group.rank_at((child_v + root_pos) % g);
        let key = msg_key(gk, seq, lane::TREE_DOWN + sub(k, 0));
        let payload = pooled(shared, buf, stats);
        shared.transport.send(rank, child, key, payload);
        k += 1;
    }
    Ok(())
}

#[cfg(test)]
mod algo_smoke {
    //! Tiny forced-algorithm worlds sized for the miri smoke subset in
    //! CI: every new mailbox lane (RHD, RDAG, TREE_UP, TREE_DOWN) moves
    //! real messages under the interpreter. Correctness at scale lives
    //! in `tests/algo_equivalence.rs`; these only have to be small.

    use crate::algo::{AgAlgo, AlgoPolicy, ArAlgo, BcastAlgo, RsAlgo};
    use crate::comm::{Comm, CommWorld};
    use crate::group::ProcessGroup;
    use std::thread;

    fn run_forced<T: Send + 'static>(
        size: usize,
        policy: AlgoPolicy,
        body: impl Fn(Comm) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let handles: Vec<_> = CommWorld::builder(size)
            .algo(policy)
            .build()
            .into_iter()
            .map(|c| {
                let body = body.clone();
                thread::spawn(move || body(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn rhd_lanes_carry_a_two_rank_all_reduce() {
        let policy = AlgoPolicy {
            force_ar: Some(ArAlgo::Rhd),
            ..AlgoPolicy::default()
        };
        let out = run_forced(2, policy, |c| {
            let g = ProcessGroup::new(vec![0, 1]);
            let mut v = vec![c.rank() as f32; 4];
            c.all_reduce(&g, &mut v);
            v
        });
        assert!(out.iter().all(|v| v == &[1.0; 4]));
    }

    #[test]
    fn tree_lanes_carry_a_three_rank_all_reduce() {
        let policy = AlgoPolicy {
            force_ar: Some(ArAlgo::Tree),
            ..AlgoPolicy::default()
        };
        let out = run_forced(3, policy, |c| {
            let g = ProcessGroup::new(vec![0, 1, 2]);
            let mut v = vec![c.rank() as f32; 2];
            c.all_reduce(&g, &mut v);
            v
        });
        assert!(out.iter().all(|v| v == &[3.0; 2]));
    }

    #[test]
    fn halving_and_doubling_lanes_carry_rs_then_ag() {
        let policy = AlgoPolicy {
            force_rs: Some(RsAlgo::Rh),
            force_ag: Some(AgAlgo::Rd),
            ..AlgoPolicy::default()
        };
        let out = run_forced(2, policy, |c| {
            let g = ProcessGroup::new(vec![0, 1]);
            let mine = c.reduce_scatter(&g, &[1.0, 2.0, 3.0, 4.0]);
            c.all_gather(&g, &mine)
        });
        assert!(out.iter().all(|v| v == &[2.0, 4.0, 6.0, 8.0]));
    }

    #[test]
    fn tree_down_lane_carries_a_broadcast() {
        let policy = AlgoPolicy {
            force_bcast: Some(BcastAlgo::Tree),
            ..AlgoPolicy::default()
        };
        let out = run_forced(3, policy, |c| {
            let g = ProcessGroup::new(vec![0, 1, 2]);
            let mut v = if c.rank() == 1 {
                vec![7.0, 8.0]
            } else {
                vec![0.0; 2]
            };
            c.broadcast(&g, 1, &mut v);
            v
        });
        assert!(out.iter().all(|v| v == &[7.0, 8.0]));
    }
}
