//! Tag-addressed point-to-point transport between ranks.
//!
//! Each rank owns a mailbox: a map from `(source rank, message key)` to a
//! queue of buffers. `send` never blocks (buffered); `recv` blocks until a
//! message with the exact key arrives. Keying messages by a collective-
//! specific tag (rather than relying on FIFO order) is what allows a rank's
//! main thread and its communication worker thread to run *different*
//! collectives between the same rank pairs concurrently without
//! interleaving corruption — the property the overlap optimizations rely
//! on.
//!
//! The transport is also the fault boundary: ranks can be marked dead
//! (receivers waiting on them get [`CommError::PeerLost`] instead of
//! hanging), every blocking receive is bounded by a timeout, and a
//! [`FaultConfig`] can deterministically drop or stall point-to-point
//! messages for fault-injection tests.

use crate::fault::{CommError, FaultConfig, DEFAULT_RECV_TIMEOUT};
use crate::pool::{BufferPool, Payload, PipelineConfig};
use crate::sched::SchedEvent;
use crate::telemetry::{Beats, RankTelemetry};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
#[cfg(not(loom))]
use std::time::Instant;

/// Message key: identifies which logical transfer a buffer belongs to.
/// Built from (group key, per-group sequence number, step within the
/// collective) by the collective implementations.
pub type MsgKey = u128;

/// Why a world died: the first panicking rank and its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonInfo {
    pub origin_rank: usize,
    pub message: String,
}

#[derive(Default)]
struct Slot {
    queues: HashMap<(usize, MsgKey), VecDeque<Payload>>,
}

/// One rank's inbox.
pub struct Mailbox {
    slot: Mutex<Slot>,
    signal: Condvar,
    /// World-wide poison flag, shared by every mailbox of a transport.
    poison: Arc<Mutex<Option<PoisonInfo>>>,
    /// World-wide dead-rank registry (rank → reason), shared likewise.
    dead: Arc<Mutex<HashMap<usize, String>>>,
}

impl Mailbox {
    fn new(
        poison: Arc<Mutex<Option<PoisonInfo>>>,
        dead: Arc<Mutex<HashMap<usize, String>>>,
    ) -> Self {
        Mailbox {
            slot: Mutex::new(Slot::default()),
            signal: Condvar::new(),
            poison,
            dead,
        }
    }

    fn deposit(&self, from: usize, key: MsgKey, data: Payload) {
        let mut slot = self.slot.lock();
        slot.queues.entry((from, key)).or_default().push_back(data);
        self.signal.notify_all();
    }

    fn take(&self, from: usize, key: MsgKey, timeout: Duration) -> Result<Payload, CommError> {
        // Under `--cfg loom` there is no wall clock: waits are untimed so the
        // model checker explores interleavings deterministically, and a
        // protocol that would need the timeout to make progress shows up as
        // a model deadlock instead.
        #[cfg(not(loom))]
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock();
        loop {
            if let Some(info) = self.poison.lock().clone() {
                return Err(CommError::Poisoned(info));
            }
            // Drain queued messages before consulting the dead set: a
            // rank may die *after* sending, and those bytes are valid.
            if let Some(q) = slot.queues.get_mut(&(from, key)) {
                if let Some(data) = q.pop_front() {
                    if q.is_empty() {
                        slot.queues.remove(&(from, key));
                    }
                    return Ok(data);
                }
            }
            if let Some(reason) = self.dead.lock().get(&from).cloned() {
                return Err(CommError::PeerLost {
                    peer: from,
                    detail: reason,
                });
            }
            #[cfg(not(loom))]
            {
                let now = Instant::now();
                if now >= deadline {
                    return Err(CommError::PeerLost {
                        peer: from,
                        detail: format!("recv timed out after {timeout:?}"),
                    });
                }
                self.signal.wait_for(&mut slot, deadline - now);
            }
            #[cfg(loom)]
            {
                let _ = timeout;
                self.signal.wait(&mut slot);
            }
        }
    }
}

/// Consumable fault-injection state (rules are spent as they fire).
#[derive(Default)]
struct FaultRuntime {
    drops: Vec<crate::fault::DropRule>,
    stalls: Vec<crate::fault::StallRule>,
    /// Wall-clock link stalls (loom models never fire them: delivery
    /// happens on a real sleeping thread, which loom cannot schedule).
    #[cfg_attr(loom, allow(dead_code))]
    wall_stalls: Vec<crate::fault::WallStallRule>,
    /// Messages sent per (src, dst) link, counted before drop decisions.
    link_counts: HashMap<(usize, usize), u64>,
}

/// Monotonic world-id source for flight-recorder dump names: every
/// transport in the process gets a distinct id, so dumps from parallel
/// tests never clobber each other.
static NEXT_WORLD_ID: AtomicU64 = AtomicU64::new(1);

/// The transport shared by all ranks of a world.
pub struct Transport {
    /// Mailboxes are behind an `Arc` so wall-stall delivery threads can
    /// outlive the borrow (they capture the vec, not the transport).
    boxes: Arc<Vec<Mailbox>>,
    /// Process-unique world id, baked into flight-recorder dump names.
    id: u64,
    /// Per-rank heartbeat/pending-recv telemetry for the watchdog.
    beats: Beats,
    /// Per-rank crash-surviving event rings.
    #[cfg(not(loom))]
    flight: Vec<Arc<axonn_trace::FlightRecorder>>,
    poison: Arc<Mutex<Option<PoisonInfo>>>,
    dead: Arc<Mutex<HashMap<usize, String>>>,
    faults: Mutex<FaultRuntime>,
    /// Virtual seconds of injected link stall awaiting consumption by
    /// each rank's next blocking collective (timed worlds).
    pending_stall: Vec<Mutex<f64>>,
    recv_timeout: Duration,
    /// World-wide slab pool backing pooled payloads.
    pool: BufferPool,
    /// Segmentation policy for ring pipeline chunks.
    pipeline: PipelineConfig,
    /// Per-rank collective-schedule streams for the static verifier
    /// (`axonn-verify`), present when schedule recording is enabled.
    sched: Option<Vec<Mutex<Vec<SchedEvent>>>>,
    /// Set whenever a typed [`CommError`] is produced anywhere in the
    /// world; an errored run's schedule streams are legitimately
    /// asymmetric, so the teardown verifier skips them.
    saw_error: AtomicBool,
}

impl Transport {
    pub fn new(world_size: usize) -> Arc<Self> {
        Self::with_faults(world_size, FaultConfig::none())
    }

    /// A transport with deterministic fault injection installed.
    pub fn with_faults(world_size: usize, config: FaultConfig) -> Arc<Self> {
        Self::with_opts(world_size, config, PipelineConfig::default())
    }

    /// A transport with fault injection and an explicit chunk-pipeline
    /// policy.
    pub fn with_opts(
        world_size: usize,
        config: FaultConfig,
        pipeline: PipelineConfig,
    ) -> Arc<Self> {
        Self::with_opts_recording(world_size, config, pipeline, false)
    }

    /// A transport with schedule recording switched on or off explicitly
    /// (the world builder decides the default from the build profile and
    /// `AXONN_SCHED_VERIFY`).
    pub(crate) fn with_opts_recording(
        world_size: usize,
        config: FaultConfig,
        pipeline: PipelineConfig,
        record_schedule: bool,
    ) -> Arc<Self> {
        let poison = Arc::new(Mutex::new(None));
        let dead = Arc::new(Mutex::new(HashMap::new()));
        let id = NEXT_WORLD_ID.fetch_add(1, Ordering::Relaxed);
        Arc::new(Transport {
            boxes: Arc::new(
                (0..world_size)
                    .map(|_| Mailbox::new(poison.clone(), dead.clone()))
                    .collect(),
            ),
            id,
            beats: Beats::new(world_size),
            #[cfg(not(loom))]
            flight: (0..world_size)
                .map(|r| Arc::new(axonn_trace::FlightRecorder::new(id, r)))
                .collect(),
            poison,
            dead,
            faults: Mutex::new(FaultRuntime {
                drops: config.drops,
                stalls: config.stalls,
                wall_stalls: config.wall_stalls,
                link_counts: HashMap::new(),
            }),
            pending_stall: (0..world_size).map(|_| Mutex::new(0.0)).collect(),
            recv_timeout: config.recv_timeout.unwrap_or(DEFAULT_RECV_TIMEOUT),
            pool: BufferPool::new(),
            pipeline,
            sched: record_schedule
                .then(|| (0..world_size).map(|_| Mutex::new(Vec::new())).collect()),
            saw_error: AtomicBool::new(false),
        })
    }

    pub fn world_size(&self) -> usize {
        self.boxes.len()
    }

    /// The world's slab pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The world's chunk-pipeline policy.
    pub fn pipeline(&self) -> &PipelineConfig {
        &self.pipeline
    }

    /// Mark the world dead: every rank blocked in (or later entering) a
    /// `recv` panics instead of waiting forever for a peer that will
    /// never send. The first poisoner wins; later calls are ignored so
    /// the original failure is the one reported.
    pub fn poison(&self, origin_rank: usize, message: String) {
        {
            let mut slot = self.poison.lock();
            if slot.is_some() {
                return;
            }
            *slot = Some(PoisonInfo {
                origin_rank,
                message,
            });
        }
        self.wake_all();
    }

    /// The first recorded failure, if the world was poisoned.
    pub fn poison_info(&self) -> Option<PoisonInfo> {
        self.poison.lock().clone()
    }

    /// Panic if the world has been poisoned (used at blocking entry
    /// points that don't go through a mailbox).
    pub fn check_poison(&self) {
        if let Some(info) = self.poison_info() {
            panic!(
                "world poisoned: rank {} panicked: {}",
                info.origin_rank, info.message
            );
        }
    }

    /// Declare `rank` dead without killing the world: receivers blocked
    /// on it (now or later) get [`CommError::PeerLost`] while traffic
    /// between surviving ranks continues. This is the recoverable
    /// counterpart of [`poison`](Self::poison) — the supervisor marks
    /// failed ranks dead so the remaining ranks drain out with typed
    /// errors instead of a world-wide panic.
    pub fn mark_dead(&self, rank: usize, reason: &str) {
        self.dead.lock().insert(rank, reason.to_string());
        self.wake_all();
    }

    /// True if `rank` has been marked dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.lock().contains_key(&rank)
    }

    /// Ranks currently marked dead, with reasons.
    pub fn dead_ranks(&self) -> Vec<(usize, String)> {
        let mut v: Vec<(usize, String)> = self
            .dead
            .lock()
            .iter()
            .map(|(r, m)| (*r, m.clone()))
            .collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }

    fn wake_all(&self) {
        for mb in self.boxes.iter() {
            // Touch each mailbox lock so sleeping receivers observe the
            // flag, then wake them.
            drop(mb.slot.lock());
            mb.signal.notify_all();
        }
    }

    /// Deliver `data` to `dst`'s mailbox under `key`, stamped with the
    /// sender's rank. Never blocks. Subject to injected drop/stall rules.
    /// Accepts anything convertible to a [`Payload`]; forwarding a
    /// received payload is an `Arc` clone, not a copy.
    pub fn send(&self, src: usize, dst: usize, key: MsgKey, data: impl Into<Payload>) {
        let data = data.into();
        debug_assert!(dst < self.boxes.len(), "send to rank {dst} out of world");
        if src < self.beats.size() {
            self.beats.note_send(src, (data.len() * 4) as u64);
        }
        {
            let mut faults = self.faults.lock();
            let count = faults.link_counts.entry((src, dst)).or_insert(0);
            *count += 1;
            let n = *count;
            if let Some(i) = faults
                .drops
                .iter()
                .position(|r| r.src == src && r.dst == dst && r.nth == n)
            {
                faults.drops.remove(i);
                return; // the message is lost on the wire
            }
            if let Some(i) = faults
                .stalls
                .iter()
                .position(|r| r.src == src && r.dst == dst)
            {
                let rule = faults.stalls.remove(i);
                *self.pending_stall[dst].lock() += rule.seconds;
            }
            #[cfg(not(loom))]
            if let Some(i) = faults
                .wall_stalls
                .iter()
                .position(|r| r.src == src && r.dst == dst)
            {
                let rule = faults.wall_stalls.remove(i);
                drop(faults);
                // Hold delivery back in *wall* time: the sender returns
                // immediately (send never blocks) while the receiver
                // stays genuinely parked in `take` until a detached
                // delivery thread wakes up and deposits — what a stalled
                // link looks like to the watchdog.
                let boxes = self.boxes.clone();
                std::thread::Builder::new()
                    .name(format!("axonn-wall-stall-{src}-{dst}"))
                    .spawn(move || {
                        std::thread::sleep(rule.hold);
                        boxes[dst].deposit(src, key, data);
                    })
                    .expect("spawn wall-stall delivery thread");
                return;
            }
        }
        self.boxes[dst].deposit(src, key, data);
    }

    /// Block until a message from `src` with `key` arrives at `dst`.
    ///
    /// # Panics
    /// On poison (legacy message format) or lost peer; the fallible
    /// variant is [`recv_result`](Self::recv_result).
    pub fn recv(&self, dst: usize, src: usize, key: MsgKey) -> Payload {
        crate::fault::unwrap_comm(self.recv_result(dst, src, key))
    }

    /// Block until a message from `src` with `key` arrives at `dst`, or
    /// until `src` is known dead / the recv timeout expires.
    pub fn recv_result(&self, dst: usize, src: usize, key: MsgKey) -> Result<Payload, CommError> {
        debug_assert!(dst < self.boxes.len(), "recv at rank {dst} out of world");
        self.beats.begin_recv(dst, src, key);
        let out = self.boxes[dst].take(src, key, self.recv_timeout);
        self.beats.end_recv(dst);
        if out.is_err() {
            self.note_error();
            #[cfg(not(loom))]
            if let Err(e) = &out {
                self.flight[dst].record(format!(
                    "recv error src={src} lane={} key={key:#x}: {e}",
                    crate::telemetry::lane_name(key)
                ));
            }
        }
        out
    }

    /// Consume the virtual stall seconds accumulated against `rank` by
    /// injected link stalls (returns 0.0 when none are pending).
    pub fn take_stall(&self, rank: usize) -> f64 {
        std::mem::take(&mut *self.pending_stall[rank].lock())
    }

    /// Process-unique id of this world (flight dumps are named by it).
    pub fn world_id(&self) -> u64 {
        self.id
    }

    /// The per-rank heartbeat/pending-recv table (observer side).
    pub fn beats(&self) -> &Beats {
        &self.beats
    }

    /// Observer-side health snapshot of every rank.
    pub fn telemetry(&self) -> Vec<RankTelemetry> {
        self.beats.snapshot_all()
    }

    /// The flight recorder for `rank`.
    #[cfg(not(loom))]
    pub fn flight(&self, rank: usize) -> &Arc<axonn_trace::FlightRecorder> {
        &self.flight[rank]
    }

    /// Dump `rank`'s flight recorder to disk, returning the path.
    #[cfg(not(loom))]
    pub fn dump_flight(&self, rank: usize, reason: &str) -> std::io::Result<std::path::PathBuf> {
        self.flight[rank].dump(reason)
    }

    /// Dump every rank's flight recorder (best effort — ranks whose
    /// dump fails are skipped), returning the written paths.
    #[cfg(not(loom))]
    pub fn dump_flight_all(&self, reason: &str) -> Vec<std::path::PathBuf> {
        self.flight
            .iter()
            .filter_map(|fr| fr.dump(reason).ok())
            .collect()
    }

    /// True when this world records per-rank collective schedules.
    pub fn recording_schedule(&self) -> bool {
        self.sched.is_some()
    }

    /// Append a schedule event to `rank`'s stream (no-op when recording
    /// is off).
    pub(crate) fn record_event(&self, rank: usize, ev: SchedEvent) {
        if let Some(logs) = &self.sched {
            logs[rank].lock().push(ev);
        }
    }

    /// Snapshot of every rank's recorded schedule stream, when recording
    /// is enabled.
    pub fn schedule_streams(&self) -> Option<Vec<Vec<SchedEvent>>> {
        self.sched
            .as_ref()
            .map(|logs| logs.iter().map(|l| l.lock().clone()).collect())
    }

    /// Note that a typed communication error was produced somewhere in
    /// this world (see [`schedule_clean`](Self::schedule_clean)).
    pub(crate) fn note_error(&self) {
        self.saw_error.store(true, Ordering::Relaxed);
    }

    /// True when the recorded schedule streams reflect a fully successful
    /// run: no poison, no dead ranks, no typed communication errors. Only
    /// such streams are required to satisfy the SPMD matching property —
    /// fault-injected or failed runs legally diverge mid-collective.
    pub fn schedule_clean(&self) -> bool {
        self.poison_info().is_none()
            && self.dead.lock().is_empty()
            && !self.saw_error.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DropRule, StallRule};
    use std::thread;

    #[test]
    fn send_then_recv_same_thread() {
        let t = Transport::new(2);
        t.send(0, 1, 7, vec![1.0, 2.0]);
        assert_eq!(t.recv(1, 0, 7), vec![1.0, 2.0]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let t = Transport::new(2);
        let t2 = t.clone();
        let h = thread::spawn(move || t2.recv(1, 0, 9));
        thread::sleep(std::time::Duration::from_millis(20));
        t.send(0, 1, 9, vec![3.5]);
        assert_eq!(h.join().unwrap(), vec![3.5]);
    }

    #[test]
    fn keys_are_independent() {
        let t = Transport::new(2);
        t.send(0, 1, 1, vec![1.0]);
        t.send(0, 1, 2, vec![2.0]);
        // Receive out of send order: keys disambiguate.
        assert_eq!(t.recv(1, 0, 2), vec![2.0]);
        assert_eq!(t.recv(1, 0, 1), vec![1.0]);
    }

    #[test]
    fn same_key_is_fifo() {
        let t = Transport::new(2);
        t.send(0, 1, 5, vec![1.0]);
        t.send(0, 1, 5, vec![2.0]);
        assert_eq!(t.recv(1, 0, 5), vec![1.0]);
        assert_eq!(t.recv(1, 0, 5), vec![2.0]);
    }

    #[test]
    fn senders_are_distinguished() {
        let t = Transport::new(3);
        t.send(1, 2, 5, vec![1.0]);
        t.send(0, 2, 5, vec![2.0]);
        assert_eq!(t.recv(2, 0, 5), vec![2.0]);
        assert_eq!(t.recv(2, 1, 5), vec![1.0]);
    }

    #[test]
    fn poison_wakes_blocked_receiver() {
        let t = Transport::new(2);
        let t2 = t.clone();
        let h = thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t2.recv(1, 0, 9)))
        });
        thread::sleep(std::time::Duration::from_millis(20));
        t.poison(0, "boom".to_string());
        let result = h.join().unwrap();
        let err = result.expect_err("blocked recv must panic after poison");
        let msg = err.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "world poisoned: rank 0 panicked: boom");
        // First poisoner wins.
        t.poison(1, "later".to_string());
        assert_eq!(t.poison_info().unwrap().origin_rank, 0);
    }

    #[test]
    fn mark_dead_wakes_blocked_receiver_with_peer_lost() {
        let t = Transport::new(2);
        let t2 = t.clone();
        let h = thread::spawn(move || t2.recv_result(1, 0, 9));
        thread::sleep(std::time::Duration::from_millis(20));
        t.mark_dead(0, "injected kill");
        let err = h.join().unwrap().expect_err("recv from dead peer");
        assert_eq!(
            err,
            CommError::PeerLost {
                peer: 0,
                detail: "injected kill".into()
            }
        );
        assert!(t.is_dead(0));
        assert_eq!(t.dead_ranks(), vec![(0, "injected kill".to_string())]);
        // Survivor-to-survivor traffic is unaffected.
        t.send(1, 1, 3, vec![4.0]);
        assert_eq!(t.recv(1, 1, 3), vec![4.0]);
    }

    #[test]
    fn messages_sent_before_death_remain_receivable() {
        let t = Transport::new(2);
        t.send(0, 1, 5, vec![1.0]);
        t.mark_dead(0, "late");
        assert_eq!(t.recv_result(1, 0, 5).unwrap(), vec![1.0]);
        assert!(matches!(
            t.recv_result(1, 0, 5),
            Err(CommError::PeerLost { peer: 0, .. })
        ));
    }

    #[test]
    fn recv_times_out_as_peer_lost() {
        let t = Transport::with_faults(
            2,
            FaultConfig::none().with_recv_timeout(Duration::from_millis(30)),
        );
        let start = Instant::now();
        let err = t.recv_result(1, 0, 9).expect_err("must time out");
        assert!(start.elapsed() >= Duration::from_millis(25));
        match err {
            CommError::PeerLost { peer, detail } => {
                assert_eq!(peer, 0);
                assert!(detail.contains("timed out"), "detail: {detail}");
            }
            other => panic!("expected PeerLost, got {other:?}"),
        }
    }

    #[test]
    fn injected_drop_loses_exactly_one_message() {
        let t = Transport::with_faults(
            2,
            FaultConfig::none()
                .with_drop(DropRule {
                    src: 0,
                    dst: 1,
                    nth: 2,
                })
                .with_recv_timeout(Duration::from_millis(30)),
        );
        t.send(0, 1, 1, vec![1.0]); // 1st: delivered
        t.send(0, 1, 2, vec![2.0]); // 2nd: dropped
        t.send(0, 1, 3, vec![3.0]); // 3rd: delivered
        assert_eq!(t.recv(1, 0, 1), vec![1.0]);
        assert_eq!(t.recv(1, 0, 3), vec![3.0]);
        assert!(matches!(
            t.recv_result(1, 0, 2),
            Err(CommError::PeerLost { peer: 0, .. })
        ));
    }

    #[test]
    fn injected_stall_accrues_to_receiver() {
        let t = Transport::with_faults(
            2,
            FaultConfig::none().with_stall(StallRule {
                src: 0,
                dst: 1,
                seconds: 2.5,
            }),
        );
        assert_eq!(t.take_stall(1), 0.0);
        t.send(0, 1, 1, vec![1.0]);
        t.send(0, 1, 2, vec![2.0]); // rule already consumed
        assert_eq!(t.take_stall(1), 2.5);
        assert_eq!(t.take_stall(1), 0.0);
        assert_eq!(t.take_stall(0), 0.0);
    }

    #[test]
    fn forwarded_payload_shares_storage() {
        // A ring rank forwarding a received chunk to its successor must
        // not copy: the same slab sits in both mailboxes.
        let t = Transport::new(3);
        let (p, _) = crate::pool::Payload::copy_pooled(t.pool(), &[1.0, 2.0]);
        t.send(0, 1, 7, p);
        let got = t.recv(1, 0, 7);
        let ptr = got.as_slice().as_ptr();
        t.send(1, 2, 7, got.clone());
        let fwd = t.recv(2, 1, 7);
        assert_eq!(fwd.as_slice().as_ptr(), ptr, "forwarding must be zero-copy");
        assert_eq!(fwd, vec![1.0, 2.0]);
    }

    #[test]
    fn many_threads_stress() {
        let n = 8;
        let t = Transport::new(n);
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let t = t.clone();
                thread::spawn(move || {
                    // Everyone sends its rank to everyone, then receives all.
                    for dst in 0..n {
                        t.send(r, dst, 100, vec![r as f32]);
                    }
                    let mut sum = 0.0;
                    for src in 0..n {
                        sum += t.recv(r, src, 100)[0];
                    }
                    sum
                })
            })
            .collect();
        let expect = (0..n).map(|x| x as f32).sum::<f32>();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
