//! Tag-addressed point-to-point transport between ranks.
//!
//! Each rank owns a mailbox: a map from `(source rank, message key)` to a
//! queue of buffers. `send` never blocks (buffered); `recv` blocks until a
//! message with the exact key arrives. Keying messages by a collective-
//! specific tag (rather than relying on FIFO order) is what allows a rank's
//! main thread and its communication worker thread to run *different*
//! collectives between the same rank pairs concurrently without
//! interleaving corruption — the property the overlap optimizations rely
//! on.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Message key: identifies which logical transfer a buffer belongs to.
/// Built from (group key, per-group sequence number, step within the
/// collective) by the collective implementations.
pub type MsgKey = u128;

/// Why a world died: the first panicking rank and its panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonInfo {
    pub origin_rank: usize,
    pub message: String,
}

#[derive(Default)]
struct Slot {
    queues: HashMap<(usize, MsgKey), VecDeque<Vec<f32>>>,
}

/// One rank's inbox.
pub struct Mailbox {
    slot: Mutex<Slot>,
    signal: Condvar,
    /// World-wide poison flag, shared by every mailbox of a transport.
    poison: Arc<Mutex<Option<PoisonInfo>>>,
}

impl Mailbox {
    fn new(poison: Arc<Mutex<Option<PoisonInfo>>>) -> Self {
        Mailbox {
            slot: Mutex::new(Slot::default()),
            signal: Condvar::new(),
            poison,
        }
    }

    fn deposit(&self, from: usize, key: MsgKey, data: Vec<f32>) {
        let mut slot = self.slot.lock();
        slot.queues.entry((from, key)).or_default().push_back(data);
        self.signal.notify_all();
    }

    fn take(&self, from: usize, key: MsgKey) -> Vec<f32> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(info) = self.poison.lock().clone() {
                panic!(
                    "world poisoned: rank {} panicked: {}",
                    info.origin_rank, info.message
                );
            }
            if let Some(q) = slot.queues.get_mut(&(from, key)) {
                if let Some(data) = q.pop_front() {
                    if q.is_empty() {
                        slot.queues.remove(&(from, key));
                    }
                    return data;
                }
            }
            self.signal.wait(&mut slot);
        }
    }
}

/// The transport shared by all ranks of a world.
pub struct Transport {
    boxes: Vec<Mailbox>,
    poison: Arc<Mutex<Option<PoisonInfo>>>,
}

impl Transport {
    pub fn new(world_size: usize) -> Arc<Self> {
        let poison = Arc::new(Mutex::new(None));
        Arc::new(Transport {
            boxes: (0..world_size)
                .map(|_| Mailbox::new(poison.clone()))
                .collect(),
            poison,
        })
    }

    pub fn world_size(&self) -> usize {
        self.boxes.len()
    }

    /// Mark the world dead: every rank blocked in (or later entering) a
    /// `recv` panics instead of waiting forever for a peer that will
    /// never send. The first poisoner wins; later calls are ignored so
    /// the original failure is the one reported.
    pub fn poison(&self, origin_rank: usize, message: String) {
        {
            let mut slot = self.poison.lock();
            if slot.is_some() {
                return;
            }
            *slot = Some(PoisonInfo {
                origin_rank,
                message,
            });
        }
        for mb in &self.boxes {
            // Touch each mailbox lock so sleeping receivers observe the
            // flag, then wake them.
            drop(mb.slot.lock());
            mb.signal.notify_all();
        }
    }

    /// The first recorded failure, if the world was poisoned.
    pub fn poison_info(&self) -> Option<PoisonInfo> {
        self.poison.lock().clone()
    }

    /// Panic if the world has been poisoned (used at blocking entry
    /// points that don't go through a mailbox).
    pub fn check_poison(&self) {
        if let Some(info) = self.poison_info() {
            panic!(
                "world poisoned: rank {} panicked: {}",
                info.origin_rank, info.message
            );
        }
    }

    /// Deliver `data` to `dst`'s mailbox under `key`, stamped with the
    /// sender's rank. Never blocks.
    pub fn send(&self, src: usize, dst: usize, key: MsgKey, data: Vec<f32>) {
        debug_assert!(dst < self.boxes.len(), "send to rank {dst} out of world");
        self.boxes[dst].deposit(src, key, data);
    }

    /// Block until a message from `src` with `key` arrives at `dst`.
    pub fn recv(&self, dst: usize, src: usize, key: MsgKey) -> Vec<f32> {
        debug_assert!(dst < self.boxes.len(), "recv at rank {dst} out of world");
        self.boxes[dst].take(src, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv_same_thread() {
        let t = Transport::new(2);
        t.send(0, 1, 7, vec![1.0, 2.0]);
        assert_eq!(t.recv(1, 0, 7), vec![1.0, 2.0]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let t = Transport::new(2);
        let t2 = t.clone();
        let h = thread::spawn(move || t2.recv(1, 0, 9));
        thread::sleep(std::time::Duration::from_millis(20));
        t.send(0, 1, 9, vec![3.5]);
        assert_eq!(h.join().unwrap(), vec![3.5]);
    }

    #[test]
    fn keys_are_independent() {
        let t = Transport::new(2);
        t.send(0, 1, 1, vec![1.0]);
        t.send(0, 1, 2, vec![2.0]);
        // Receive out of send order: keys disambiguate.
        assert_eq!(t.recv(1, 0, 2), vec![2.0]);
        assert_eq!(t.recv(1, 0, 1), vec![1.0]);
    }

    #[test]
    fn same_key_is_fifo() {
        let t = Transport::new(2);
        t.send(0, 1, 5, vec![1.0]);
        t.send(0, 1, 5, vec![2.0]);
        assert_eq!(t.recv(1, 0, 5), vec![1.0]);
        assert_eq!(t.recv(1, 0, 5), vec![2.0]);
    }

    #[test]
    fn senders_are_distinguished() {
        let t = Transport::new(3);
        t.send(1, 2, 5, vec![1.0]);
        t.send(0, 2, 5, vec![2.0]);
        assert_eq!(t.recv(2, 0, 5), vec![2.0]);
        assert_eq!(t.recv(2, 1, 5), vec![1.0]);
    }

    #[test]
    fn poison_wakes_blocked_receiver() {
        let t = Transport::new(2);
        let t2 = t.clone();
        let h = thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t2.recv(1, 0, 9)))
        });
        thread::sleep(std::time::Duration::from_millis(20));
        t.poison(0, "boom".to_string());
        let result = h.join().unwrap();
        let err = result.expect_err("blocked recv must panic after poison");
        let msg = err.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "world poisoned: rank 0 panicked: boom");
        // First poisoner wins.
        t.poison(1, "later".to_string());
        assert_eq!(t.poison_info().unwrap().origin_rank, 0);
    }

    #[test]
    fn many_threads_stress() {
        let n = 8;
        let t = Transport::new(n);
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let t = t.clone();
                thread::spawn(move || {
                    // Everyone sends its rank to everyone, then receives all.
                    for dst in 0..n {
                        t.send(r, dst, 100, vec![r as f32]);
                    }
                    let mut sum = 0.0;
                    for src in 0..n {
                        sum += t.recv(r, src, 100)[0];
                    }
                    sum
                })
            })
            .collect();
        let expect = (0..n).map(|x| x as f32).sum::<f32>();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
