//! Shared-memory collective communication for the AxoNN-rs correctness
//! plane.
//!
//! This crate is the stand-in for NCCL / RCCL: a *world* of ranks (one OS
//! thread each, spawned by `axonn-exec`) exchanging `f32` buffers through a
//! tag-addressed mailbox, with the classic **ring** implementations of
//! all-gather, reduce-scatter, all-reduce (reduce-scatter + all-gather, as
//! in Rabenseifner) and broadcast over arbitrary *process groups* —
//! exactly Assumption-1 of the paper's performance model. Non-blocking
//! variants run on a per-rank communication worker thread and return
//! handles, which is what lets `axonn-core` implement the paper's OAR /
//! ORS / OAG overlap optimizations with real concurrency semantics.
//!
//! Every rank also carries a **virtual clock** advanced by a pluggable
//! [`CostModel`] on compute and communication, so even small functional
//! runs report simulated times consistent with the analytical plane in
//! `axonn-sim`.

pub mod algo;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod fold;
pub mod group;
pub mod mailbox;
pub mod nonblocking;
pub mod pool;
pub mod reference;
pub mod sched;
pub mod telemetry;

pub use algo::{AgAlgo, AlgoPolicy, ArAlgo, BcastAlgo, RsAlgo};
pub use comm::{Comm, CommWorld, ReduceOp, WorldBuilder};
pub use cost::{CollectiveKind, CostModel, NullCost, RingCostModel};
pub use fault::{
    CommError, DropRule, FailureKind, FailureRecord, FaultConfig, InjectedKill, StallRule,
    WallStallRule, DEFAULT_RECV_TIMEOUT,
};
pub use group::ProcessGroup;
pub use mailbox::PoisonInfo;
pub use nonblocking::{AsyncHandle, AsyncOp};
pub use pool::{BufferPool, Payload, PipelineConfig, PoolStats};
pub use sched::{SchedEvent, SchedKind, SchedOp};
pub use telemetry::{lane_name, Beats, PendingRecv, RankTelemetry};
