//! Message-size-aware collective algorithm selection.
//!
//! The transport keeps the chunk-pipelined pooled **ring** for large
//! payloads (bandwidth-optimal: `(g-1)/g · n` bytes per rank and
//! `2(g-1)` latency terms for all-reduce) and switches to
//! latency-optimal algorithms below per-collective thresholds:
//!
//! * **binomial tree** all-reduce / broadcast — `⌈log2 g⌉` hops, any
//!   group size, best for tiny payloads where the α term dominates;
//! * **recursive halving/doubling** all-reduce and recursive-halving
//!   reduce-scatter / recursive-doubling all-gather — `⌈log2 g⌉` steps
//!   at ring-equal volume, power-of-two groups only, best for small and
//!   medium payloads.
//!
//! Selection is a pure function of `(element count, group size,
//! policy)`, so the execution plane, the simulator mirror
//! (`axonn-sim`), the analytic cost curves (`axonn-perfmodel`), and the
//! schedule verifier (`axonn-verify`) all agree on which algorithm ran.
//! The policy is resolved once per world from [`AlgoPolicy::from_env`]
//! (`AXONN_COLL_ALGO`) unless overridden on the builder, so every rank
//! of a world selects identically.

/// Algorithm for an all-reduce of `n` elements over `g` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArAlgo {
    /// Rabenseifner ring reduce-scatter + ring all-gather, chunk
    /// pipelined through the buffer pool. `2(g-1)` α, `2(g-1)/g·n` β.
    Ring,
    /// Recursive halving/doubling in place. `2⌈log2 g⌉` α at the same
    /// `2(g-1)/g·n` β volume as the ring; power-of-two groups only.
    Rhd,
    /// Binomial-tree reduce to rank 0 + binomial-tree broadcast.
    /// `2⌈log2 g⌉` α but `2⌈log2 g⌉·n` β; any group size.
    Tree,
}

/// Algorithm for a reduce-scatter of `n` total elements over `g` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsAlgo {
    /// Ring reduce-scatter: `(g-1)` α, `(g-1)/g·n` β.
    Ring,
    /// Recursive halving: `⌈log2 g⌉` α at ring-equal volume;
    /// power-of-two groups only.
    Rh,
}

/// Algorithm for an all-gather where each rank contributes `n` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgAlgo {
    /// Ring all-gather: `(g-1)` α, `(g-1)·n` β per rank.
    Ring,
    /// Recursive doubling: `⌈log2 g⌉` α at ring-equal volume;
    /// power-of-two groups only.
    Rd,
}

/// Algorithm for a broadcast of `n` elements over `g` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Pipelined chain from the root: `(g-1)` α on the critical path.
    Chain,
    /// Binomial tree: `⌈log2 g⌉` α, any group size.
    Tree,
}

/// Per-collective thresholds (in f32 **elements**) plus optional hard
/// overrides, resolved once per world. Fields are public so tests can
/// build policies that pin a specific algorithm on either side of a
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoPolicy {
    /// All-reduce payloads up to this many elements use the binomial
    /// tree (any group size).
    pub ar_tree_max: usize,
    /// All-reduce payloads up to this many elements use recursive
    /// halving/doubling when the group is a power of two.
    pub ar_rhd_max: usize,
    /// Reduce-scatter inputs up to this many total elements use
    /// recursive halving when the group is a power of two.
    pub rs_rh_max: usize,
    /// All-gathers contributing up to this many elements per rank use
    /// recursive doubling when the group is a power of two.
    pub ag_rd_max: usize,
    /// Broadcast payloads up to this many elements use the binomial
    /// tree (any group size).
    pub bcast_tree_max: usize,
    /// Hard override for all-reduce (falls back to ring when the forced
    /// algorithm is not legal for the group size).
    pub force_ar: Option<ArAlgo>,
    /// Hard override for reduce-scatter.
    pub force_rs: Option<RsAlgo>,
    /// Hard override for all-gather.
    pub force_ag: Option<AgAlgo>,
    /// Hard override for broadcast.
    pub force_bcast: Option<BcastAlgo>,
}

impl Default for AlgoPolicy {
    fn default() -> Self {
        AlgoPolicy {
            // A 1 KiB-ish payload is pure latency; below this the tree's
            // smaller hop count beats everything even at log2(g)·n volume.
            ar_tree_max: 1024,
            // Up to 4M elements (16 MiB) halving/doubling wins on hop
            // count at ring-equal volume; past that the ring's chunk
            // pipelining overlaps segments and takes over.
            ar_rhd_max: 1 << 22,
            rs_rh_max: 1 << 18,
            ag_rd_max: 1 << 18,
            bcast_tree_max: 4096,
            force_ar: None,
            force_rs: None,
            force_ag: None,
            force_bcast: None,
        }
    }
}

impl AlgoPolicy {
    /// Policy that pins every collective to the ring/chain algorithms —
    /// the pre-selection behaviour. Used by bitwise-equivalence suites
    /// that prove the pooled pipelined ring against the naive reference.
    pub fn ring_only() -> Self {
        AlgoPolicy {
            force_ar: Some(ArAlgo::Ring),
            force_rs: Some(RsAlgo::Ring),
            force_ag: Some(AgAlgo::Ring),
            force_bcast: Some(BcastAlgo::Chain),
            ..AlgoPolicy::default()
        }
    }

    /// Read the policy from `AXONN_COLL_ALGO`. Accepts a global force
    /// (`auto` | `ring` | `tree` | `rhd`) or comma-separated
    /// per-collective overrides (`all_reduce=tree,all_gather=ring`,
    /// keys `all_reduce` / `reduce_scatter` / `all_gather` /
    /// `broadcast`). Unknown tokens are ignored so an A/B harness can
    /// never brick a run.
    pub fn from_env() -> Self {
        match std::env::var("AXONN_COLL_ALGO") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => AlgoPolicy::default(),
        }
    }

    /// Pure parser behind [`AlgoPolicy::from_env`] (tests call this
    /// directly; env vars are process-global and racy under the
    /// parallel test harness).
    pub fn parse(spec: &str) -> Self {
        let mut p = AlgoPolicy::default();
        match spec.trim() {
            "" | "auto" => return p,
            "ring" => return AlgoPolicy::ring_only(),
            "tree" => {
                p.force_ar = Some(ArAlgo::Tree);
                p.force_bcast = Some(BcastAlgo::Tree);
                return p;
            }
            "rhd" => {
                p.force_ar = Some(ArAlgo::Rhd);
                p.force_rs = Some(RsAlgo::Rh);
                p.force_ag = Some(AgAlgo::Rd);
                return p;
            }
            _ => {}
        }
        for part in spec.split(',') {
            let Some((key, val)) = part.split_once('=') else {
                continue;
            };
            match (key.trim(), val.trim()) {
                ("all_reduce", "ring") => p.force_ar = Some(ArAlgo::Ring),
                ("all_reduce", "rhd") => p.force_ar = Some(ArAlgo::Rhd),
                ("all_reduce", "tree") => p.force_ar = Some(ArAlgo::Tree),
                ("all_reduce", "auto") => p.force_ar = None,
                ("reduce_scatter", "ring") => p.force_rs = Some(RsAlgo::Ring),
                ("reduce_scatter", "rh") | ("reduce_scatter", "rhd") => {
                    p.force_rs = Some(RsAlgo::Rh)
                }
                ("reduce_scatter", "auto") => p.force_rs = None,
                ("all_gather", "ring") => p.force_ag = Some(AgAlgo::Ring),
                ("all_gather", "rd") | ("all_gather", "rhd") => p.force_ag = Some(AgAlgo::Rd),
                ("all_gather", "auto") => p.force_ag = None,
                ("broadcast", "ring") | ("broadcast", "chain") => {
                    p.force_bcast = Some(BcastAlgo::Chain)
                }
                ("broadcast", "tree") => p.force_bcast = Some(BcastAlgo::Tree),
                ("broadcast", "auto") => p.force_bcast = None,
                _ => {}
            }
        }
        p
    }

    /// Pick the all-reduce algorithm for `elems` elements over `g` ranks.
    pub fn all_reduce(&self, elems: usize, g: usize) -> ArAlgo {
        if let Some(f) = self.force_ar {
            return if f == ArAlgo::Rhd && !g.is_power_of_two() {
                ArAlgo::Ring
            } else {
                f
            };
        }
        if elems <= self.ar_tree_max {
            ArAlgo::Tree
        } else if g.is_power_of_two() && elems <= self.ar_rhd_max {
            ArAlgo::Rhd
        } else {
            ArAlgo::Ring
        }
    }

    /// Pick the reduce-scatter algorithm for `elems` total input
    /// elements over `g` ranks. Divisibility (`elems % g == 0`) is a
    /// hard requirement of *both* algorithms, checked by the transport,
    /// so it is not a selection criterion.
    pub fn reduce_scatter(&self, elems: usize, g: usize) -> RsAlgo {
        if let Some(f) = self.force_rs {
            return if f == RsAlgo::Rh && !g.is_power_of_two() {
                RsAlgo::Ring
            } else {
                f
            };
        }
        if g.is_power_of_two() && elems <= self.rs_rh_max {
            RsAlgo::Rh
        } else {
            RsAlgo::Ring
        }
    }

    /// Pick the all-gather algorithm when each rank contributes
    /// `contributed` elements over `g` ranks.
    pub fn all_gather(&self, contributed: usize, g: usize) -> AgAlgo {
        if let Some(f) = self.force_ag {
            return if f == AgAlgo::Rd && !g.is_power_of_two() {
                AgAlgo::Ring
            } else {
                f
            };
        }
        if g.is_power_of_two() && contributed <= self.ag_rd_max {
            AgAlgo::Rd
        } else {
            AgAlgo::Ring
        }
    }

    /// Pick the broadcast algorithm for `elems` elements over `g` ranks.
    pub fn broadcast(&self, elems: usize, g: usize) -> BcastAlgo {
        let _ = g;
        if let Some(f) = self.force_bcast {
            return f;
        }
        if elems <= self.bcast_tree_max {
            BcastAlgo::Tree
        } else {
            BcastAlgo::Chain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_select_by_size_and_group() {
        let p = AlgoPolicy::default();
        assert_eq!(p.all_reduce(256, 4), ArAlgo::Tree);
        assert_eq!(p.all_reduce(1024, 4), ArAlgo::Tree, "threshold inclusive");
        assert_eq!(p.all_reduce(1025, 4), ArAlgo::Rhd);
        assert_eq!(p.all_reduce(1 << 20, 4), ArAlgo::Rhd);
        assert_eq!(p.all_reduce(1 << 22, 4), ArAlgo::Rhd, "threshold inclusive");
        assert_eq!(p.all_reduce((1 << 22) + 1, 4), ArAlgo::Ring);
        // Non-power-of-two groups: tree still legal, rhd is not.
        assert_eq!(p.all_reduce(256, 3), ArAlgo::Tree);
        assert_eq!(p.all_reduce(1 << 20, 3), ArAlgo::Ring);
        assert_eq!(p.reduce_scatter(1 << 16, 4), RsAlgo::Rh);
        assert_eq!(p.reduce_scatter((1 << 18) + 4, 4), RsAlgo::Ring);
        assert_eq!(p.reduce_scatter(1 << 16, 6), RsAlgo::Ring);
        assert_eq!(p.all_gather(1 << 10, 8), AgAlgo::Rd);
        assert_eq!(p.all_gather((1 << 18) + 1, 8), AgAlgo::Ring);
        assert_eq!(p.all_gather(1 << 10, 5), AgAlgo::Ring);
        assert_eq!(p.broadcast(4096, 4), BcastAlgo::Tree);
        assert_eq!(p.broadcast(4097, 4), BcastAlgo::Chain);
    }

    #[test]
    fn ring_only_pins_every_collective() {
        let p = AlgoPolicy::ring_only();
        assert_eq!(p.all_reduce(1, 4), ArAlgo::Ring);
        assert_eq!(p.reduce_scatter(4, 4), RsAlgo::Ring);
        assert_eq!(p.all_gather(1, 4), AgAlgo::Ring);
        assert_eq!(p.broadcast(1, 4), BcastAlgo::Chain);
    }

    #[test]
    fn forced_algorithms_fall_back_when_illegal() {
        let p = AlgoPolicy {
            force_ar: Some(ArAlgo::Rhd),
            force_rs: Some(RsAlgo::Rh),
            force_ag: Some(AgAlgo::Rd),
            ..AlgoPolicy::default()
        };
        assert_eq!(p.all_reduce(1 << 20, 8), ArAlgo::Rhd);
        assert_eq!(p.all_reduce(1 << 20, 6), ArAlgo::Ring, "rhd needs pow2");
        assert_eq!(p.reduce_scatter(12, 6), RsAlgo::Ring);
        assert_eq!(p.all_gather(2, 6), AgAlgo::Ring);
    }

    #[test]
    fn parse_global_forces() {
        assert_eq!(AlgoPolicy::parse("auto"), AlgoPolicy::default());
        assert_eq!(AlgoPolicy::parse(""), AlgoPolicy::default());
        assert_eq!(AlgoPolicy::parse("ring"), AlgoPolicy::ring_only());
        let tree = AlgoPolicy::parse("tree");
        assert_eq!(tree.force_ar, Some(ArAlgo::Tree));
        assert_eq!(tree.force_bcast, Some(BcastAlgo::Tree));
        assert_eq!(tree.force_rs, None);
        let rhd = AlgoPolicy::parse("rhd");
        assert_eq!(rhd.force_ar, Some(ArAlgo::Rhd));
        assert_eq!(rhd.force_rs, Some(RsAlgo::Rh));
        assert_eq!(rhd.force_ag, Some(AgAlgo::Rd));
    }

    #[test]
    fn parse_per_collective_overrides() {
        let p = AlgoPolicy::parse("all_reduce=tree,all_gather=ring,broadcast=chain");
        assert_eq!(p.force_ar, Some(ArAlgo::Tree));
        assert_eq!(p.force_ag, Some(AgAlgo::Ring));
        assert_eq!(p.force_bcast, Some(BcastAlgo::Chain));
        assert_eq!(p.force_rs, None);
        // Unknown tokens never brick a run.
        assert_eq!(AlgoPolicy::parse("bogus"), AlgoPolicy::default());
        assert_eq!(AlgoPolicy::parse("all_reduce=warp9"), AlgoPolicy::default());
    }
}
