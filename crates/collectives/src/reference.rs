//! Reference ring collectives: the seed transport's exact algorithms,
//! kept as the oracle the pooled/pipelined implementations are proven
//! bit-identical against.
//!
//! These are deliberately naive — one fresh `Vec` per hop, no pooling,
//! no segmentation, a star fan-out broadcast — and charge no virtual
//! time. They run on the same transport (so they compose with live
//! worlds; each call claims its own sequence numbers) and exist for the
//! equivalence property tests and as executable documentation of the
//! baseline the pooled transport replaced.

use crate::comm::{lane, msg_key, Comm, ReduceOp};
use crate::fault::{unwrap_comm, CommError};
use crate::group::ProcessGroup;

/// Serial replay of the recursive-halving reduce-scatter fold order:
/// given every member's input buffer (group-position order), produce the
/// shard each member ends up with, folding exactly as the parallel
/// algorithm does (`own = op(own, incoming)` on the kept half at every
/// step, partners snapshotted pre-step). Bitwise oracle for
/// `reduce_scatter` under `RsAlgo::Rh`. Power-of-two member counts only;
/// buffer lengths must divide by the group size.
pub fn replay_rh_reduce_scatter(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<Vec<f32>> {
    let g = inputs.len();
    if g == 1 {
        return vec![inputs[0].clone()];
    }
    assert!(g.is_power_of_two(), "recursive halving needs pow2 groups");
    let n = inputs[0].len();
    assert!(n.is_multiple_of(g), "length must divide by group size");
    let chunk = n / g;
    let mut work: Vec<Vec<f32>> = inputs.to_vec();
    // Per-position window of chunk indices still being accumulated:
    // [lo, lo+span) — span is uniform across positions at each step.
    let mut lo = vec![0usize; g];
    let mut span = g;
    while span > 1 {
        let half = span / 2;
        let snapshot = work.clone();
        for pos in 0..g {
            let mid = lo[pos] + half;
            let in_lower = pos < mid;
            let keep = if in_lower {
                lo[pos] * chunk..mid * chunk
            } else {
                mid * chunk..(lo[pos] + span) * chunk
            };
            // The partner's send range is exactly this rank's keep range,
            // read from the partner's pre-step buffer.
            let partner = if in_lower { pos + half } else { pos - half };
            for (w, d) in work[pos][keep.clone()]
                .iter_mut()
                .zip(snapshot[partner][keep.clone()].iter())
            {
                *w = op.combine(*w, *d);
            }
            if !in_lower {
                lo[pos] = mid;
            }
        }
        span = half;
    }
    (0..g)
        .map(|pos| work[pos][pos * chunk..(pos + 1) * chunk].to_vec())
        .collect()
}

/// Serial replay of the recursive halving/doubling all-reduce: pad with
/// the operator identity, [`replay_rh_reduce_scatter`], concatenate the
/// shards (the recursive-doubling all-gather is pure data movement),
/// truncate. Bitwise oracle for `all_reduce` under `ArAlgo::Rhd`.
pub fn replay_rhd_all_reduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<f32> {
    let g = inputs.len();
    if g == 1 {
        return inputs[0].clone();
    }
    let n = inputs[0].len();
    let padded = n.div_ceil(g) * g;
    let pad = match op {
        ReduceOp::Sum => 0.0,
        ReduceOp::Max => f32::NEG_INFINITY,
    };
    let work: Vec<Vec<f32>> = inputs
        .iter()
        .map(|b| {
            let mut w = b.clone();
            w.resize(padded, pad);
            w
        })
        .collect();
    let mut full = replay_rh_reduce_scatter(&work, op).concat();
    full.truncate(n);
    full
}

/// Serial replay of the binomial-tree all-reduce fold order: at step `s`
/// (mask `2^s`) every surviving position `p` (with `p mod 2^(s+1) == 0`)
/// folds the accumulated buffer of `p + 2^s` when that position exists,
/// as `own = op(own, incoming)`. The tree broadcast back down copies the
/// root's buffer verbatim, so the root's accumulation is the result on
/// every member. Bitwise oracle for `all_reduce` under `ArAlgo::Tree`;
/// any group size.
pub fn replay_tree_all_reduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<f32> {
    let g = inputs.len();
    let mut acc: Vec<Vec<f32>> = inputs.to_vec();
    let mut mask = 1usize;
    while mask < g {
        for pos in (0..g).step_by(mask * 2) {
            if pos + mask < g {
                let (low, high) = acc.split_at_mut(pos + mask);
                for (w, d) in low[pos].iter_mut().zip(high[0].iter()) {
                    *w = op.combine(*w, *d);
                }
            }
        }
        mask <<= 1;
    }
    acc.swap_remove(0)
}

impl Comm {
    /// Seed-style ring all-gather (unpooled, unsegmented). Returns all
    /// members' shards concatenated in group-position order.
    pub fn reference_all_gather(&self, group: &ProcessGroup, shard: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_reference_all_gather(group, shard))
    }

    /// Fallible [`reference_all_gather`](Self::reference_all_gather).
    pub fn try_reference_all_gather(
        &self,
        group: &ProcessGroup,
        shard: &[f32],
    ) -> Result<Vec<f32>, CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(shard.to_vec());
        }
        let seq = self.next_seq(group);
        let shared = &self.shared;
        let rank = self.rank();
        let gk = group.key();
        let pos = group.position_of(rank);
        let next = group.next_of(rank);
        let prev = group.prev_of(rank);
        let chunk = shard.len();
        let mut out = vec![0.0f32; chunk * g];
        out[pos * chunk..(pos + 1) * chunk].copy_from_slice(shard);
        for s in 0..g - 1 {
            let send_c = (pos + g - s) % g;
            shared.transport.send(
                rank,
                next,
                msg_key(gk, seq, lane::AG + s as u32),
                out[send_c * chunk..(send_c + 1) * chunk].to_vec(),
            );
            let recv_c = (pos + g - s - 1) % g;
            let data =
                shared
                    .transport
                    .recv_result(rank, prev, msg_key(gk, seq, lane::AG + s as u32))?;
            assert_eq!(data.len(), chunk, "all-gather shard length mismatch");
            out[recv_c * chunk..(recv_c + 1) * chunk].copy_from_slice(&data);
        }
        Ok(out)
    }

    /// Seed-style ring reduce-scatter (sum). The buffer length must be
    /// divisible by the group size.
    pub fn reference_reduce_scatter(&self, group: &ProcessGroup, buf: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_reference_reduce_scatter(group, buf, ReduceOp::Sum))
    }

    /// Fallible reference reduce-scatter with an explicit operator.
    pub fn try_reference_reduce_scatter(
        &self,
        group: &ProcessGroup,
        buf: &[f32],
        op: ReduceOp,
    ) -> Result<Vec<f32>, CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(buf.to_vec());
        }
        if !buf.len().is_multiple_of(g) {
            return Err(CommError::InvalidBuffer {
                op: "reduce_scatter",
                detail: format!("length {} not divisible by group size {g}", buf.len()),
            });
        }
        let seq = self.next_seq(group);
        let shared = &self.shared;
        let rank = self.rank();
        let gk = group.key();
        let pos = group.position_of(rank);
        let next = group.next_of(rank);
        let prev = group.prev_of(rank);
        let chunk = buf.len() / g;
        let mut work = buf.to_vec();
        for s in 0..g - 1 {
            let send_c = (pos + 2 * g - s - 1) % g;
            shared.transport.send(
                rank,
                next,
                msg_key(gk, seq, lane::RS + s as u32),
                work[send_c * chunk..(send_c + 1) * chunk].to_vec(),
            );
            let recv_c = (pos + 2 * g - s - 2) % g;
            let data =
                shared
                    .transport
                    .recv_result(rank, prev, msg_key(gk, seq, lane::RS + s as u32))?;
            assert_eq!(data.len(), chunk, "reduce-scatter chunk length mismatch");
            for (w, d) in work[recv_c * chunk..(recv_c + 1) * chunk]
                .iter_mut()
                .zip(data.iter())
            {
                *w = op.combine(*w, *d);
            }
        }
        Ok(work[pos * chunk..(pos + 1) * chunk].to_vec())
    }

    /// Seed-style in-place sum all-reduce: pad, reduce-scatter,
    /// all-gather, truncate — identical arithmetic pairing to the pooled
    /// path, which is exactly what the equivalence tests assert.
    pub fn reference_all_reduce(&self, group: &ProcessGroup, buf: &mut [f32]) {
        unwrap_comm(self.try_reference_all_reduce(group, buf, ReduceOp::Sum))
    }

    /// Fallible reference all-reduce with an explicit operator.
    pub fn try_reference_all_reduce(
        &self,
        group: &ProcessGroup,
        buf: &mut [f32],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(());
        }
        let n = buf.len();
        let padded = n.div_ceil(g) * g;
        let mut work = buf.to_vec();
        let pad = match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
        };
        work.resize(padded, pad);
        let mine = self.try_reference_reduce_scatter(group, &work, op)?;
        let full = self.try_reference_all_gather(group, &mine)?;
        buf.copy_from_slice(&full[..n]);
        Ok(())
    }

    /// Seed-style broadcast: the root sends one full copy of the buffer
    /// to every other member (star fan-out).
    pub fn reference_broadcast(&self, group: &ProcessGroup, root_pos: usize, buf: &mut [f32]) {
        unwrap_comm(self.try_reference_broadcast(group, root_pos, buf))
    }

    /// Fallible reference broadcast.
    pub fn try_reference_broadcast(
        &self,
        group: &ProcessGroup,
        root_pos: usize,
        buf: &mut [f32],
    ) -> Result<(), CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(());
        }
        let seq = self.next_seq(group);
        let shared = &self.shared;
        let rank = self.rank();
        let gk = group.key();
        let pos = group.position_of(rank);
        if pos == root_pos {
            for p in 0..g {
                if p != root_pos {
                    shared.transport.send(
                        rank,
                        group.rank_at(p),
                        msg_key(gk, seq, lane::BCAST + p as u32),
                        buf.to_vec(),
                    );
                }
            }
        } else {
            let data = shared.transport.recv_result(
                rank,
                group.rank_at(root_pos),
                msg_key(gk, seq, lane::BCAST + pos as u32),
            )?;
            assert_eq!(data.len(), buf.len(), "broadcast length mismatch");
            buf.copy_from_slice(&data);
        }
        Ok(())
    }
}
