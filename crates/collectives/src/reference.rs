//! Reference ring collectives: the seed transport's exact algorithms,
//! kept as the oracle the pooled/pipelined implementations are proven
//! bit-identical against.
//!
//! These are deliberately naive — one fresh `Vec` per hop, no pooling,
//! no segmentation, a star fan-out broadcast — and charge no virtual
//! time. They run on the same transport (so they compose with live
//! worlds; each call claims its own sequence numbers) and exist for the
//! equivalence property tests and as executable documentation of the
//! baseline the pooled transport replaced.

use crate::comm::{lane, msg_key, Comm, ReduceOp};
use crate::fault::{unwrap_comm, CommError};
use crate::group::ProcessGroup;

impl Comm {
    /// Seed-style ring all-gather (unpooled, unsegmented). Returns all
    /// members' shards concatenated in group-position order.
    pub fn reference_all_gather(&self, group: &ProcessGroup, shard: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_reference_all_gather(group, shard))
    }

    /// Fallible [`reference_all_gather`](Self::reference_all_gather).
    pub fn try_reference_all_gather(
        &self,
        group: &ProcessGroup,
        shard: &[f32],
    ) -> Result<Vec<f32>, CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(shard.to_vec());
        }
        let seq = self.next_seq(group);
        let shared = &self.shared;
        let rank = self.rank();
        let gk = group.key();
        let pos = group.position_of(rank);
        let next = group.next_of(rank);
        let prev = group.prev_of(rank);
        let chunk = shard.len();
        let mut out = vec![0.0f32; chunk * g];
        out[pos * chunk..(pos + 1) * chunk].copy_from_slice(shard);
        for s in 0..g - 1 {
            let send_c = (pos + g - s) % g;
            shared.transport.send(
                rank,
                next,
                msg_key(gk, seq, lane::AG + s as u32),
                out[send_c * chunk..(send_c + 1) * chunk].to_vec(),
            );
            let recv_c = (pos + g - s - 1) % g;
            let data =
                shared
                    .transport
                    .recv_result(rank, prev, msg_key(gk, seq, lane::AG + s as u32))?;
            assert_eq!(data.len(), chunk, "all-gather shard length mismatch");
            out[recv_c * chunk..(recv_c + 1) * chunk].copy_from_slice(&data);
        }
        Ok(out)
    }

    /// Seed-style ring reduce-scatter (sum). The buffer length must be
    /// divisible by the group size.
    pub fn reference_reduce_scatter(&self, group: &ProcessGroup, buf: &[f32]) -> Vec<f32> {
        unwrap_comm(self.try_reference_reduce_scatter(group, buf, ReduceOp::Sum))
    }

    /// Fallible reference reduce-scatter with an explicit operator.
    pub fn try_reference_reduce_scatter(
        &self,
        group: &ProcessGroup,
        buf: &[f32],
        op: ReduceOp,
    ) -> Result<Vec<f32>, CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(buf.to_vec());
        }
        if !buf.len().is_multiple_of(g) {
            return Err(CommError::InvalidBuffer {
                op: "reduce_scatter",
                detail: format!("length {} not divisible by group size {g}", buf.len()),
            });
        }
        let seq = self.next_seq(group);
        let shared = &self.shared;
        let rank = self.rank();
        let gk = group.key();
        let pos = group.position_of(rank);
        let next = group.next_of(rank);
        let prev = group.prev_of(rank);
        let chunk = buf.len() / g;
        let mut work = buf.to_vec();
        for s in 0..g - 1 {
            let send_c = (pos + 2 * g - s - 1) % g;
            shared.transport.send(
                rank,
                next,
                msg_key(gk, seq, lane::RS + s as u32),
                work[send_c * chunk..(send_c + 1) * chunk].to_vec(),
            );
            let recv_c = (pos + 2 * g - s - 2) % g;
            let data =
                shared
                    .transport
                    .recv_result(rank, prev, msg_key(gk, seq, lane::RS + s as u32))?;
            assert_eq!(data.len(), chunk, "reduce-scatter chunk length mismatch");
            for (w, d) in work[recv_c * chunk..(recv_c + 1) * chunk]
                .iter_mut()
                .zip(data.iter())
            {
                *w = op.combine(*w, *d);
            }
        }
        Ok(work[pos * chunk..(pos + 1) * chunk].to_vec())
    }

    /// Seed-style in-place sum all-reduce: pad, reduce-scatter,
    /// all-gather, truncate — identical arithmetic pairing to the pooled
    /// path, which is exactly what the equivalence tests assert.
    pub fn reference_all_reduce(&self, group: &ProcessGroup, buf: &mut [f32]) {
        unwrap_comm(self.try_reference_all_reduce(group, buf, ReduceOp::Sum))
    }

    /// Fallible reference all-reduce with an explicit operator.
    pub fn try_reference_all_reduce(
        &self,
        group: &ProcessGroup,
        buf: &mut [f32],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(());
        }
        let n = buf.len();
        let padded = n.div_ceil(g) * g;
        let mut work = buf.to_vec();
        let pad = match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
        };
        work.resize(padded, pad);
        let mine = self.try_reference_reduce_scatter(group, &work, op)?;
        let full = self.try_reference_all_gather(group, &mine)?;
        buf.copy_from_slice(&full[..n]);
        Ok(())
    }

    /// Seed-style broadcast: the root sends one full copy of the buffer
    /// to every other member (star fan-out).
    pub fn reference_broadcast(&self, group: &ProcessGroup, root_pos: usize, buf: &mut [f32]) {
        unwrap_comm(self.try_reference_broadcast(group, root_pos, buf))
    }

    /// Fallible reference broadcast.
    pub fn try_reference_broadcast(
        &self,
        group: &ProcessGroup,
        root_pos: usize,
        buf: &mut [f32],
    ) -> Result<(), CommError> {
        let g = group.size();
        if g == 1 {
            return Ok(());
        }
        let seq = self.next_seq(group);
        let shared = &self.shared;
        let rank = self.rank();
        let gk = group.key();
        let pos = group.position_of(rank);
        if pos == root_pos {
            for p in 0..g {
                if p != root_pos {
                    shared.transport.send(
                        rank,
                        group.rank_at(p),
                        msg_key(gk, seq, lane::BCAST + p as u32),
                        buf.to_vec(),
                    );
                }
            }
        } else {
            let data = shared.transport.recv_result(
                rank,
                group.rank_at(root_pos),
                msg_key(gk, seq, lane::BCAST + pos as u32),
            )?;
            assert_eq!(data.len(), buf.len(), "broadcast length mismatch");
            buf.copy_from_slice(&data);
        }
        Ok(())
    }
}
