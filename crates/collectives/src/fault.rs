//! Typed communication failures and deterministic fault injection.
//!
//! PR 1's poison mechanism turned any rank panic into a world-wide panic
//! with a fixed message — good enough to avoid deadlock, but opaque to a
//! supervisor that wants to *recover*. This module introduces the typed
//! [`CommError`] surfaced by every fallible collective, the
//! [`InjectedKill`] panic payload used by deterministic kill injection,
//! and the transport-level [`FaultConfig`] (message drops, link stalls,
//! recv timeouts) threaded into the mailbox by
//! [`CommWorld::create_faulty`](crate::CommWorld::create_faulty).

use crate::mailbox::PoisonInfo;
use std::time::Duration;

/// Default bound on any blocking receive. Generous enough that healthy
/// tests never trip it, small enough that a genuinely dead peer is
/// eventually reported rather than hung on forever.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// A structured, recoverable communication failure.
///
/// Every blocking receive path in the crate resolves to one of these
/// instead of hanging: a peer explicitly marked dead (or silent past the
/// recv timeout) yields `PeerLost`; a world killed by the legacy poison
/// mechanism yields `Poisoned`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer will never answer: it was marked dead, or the receive
    /// timed out waiting for it.
    PeerLost { peer: usize, detail: String },
    /// The world was poisoned (some rank panicked) before or during the
    /// operation.
    Poisoned(PoisonInfo),
    /// The caller handed a collective a buffer it cannot operate on
    /// (e.g. a reduce-scatter length not divisible by the group size).
    /// Raised *before* any message moves, so no peer is left waiting.
    InvalidBuffer {
        /// The collective that rejected the buffer.
        op: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerLost { peer, detail } => {
                write!(f, "peer rank {peer} lost: {detail}")
            }
            CommError::Poisoned(info) => write!(
                f,
                "world poisoned: rank {} panicked: {}",
                info.origin_rank, info.message
            ),
            CommError::InvalidBuffer { op, detail } => {
                write!(f, "invalid buffer for {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Panic payload of a deterministically injected rank kill. The
/// supervisor downcasts to this to distinguish an *injected* failure
/// (expected, restartable) from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedKill {
    pub rank: usize,
    pub step: u64,
}

impl std::fmt::Display for InjectedKill {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected kill of rank {} at step {}",
            self.rank, self.step
        )
    }
}

/// Drop the `nth` (1-based) point-to-point message on the `src → dst`
/// link. The receiver observes the loss as a recv timeout → `PeerLost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRule {
    pub src: usize,
    pub dst: usize,
    pub nth: u64,
}

/// Stall the `src → dst` link once: the first message over the link
/// deposits `seconds` of extra virtual latency, charged to the
/// receiver's next blocking collective (timed worlds only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallRule {
    pub src: usize,
    pub dst: usize,
    pub seconds: f64,
}

/// Stall the `src → dst` link once in *wall* time: delivery of the
/// first message over the link is held back by `hold` real seconds
/// while the sender proceeds. Unlike [`StallRule`] (virtual latency,
/// visible only to the cost model), a wall stall leaves the receiver
/// genuinely blocked in its receive — exactly what a hung NIC or a
/// preempted peer looks like to the straggler watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallStallRule {
    pub src: usize,
    pub dst: usize,
    pub hold: Duration,
}

/// Transport-level fault injection configuration, fixed at world
/// creation so runs are deterministic.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    pub drops: Vec<DropRule>,
    pub stalls: Vec<StallRule>,
    pub wall_stalls: Vec<WallStallRule>,
    /// Bound on every blocking receive; `None` uses
    /// [`DEFAULT_RECV_TIMEOUT`].
    pub recv_timeout: Option<Duration>,
}

impl FaultConfig {
    /// A fault-free configuration (still carries the default timeout, so
    /// even "healthy" worlds cannot hang forever on a dead peer).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    pub fn with_drop(mut self, rule: DropRule) -> Self {
        self.drops.push(rule);
        self
    }

    pub fn with_stall(mut self, rule: StallRule) -> Self {
        self.stalls.push(rule);
        self
    }

    pub fn with_wall_stall(mut self, rule: WallStallRule) -> Self {
        self.wall_stalls.push(rule);
        self
    }

    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }
}

/// How a rank of a world ended up failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Deterministic fault injection killed it ([`InjectedKill`]).
    Killed,
    /// It lost a peer (dead rank or recv timeout) — a *secondary*
    /// failure cascading from someone else's death.
    PeerLost,
    /// It panicked for any other reason (a genuine bug).
    Panic,
}

/// One rank's failure, as observed by the launcher.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    pub rank: usize,
    pub kind: FailureKind,
    pub message: String,
    /// The training step at which the rank failed, when known (injected
    /// kills carry it).
    pub step: Option<u64>,
}

/// Resolve a fallible collective the way the infallible public API
/// promises: poison failures re-raise the exact legacy panic message
/// (`exec` keys on it), peer losses propagate as a typed panic payload
/// the supervisor can classify.
pub(crate) fn unwrap_comm<T>(r: Result<T, CommError>) -> T {
    match r {
        Ok(v) => v,
        Err(CommError::Poisoned(info)) => panic!(
            "world poisoned: rank {} panicked: {}",
            info.origin_rank, info.message
        ),
        // A bad buffer is a caller bug: the infallible API panics with
        // the formatted diagnosis (a `String` payload, classified as a
        // genuine panic by the supervisor).
        Err(e @ CommError::InvalidBuffer { .. }) => panic!("{e}"),
        Err(e @ CommError::PeerLost { .. }) => std::panic::panic_any(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_error_display() {
        let e = CommError::PeerLost {
            peer: 3,
            detail: "marked dead".into(),
        };
        assert_eq!(e.to_string(), "peer rank 3 lost: marked dead");
        let p = CommError::Poisoned(PoisonInfo {
            origin_rank: 1,
            message: "boom".into(),
        });
        assert_eq!(p.to_string(), "world poisoned: rank 1 panicked: boom");
        let b = CommError::InvalidBuffer {
            op: "reduce_scatter",
            detail: "length 10 not divisible by group size 4".into(),
        };
        assert_eq!(
            b.to_string(),
            "invalid buffer for reduce_scatter: length 10 not divisible by group size 4"
        );
    }

    #[test]
    fn unwrap_comm_reproduces_legacy_poison_message() {
        let err: Result<(), CommError> = Err(CommError::Poisoned(PoisonInfo {
            origin_rank: 2,
            message: "bad".into(),
        }));
        let panic = std::panic::catch_unwind(|| unwrap_comm(err)).unwrap_err();
        let msg = panic.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "world poisoned: rank 2 panicked: bad");
    }

    #[test]
    fn unwrap_comm_propagates_peer_lost_payload() {
        let err: Result<(), CommError> = Err(CommError::PeerLost {
            peer: 0,
            detail: "timeout".into(),
        });
        let panic = std::panic::catch_unwind(|| unwrap_comm(err)).unwrap_err();
        let e = panic.downcast_ref::<CommError>().unwrap();
        assert!(matches!(e, CommError::PeerLost { peer: 0, .. }));
    }
}
