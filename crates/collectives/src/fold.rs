//! Elementwise reduction folds shared by every reducing collective.
//!
//! All reduce algorithms (ring, linear, recursive halving/doubling,
//! binomial tree) fold incoming buffers into a local accumulator through
//! these helpers, so vectorization lands in one place. With the `simd`
//! feature on x86_64, the f32 **sum** fold runs on AVX2 8-lane vectors
//! when the CPU supports them: `vaddps` performs elementwise IEEE f32
//! addition, bit-identical to the scalar fold, so the bitwise
//! reference-equivalence oracles hold with the feature on or off. The
//! **max** fold always stays scalar — `_mm256_max_ps` and `f32::max`
//! disagree on NaN propagation.

use crate::comm::ReduceOp;

/// Fold `src` into `acc` elementwise under `op`.
#[inline]
pub fn fold_op(op: ReduceOp, acc: &mut [f32], src: &[f32]) {
    debug_assert_eq!(acc.len(), src.len(), "fold length mismatch");
    match op {
        ReduceOp::Sum => fold_sum(acc, src),
        ReduceOp::Max => {
            for (a, &s) in acc.iter_mut().zip(src) {
                *a = a.max(s);
            }
        }
    }
}

/// Elementwise `acc[i] += src[i]`, vectorized when the `simd` feature is
/// on and the CPU supports AVX2 (runtime-detected, cached by std).
#[inline]
pub fn fold_sum(acc: &mut [f32], src: &[f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was verified at runtime just above.
        unsafe { fold_sum_avx2(acc, src) };
        return;
    }
    fold_sum_scalar(acc, src);
}

#[inline]
fn fold_sum_scalar(acc: &mut [f32], src: &[f32]) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += s;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn fold_sum_avx2(acc: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::{_mm256_add_ps, _mm256_loadu_ps, _mm256_storeu_ps};
    let n = acc.len().min(src.len());
    let lanes = n - n % 8;
    let a = acc.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0;
    while i < lanes {
        // SAFETY: i + 8 <= lanes <= both slice lengths; unaligned loads
        // and stores are explicitly the *_loadu/*_storeu forms.
        unsafe {
            let va = _mm256_loadu_ps(a.add(i));
            let vs = _mm256_loadu_ps(s.add(i));
            _mm256_storeu_ps(a.add(i), _mm256_add_ps(va, vs));
        }
        i += 8;
    }
    fold_sum_scalar(&mut acc[lanes..], &src[lanes..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_scalar_bitwise() {
        // Lengths straddling the 8-lane boundary, values with varied
        // exponents so any reassociation would change bits.
        for len in [0usize, 1, 7, 8, 9, 31, 32, 100] {
            let src: Vec<f32> = (0..len).map(|i| (i as f32 + 0.5) * 1.3e-3).collect();
            let mut acc: Vec<f32> = (0..len).map(|i| (i as f32) * 7.7e2).collect();
            let mut expect = acc.clone();
            for (e, &s) in expect.iter_mut().zip(&src) {
                *e += s;
            }
            fold_sum(&mut acc, &src);
            assert_eq!(acc, expect, "len {len}");
        }
    }

    #[test]
    fn max_fold_keeps_f32_max_nan_semantics() {
        let mut acc = vec![f32::NAN, 1.0, -3.0];
        fold_op(ReduceOp::Max, &mut acc, &[2.0, f32::NAN, -4.0]);
        // f32::max returns the non-NaN operand.
        assert_eq!(acc[0], 2.0);
        assert_eq!(acc[1], 1.0);
        assert_eq!(acc[2], -3.0);
    }

    #[test]
    fn sum_fold_dispatches_through_fold_op() {
        let mut acc = vec![1.0f32; 20];
        fold_op(ReduceOp::Sum, &mut acc, &[2.0f32; 20]);
        assert!(acc.iter().all(|&v| v == 3.0));
    }
}
