//! Runtime health telemetry for the transport: per-rank heartbeats,
//! pending-receive tracking, and lane-key decoding.
//!
//! Everything here is written from the collectives hot paths (blocking
//! calls on the main context, `run_job` on the comm worker, the
//! transport send/recv primitives) and read by an observer thread (the
//! exec watchdog, `axonnctl monitor`). Stamps are relaxed atomic stores
//! of a monotonic wall offset; the only mutexes guard the rarely-read
//! "what op / what peer" diagnostic strings.
//!
//! Under `cfg(loom)` the wall clock does not exist; the stamping calls
//! compile to counters only, and ages read as zero. The loom models
//! exercise the message-passing protocol, not the watchdog.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::mailbox::MsgKey;

/// Decode the lane a message key belongs to (see `comm::lane`): the
/// collective phase whose sub-key range the key sits in, or `"p2p"` for
/// raw point-to-point traffic (group key `u64::MAX`).
pub fn lane_name(key: MsgKey) -> &'static str {
    let group = (key >> 64) as u64;
    if group == u64::MAX {
        return "p2p";
    }
    match (key as u32) & 0xffff_0000 {
        0x0000_0000 => "rs",
        0x0001_0000 => "ag",
        0x0002_0000 => "bcast",
        0x0003_0000 => "clock_up",
        0x0004_0000 => "clock_down",
        0x0005_0000 => "rd",
        0x0006_0000 => "lrs",
        0x0007_0000 => "rhd",
        0x0008_0000 => "rdag",
        0x0009_0000 => "tree_up",
        0x000a_0000 => "tree_down",
        _ => "unknown",
    }
}

/// A receive that has been posted but not yet satisfied, as seen by an
/// observer. `age_ms` is wall time since the receive was posted.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRecv {
    /// Peer the rank is waiting on.
    pub src: usize,
    /// Lane the pending key decodes to (`rs`, `ag`, ...).
    pub lane: &'static str,
    /// Raw message key (diagnostic).
    pub key: MsgKey,
    /// Milliseconds the receive has been outstanding.
    pub age_ms: u64,
}

/// Observer-side snapshot of one rank's health.
#[derive(Debug, Clone)]
pub struct RankTelemetry {
    pub rank: usize,
    /// Milliseconds since the rank last made progress (sent, received,
    /// or entered/finished a collective). Zero under loom.
    pub heartbeat_age_ms: u64,
    /// Collective op the rank is currently inside, if any.
    pub current_op: Option<&'static str>,
    /// Receive the rank is currently blocked on, if any.
    pub pending: Option<PendingRecv>,
    /// Collectives completed so far.
    pub collectives: u64,
    /// Payload bytes sent so far.
    pub bytes_sent: u64,
}

#[derive(Debug)]
struct RankBeat {
    /// Nanoseconds since the world's origin at last progress.
    last_progress_ns: AtomicU64,
    collectives: AtomicU64,
    bytes_sent: AtomicU64,
    current_op: Mutex<Option<&'static str>>,
    /// (src, key, posted-at ns) of the receive currently blocking.
    pending: Mutex<Option<(usize, MsgKey, u64)>>,
}

impl RankBeat {
    fn new() -> RankBeat {
        RankBeat {
            last_progress_ns: AtomicU64::new(0),
            collectives: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            current_op: Mutex::new(None),
            pending: Mutex::new(None),
        }
    }
}

/// Heartbeat table for one world: one cell per rank, stamped by that
/// rank's threads, snapshotted by observers.
#[derive(Debug, Clone)]
pub struct Beats {
    inner: Arc<BeatsInner>,
}

#[derive(Debug)]
struct BeatsInner {
    #[cfg(not(loom))]
    origin: std::time::Instant,
    beats: Vec<RankBeat>,
}

impl Beats {
    pub fn new(size: usize) -> Beats {
        Beats {
            inner: Arc::new(BeatsInner {
                #[cfg(not(loom))]
                origin: std::time::Instant::now(),
                beats: (0..size).map(|_| RankBeat::new()).collect(),
            }),
        }
    }

    fn now_ns(&self) -> u64 {
        #[cfg(not(loom))]
        {
            self.inner.origin.elapsed().as_nanos() as u64
        }
        #[cfg(loom)]
        {
            0
        }
    }

    /// Record that `rank` made progress now.
    pub fn stamp(&self, rank: usize) {
        let now = self.now_ns();
        self.inner.beats[rank]
            .last_progress_ns
            .store(now, Ordering::Relaxed);
    }

    /// Record that `rank` sent `bytes` of payload.
    pub fn note_send(&self, rank: usize, bytes: u64) {
        self.inner.beats[rank]
            .bytes_sent
            .fetch_add(bytes, Ordering::Relaxed);
        self.stamp(rank);
    }

    /// Record that `rank` completed a collective.
    pub fn note_collective(&self, rank: usize) {
        self.inner.beats[rank]
            .collectives
            .fetch_add(1, Ordering::Relaxed);
        self.stamp(rank);
    }

    /// Mark `rank` as inside collective `op` (cleared by `clear_op`).
    pub fn set_op(&self, rank: usize, op: &'static str) {
        *self.inner.beats[rank].current_op.lock() = Some(op);
        self.stamp(rank);
    }

    pub fn clear_op(&self, rank: usize) {
        *self.inner.beats[rank].current_op.lock() = None;
        self.stamp(rank);
    }

    /// Mark `rank` as blocked receiving `key` from `src`.
    pub fn begin_recv(&self, rank: usize, src: usize, key: MsgKey) {
        let now = self.now_ns();
        *self.inner.beats[rank].pending.lock() = Some((src, key, now));
    }

    /// Clear the pending receive and stamp progress.
    pub fn end_recv(&self, rank: usize) {
        *self.inner.beats[rank].pending.lock() = None;
        self.stamp(rank);
    }

    /// Observer-side snapshot for one rank.
    pub fn snapshot(&self, rank: usize) -> RankTelemetry {
        let beat = &self.inner.beats[rank];
        let now = self.now_ns();
        let last = beat.last_progress_ns.load(Ordering::Relaxed);
        let pending = beat.pending.lock().map(|(src, key, since)| PendingRecv {
            src,
            lane: lane_name(key),
            key,
            age_ms: now.saturating_sub(since) / 1_000_000,
        });
        RankTelemetry {
            rank,
            heartbeat_age_ms: now.saturating_sub(last) / 1_000_000,
            current_op: *beat.current_op.lock(),
            pending,
            collectives: beat.collectives.load(Ordering::Relaxed),
            bytes_sent: beat.bytes_sent.load(Ordering::Relaxed),
        }
    }

    /// Snapshot every rank.
    pub fn snapshot_all(&self) -> Vec<RankTelemetry> {
        (0..self.inner.beats.len())
            .map(|r| self.snapshot(r))
            .collect()
    }

    pub fn size(&self) -> usize {
        self.inner.beats.len()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::comm::{lane, msg_key, sub};

    #[test]
    fn lane_decoding() {
        assert_eq!(lane_name(msg_key(3, 7, lane::RS + sub(0, 1))), "rs");
        assert_eq!(lane_name(msg_key(3, 7, lane::AG + sub(2, 0))), "ag");
        assert_eq!(lane_name(msg_key(3, 7, lane::BCAST)), "bcast");
        assert_eq!(lane_name(msg_key(3, 7, lane::CLOCK_UP)), "clock_up");
        assert_eq!(lane_name(msg_key(3, 7, lane::CLOCK_DOWN)), "clock_down");
        assert_eq!(lane_name(msg_key(3, 7, lane::RD)), "rd");
        assert_eq!(lane_name(msg_key(3, 7, lane::LRS)), "lrs");
        assert_eq!(lane_name(msg_key(3, 7, lane::RHD + sub(1, 0))), "rhd");
        assert_eq!(lane_name(msg_key(3, 7, lane::RDAG)), "rdag");
        assert_eq!(lane_name(msg_key(3, 7, lane::TREE_UP)), "tree_up");
        assert_eq!(lane_name(msg_key(3, 7, lane::TREE_DOWN)), "tree_down");
        assert_eq!(lane_name(msg_key(u64::MAX, 0, 5)), "p2p");
    }

    #[test]
    fn beats_track_pending_and_progress() {
        let beats = Beats::new(2);
        beats.note_send(0, 1024);
        beats.note_collective(0);
        let key = msg_key(1, 0, lane::RS);
        beats.begin_recv(1, 0, key);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t = beats.snapshot(1);
        let pending = t.pending.expect("recv outstanding");
        assert_eq!(pending.src, 0);
        assert_eq!(pending.lane, "rs");
        assert!(pending.age_ms >= 4, "age {} ms", pending.age_ms);
        beats.end_recv(1);
        assert!(beats.snapshot(1).pending.is_none());
        let t0 = beats.snapshot(0);
        assert_eq!(t0.collectives, 1);
        assert_eq!(t0.bytes_sent, 1024);
    }

    #[test]
    fn op_markers() {
        let beats = Beats::new(1);
        beats.set_op(0, "all_reduce");
        assert_eq!(beats.snapshot(0).current_op, Some("all_reduce"));
        beats.clear_op(0);
        assert_eq!(beats.snapshot(0).current_op, None);
    }
}
