//! Process groups: ordered subsets of world ranks over which collectives
//! run. The 4D engine builds X / Y / Z / data groups out of these
//! (hierarchical order: X innermost, data outermost, Section V-B).

/// An ordered list of world ranks forming a communication group.
///
/// Order matters: a rank's *position* in the list defines its place in the
/// ring, which chunk of a reduce-scatter it owns, and where its shard lands
/// in an all-gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGroup {
    ranks: Vec<usize>,
    key: u64,
}

impl ProcessGroup {
    /// Build a group from distinct ranks.
    ///
    /// # Panics
    /// If `ranks` is empty or contains duplicates.
    pub fn new(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "empty process group");
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "duplicate ranks in group");
        let key = fnv1a(&ranks);
        ProcessGroup { ranks, key }
    }

    /// The trivial group containing a single rank.
    pub fn solo(rank: usize) -> Self {
        ProcessGroup::new(vec![rank])
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// A stable 64-bit identity used to namespace message tags, derived
    /// from the member list.
    pub fn key(&self) -> u64 {
        self.key
    }

    pub fn contains(&self, rank: usize) -> bool {
        self.ranks.contains(&rank)
    }

    /// Position of `rank` within the group.
    ///
    /// # Panics
    /// If `rank` is not a member.
    pub fn position_of(&self, rank: usize) -> usize {
        self.ranks
            .iter()
            .position(|&r| r == rank)
            .unwrap_or_else(|| panic!("rank {rank} not in group {:?}", self.ranks))
    }

    /// World rank at group position `pos`.
    pub fn rank_at(&self, pos: usize) -> usize {
        self.ranks[pos]
    }

    /// Ring successor (by position) of `rank`.
    pub fn next_of(&self, rank: usize) -> usize {
        let p = self.position_of(rank);
        self.ranks[(p + 1) % self.ranks.len()]
    }

    /// Ring predecessor (by position) of `rank`.
    pub fn prev_of(&self, rank: usize) -> usize {
        let p = self.position_of(rank);
        self.ranks[(p + self.ranks.len() - 1) % self.ranks.len()]
    }
}

fn fnv1a(ranks: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &r in ranks {
        for b in (r as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_ring() {
        let g = ProcessGroup::new(vec![4, 2, 9]);
        assert_eq!(g.size(), 3);
        assert_eq!(g.position_of(2), 1);
        assert_eq!(g.next_of(9), 4);
        assert_eq!(g.prev_of(4), 9);
        assert_eq!(g.rank_at(0), 4);
    }

    #[test]
    fn keys_differ_by_membership_and_order() {
        let a = ProcessGroup::new(vec![0, 1]);
        let b = ProcessGroup::new(vec![1, 0]);
        let c = ProcessGroup::new(vec![0, 2]);
        assert_ne!(a.key(), c.key());
        // Order is part of the identity: same members, different ring.
        assert_ne!(a.key(), b.key());
        // Deterministic.
        assert_eq!(a.key(), ProcessGroup::new(vec![0, 1]).key());
    }

    #[test]
    #[should_panic(expected = "duplicate ranks")]
    fn duplicates_rejected() {
        let _ = ProcessGroup::new(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "empty process group")]
    fn empty_rejected() {
        let _ = ProcessGroup::new(vec![]);
    }

    #[test]
    fn solo_group() {
        let g = ProcessGroup::solo(5);
        assert_eq!(g.size(), 1);
        assert_eq!(g.next_of(5), 5);
        assert_eq!(g.prev_of(5), 5);
    }
}
