//! The pooled, chunk-pipelined rings must be *bit-identical* to the
//! seed's naive reference implementations (kept in
//! `axonn_collectives::reference`) for every group size, payload length
//! (including indivisible and size-1) and segmentation policy — pooling
//! and pipelining are transport optimizations, never numerics changes.
//! Also covers the typed indivisible-length error, pool recycling, and
//! the fault path through a dropped pipeline chunk.

use std::time::Duration;

use axonn_collectives::{
    AlgoPolicy, Comm, CommError, CommWorld, DropRule, FaultConfig, PipelineConfig, ProcessGroup,
};
use proptest::prelude::*;
use std::thread;

/// Run `body` on every rank of a pre-built world; collect results.
fn spmd_world<T: Send + 'static>(
    comms: Vec<Comm>,
    body: impl Fn(Comm) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let handles: Vec<_> = comms
        .into_iter()
        .map(|c| {
            let body = body.clone();
            thread::spawn(move || body(c))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// A world whose transport is forced to segment payloads of `min`
/// elements or more into up to `chunks` pipeline chunks.
fn pipelined_world(size: usize, min: usize, chunks: usize) -> Vec<Comm> {
    // Pin the ring algorithms: this suite proves the pooled *ring*
    // transport against the naive reference rings, so message-size
    // algorithm selection must not reroute small payloads to the
    // tree/halving paths (those have their own oracle suite in
    // `algo_equivalence`).
    CommWorld::builder(size)
        .algo(AlgoPolicy::ring_only())
        .pipeline(PipelineConfig {
            min_chunk_elems: min,
            max_chunks: chunks,
        })
        .build()
}

/// Deterministic per-rank buffer with irrational-ish values so float
/// addition order differences would actually show up bitwise.
fn buffer(rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((rank * 131 + i * 17) % 97) as f32).sin() * 3.7)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn all_gather_bitwise_matches_reference(
        world in 2usize..6,
        shard in 1usize..48,
        min in 1usize..16,
        chunks in 1usize..5,
    ) {
        let comms = pipelined_world(world, min, chunks);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let pooled = c.all_gather(&g, &buffer(c.rank(), shard));
            let reference = c.reference_all_gather(&g, &buffer(c.rank(), shard));
            (pooled, reference)
        });
        for (pooled, reference) in results {
            // Bitwise: all-gather only moves data, any mismatch is a bug.
            prop_assert_eq!(pooled, reference);
        }
    }

    #[test]
    fn reduce_scatter_bitwise_matches_reference(
        world in 2usize..6,
        per in 1usize..24,
        min in 1usize..16,
        chunks in 1usize..5,
    ) {
        let comms = pipelined_world(world, min, chunks);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let buf = buffer(c.rank(), per * world);
            let pooled = c.reduce_scatter(&g, &buf);
            let reference = c.reference_reduce_scatter(&g, &buf);
            (pooled, reference)
        });
        for (pooled, reference) in results {
            // Segmentation preserves the elementwise combine pairing, so
            // float sums must agree bit-for-bit, not just approximately.
            prop_assert_eq!(pooled.len(), reference.len());
            for (a, b) in pooled.iter().zip(reference.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn all_reduce_bitwise_matches_reference(
        world in 2usize..6,
        // Deliberately includes lengths indivisible by the world size
        // and the degenerate size-1 payload.
        len in 1usize..50,
        min in 1usize..16,
        chunks in 1usize..5,
    ) {
        let comms = pipelined_world(world, min, chunks);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut pooled = buffer(c.rank(), len);
            c.all_reduce(&g, &mut pooled);
            let mut reference = buffer(c.rank(), len);
            c.reference_all_reduce(&g, &mut reference);
            (pooled, reference)
        });
        for (pooled, reference) in results {
            for (a, b) in pooled.iter().zip(reference.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn broadcast_chain_matches_reference_star(
        world in 2usize..6,
        len in 1usize..64,
        root in 0usize..6,
        min in 1usize..16,
        chunks in 1usize..5,
    ) {
        let root = root % world;
        let comms = pipelined_world(world, min, chunks);
        let results = spmd_world(comms, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut chained = buffer(root, len);
            c.broadcast(&g, root, &mut chained);
            let mut starred = buffer(root, len);
            c.reference_broadcast(&g, root, &mut starred);
            (chained, starred)
        });
        let expect = buffer(root, len);
        for (chained, starred) in results {
            prop_assert_eq!(&chained, &expect);
            prop_assert_eq!(&chained, &starred);
        }
    }
}

#[test]
fn indivisible_reduce_scatter_is_a_typed_error() {
    let comms = CommWorld::create(3);
    let errs = spmd_world(comms, |c| {
        let g = ProcessGroup::new(vec![0, 1, 2]);
        // 3 ranks, 7 elements: must be rejected before any message moves.
        c.try_reduce_scatter(&g, &buffer(c.rank(), 7)).unwrap_err()
    });
    for e in errs {
        match e {
            CommError::InvalidBuffer { op, detail } => {
                assert_eq!(op, "reduce_scatter");
                assert!(detail.contains('7') && detail.contains('3'), "{detail}");
            }
            other => panic!("expected InvalidBuffer, got {other:?}"),
        }
    }
}

#[test]
fn repeated_all_reduce_recycles_pooled_slabs() {
    let comms = pipelined_world(4, 256, 4);
    let stats = spmd_world(comms, |c| {
        let g = ProcessGroup::new(vec![0, 1, 2, 3]);
        let warm = |c: &Comm| {
            let mut buf = buffer(c.rank(), 8192);
            c.all_reduce(&g, &mut buf);
        };
        warm(&c);
        c.barrier(&g);
        let s1 = c.pool_stats();
        for _ in 0..5 {
            warm(&c);
        }
        c.barrier(&g);
        (s1, c.pool_stats())
    });
    // The pool is world-wide, so every rank observes the same counters
    // (up to barrier ordering): after warmup, steady-state traffic must
    // be dominated by recycled slabs, not fresh allocations.
    let (s1, s2) = stats[0];
    let new_hits = s2.hits - s1.hits;
    let new_misses = s2.misses - s1.misses;
    assert!(
        new_hits > new_misses,
        "steady state must be hit-dominated: {new_hits} hits vs {new_misses} misses"
    );
    assert!(
        s2.alloc_bytes < 2 * s1.alloc_bytes,
        "five more all-reduces must not double cold-start allocation \
         ({} -> {} bytes)",
        s1.alloc_bytes,
        s2.alloc_bytes
    );
}

#[test]
fn dropped_pipeline_chunk_surfaces_peer_lost() {
    // Force 4 segments per ring step, then drop a *middle* segment on
    // the 0 -> 1 link: rank 1 must report PeerLost quickly instead of
    // hanging on the missing chunk.
    let comms = CommWorld::builder(2)
        .algo(AlgoPolicy::ring_only())
        .pipeline(PipelineConfig {
            min_chunk_elems: 1024,
            max_chunks: 4,
        })
        .faults(
            FaultConfig::none()
                .with_drop(DropRule {
                    src: 0,
                    dst: 1,
                    nth: 2,
                })
                .with_recv_timeout(Duration::from_millis(100)),
        )
        .build();
    let results = spmd_world(comms, |c| {
        let g = ProcessGroup::new(vec![0, 1]);
        let mut buf = buffer(c.rank(), 32_768);
        c.try_all_reduce(&g, &mut buf)
    });
    let rank1 = results[1].as_ref().expect_err("rank 1 lost a chunk");
    match rank1 {
        CommError::PeerLost { peer: 0, .. } => {}
        other => panic!("expected PeerLost from rank 0, got {other:?}"),
    }
    // Rank 0 either finished its sends and timed out waiting for rank 1
    // or saw the loss itself — the world must terminate either way.
    if let Err(e) = &results[0] {
        assert!(matches!(e, CommError::PeerLost { .. }), "{e:?}");
    }
}
