//! Ring-collective correctness over randomly drawn worlds, groups, and
//! buffer sizes, checked against direct (non-distributed) reductions.

use axonn_collectives::{Comm, CommWorld, ProcessGroup};
use proptest::prelude::*;
use std::thread;

/// Run `body` on every rank of a fresh world; collect results.
fn spmd<T: Send + 'static>(
    world: usize,
    body: impl Fn(Comm) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let comms = CommWorld::create(world);
    let handles: Vec<_> = comms
        .into_iter()
        .map(|c| {
            let body = body.clone();
            thread::spawn(move || body(c))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Deterministic per-rank buffer.
fn buffer(rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((rank * 31 + i * 7) % 23) as f32 - 11.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_reduce_equals_direct_sum(world in 2usize..7, len in 1usize..40) {
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.all_reduce(&g, &mut buf);
            buf
        });
        let expect: Vec<f32> = (0..len)
            .map(|i| (0..world).map(|r| buffer(r, len)[i]).sum())
            .collect();
        for r in &results {
            for (a, b) in r.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn all_gather_concatenates_in_group_order(world in 2usize..7, shard in 1usize..20) {
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            c.all_gather(&g, &buffer(c.rank(), shard))
        });
        let expect: Vec<f32> = (0..world).flat_map(|r| buffer(r, shard)).collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn reduce_scatter_chunks_match_positions(world in 2usize..7, per in 1usize..12) {
        let len = per; // chunk length per rank
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let buf = buffer(c.rank(), len * world);
            c.reduce_scatter(&g, &buf)
        });
        for (rank, chunk) in results.iter().enumerate() {
            prop_assert_eq!(chunk.len(), len);
            for (i, v) in chunk.iter().enumerate() {
                let idx = rank * len + i;
                let expect: f32 = (0..world).map(|r| buffer(r, len * world)[idx]).sum();
                prop_assert!((v - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn subgroup_collectives_respect_membership(world in 4usize..8, len in 1usize..16) {
        // Split the world into evens and odds; each group reduces only
        // its members' data.
        let results = spmd(world, move |c| {
            let mine: Vec<usize> = (0..world).filter(|r| r % 2 == c.rank() % 2).collect();
            let g = ProcessGroup::new(mine);
            let mut buf = buffer(c.rank(), len);
            c.all_reduce(&g, &mut buf);
            buf
        });
        for (rank, r) in results.iter().enumerate() {
            let members: Vec<usize> = (0..world).filter(|x| x % 2 == rank % 2).collect();
            for (i, v) in r.iter().enumerate() {
                let expect: f32 = members.iter().map(|&m| buffer(m, len)[i]).sum();
                prop_assert!((v - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn broadcast_copies_root_buffer(world in 2usize..7, len in 1usize..20, root in 0usize..6) {
        let root = root % world;
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.broadcast(&g, root, &mut buf);
            buf
        });
        let expect = buffer(root, len);
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn all_reduce_with_nondivisible_lengths(world in 2usize..6, len in 1usize..17) {
        // Internal padding must be invisible to callers.
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = vec![1.0f32; len];
            c.all_reduce(&g, &mut buf);
            buf
        });
        for r in results {
            prop_assert_eq!(r.len(), len);
            prop_assert!(r.iter().all(|&v| (v - world as f32).abs() < 1e-4));
        }
    }
}

#[test]
fn async_linear_reduce_scatter_matches_blocking_bitwise() {
    let results = spmd(4, |c| {
        let g = ProcessGroup::new(vec![0, 1, 2, 3]);
        let buf = buffer(c.rank(), 48);
        let async_out = c.ireduce_scatter_linear_pooled(&g, &buf).wait();
        let blocking = c.reduce_scatter_linear(&g, &buf);
        (async_out, blocking)
    });
    for (a, b) in &results {
        assert_eq!(a, b);
    }
}

#[test]
fn collectives_are_deterministic_across_runs() {
    let run = || {
        spmd(4, |c| {
            let g = ProcessGroup::new(vec![0, 1, 2, 3]);
            let mut buf: Vec<f32> = (0..33)
                .map(|i| (i as f32 + c.rank() as f32) * 0.3)
                .collect();
            c.all_reduce(&g, &mut buf);
            buf
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn group_order_defines_ring_and_results_are_order_independent_for_sum() {
    // Summation over a ring must not depend on member order.
    let a = spmd(4, |c| {
        let g = ProcessGroup::new(vec![0, 1, 2, 3]);
        let mut buf = vec![c.rank() as f32 + 1.0];
        c.all_reduce(&g, &mut buf);
        buf[0]
    });
    let b = spmd(4, |c| {
        let g = ProcessGroup::new(vec![3, 1, 0, 2]);
        let mut buf = vec![c.rank() as f32 + 1.0];
        c.all_reduce(&g, &mut buf);
        buf[0]
    });
    assert_eq!(a, b);
    assert!(a.iter().all(|&x| x == 10.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn recursive_doubling_matches_ring(world_exp in 1u32..4, len in 1usize..64) {
        let world = 1usize << world_exp;
        let rd = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.all_reduce_auto(&g, &mut buf);
            buf
        });
        let ring = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.all_reduce(&g, &mut buf);
            buf
        });
        for (a, b) in rd.iter().zip(&ring) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn linear_reduce_scatter_folds_in_group_order(world in 2usize..7, per in 1usize..12) {
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let buf = buffer(c.rank(), per * world);
            c.reduce_scatter_linear(&g, &buf)
        });
        for (rank, chunk) in results.iter().enumerate() {
            prop_assert_eq!(chunk.len(), per);
            for (i, v) in chunk.iter().enumerate() {
                let idx = rank * per + i;
                // The canonical fold is exactly group order — a bit-exact
                // contract, unlike the ring's rotation-dependent order.
                let mut expect: Option<f32> = None;
                for r in 0..world {
                    let x = buffer(r, per * world)[idx];
                    expect = Some(match expect { None => x, Some(a) => a + x });
                }
                prop_assert_eq!(v.to_bits(), expect.unwrap().to_bits());
            }
        }
    }

    #[test]
    fn all_reduce_linear_matches_rank_order_fold(world in 2usize..6, len in 1usize..33) {
        // Nondivisible lengths exercise the internal padding too.
        let results = spmd(world, move |c| {
            let g = ProcessGroup::new((0..world).collect());
            let mut buf = buffer(c.rank(), len);
            c.all_reduce_linear(&g, &mut buf);
            buf
        });
        for r in &results {
            prop_assert_eq!(r.len(), len);
            for (i, v) in r.iter().enumerate() {
                let mut expect: Option<f32> = None;
                for rk in 0..world {
                    let x = buffer(rk, len)[i];
                    expect = Some(match expect { None => x, Some(a) => a + x });
                }
                prop_assert_eq!(v.to_bits(), expect.unwrap().to_bits());
            }
        }
    }

    #[test]
    fn auto_falls_back_to_ring_for_odd_groups(len in 1usize..32) {
        // Group size 3 is not a power of two: auto must still be correct.
        let rd = spmd(3, move |c| {
            let g = ProcessGroup::new(vec![0, 1, 2]);
            let mut buf = buffer(c.rank(), len);
            c.all_reduce_auto(&g, &mut buf);
            buf
        });
        for (i, v) in rd[0].iter().enumerate() {
            let expect: f32 = (0..3).map(|r| buffer(r, len)[i]).sum();
            prop_assert!((v - expect).abs() < 1e-3);
        }
    }
}
